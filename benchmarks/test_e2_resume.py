"""E2 — resume latency after reboot (DESIGN.md §3, claim of §1/§3.4)."""

from benchmarks.conftest import run_once, show
from repro.harness.experiments import e2_resume


def test_e2_resume_latency(benchmark):
    table = run_once(
        benchmark,
        lambda: e2_resume.run(
            seed=3,
            n_items=16,
            missed_updates=(0, 8, 24),
            replay_cost=0.5,
        ),
    )
    show(table)

    def t_op(scheme, missed):
        (row,) = table.where(scheme=scheme, missed_updates=missed)
        return row["t_operational"]

    # ROWAA's time-to-operational is flat in the number of missed
    # updates (data recovery happens in the background)...
    assert abs(t_op("rowaa", 24) - t_op("rowaa", 0)) <= 2.0

    # ...the spooler's grows with them (redo before rejoining)...
    assert t_op("spooler", 24) >= t_op("spooler", 0) + 0.4 * 24 * 0.8

    # ...and the directory scheme pays one INCLUDE per item regardless.
    assert t_op("directories", 0) > t_op("rowaa", 0) * 3

    # ROWAA rejoins fastest in every scenario.
    for missed in (0, 8, 24):
        assert t_op("rowaa", missed) <= t_op("spooler", missed)
        assert t_op("rowaa", missed) < t_op("directories", missed)

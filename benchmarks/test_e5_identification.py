"""E5 — identifying out-of-date copies (DESIGN.md §3, claims of §5)."""

from benchmarks.conftest import run_once, show
from repro.harness.experiments import e5_identification


def test_e5_identification(benchmark):
    n_items = 16
    table = run_once(
        benchmark,
        lambda: e5_identification.run(
            seed=3,
            n_items=n_items,
            update_fractions=(0.25, 1.0),
        ),
    )
    show(table)

    def row(policy, fraction):
        (r,) = table.where(policy=policy, updated_fraction=fraction)
        return r

    stale = round(n_items * 0.25)
    # The refinements mark exactly the stale set; mark-all marks all.
    assert row("fail-locks", 0.25)["marked"] == stale
    assert row("missing-lists", 0.25)["marked"] == stale
    assert row("mark-all", 0.25)["marked"] == n_items

    # Version-skip rescues mark-all's transfers; without it, the whole
    # database is copied.
    assert row("mark-all", 0.25)["data_transfers"] == stale
    assert row("mark-all", 0.25)["version_skips"] == n_items - stale
    assert row("mark-all-no-skip", 0.25)["data_transfers"] == n_items

    # At update fraction 1 every policy converges to the same work.
    for policy in ("mark-all", "fail-locks", "missing-lists"):
        assert row(policy, 1.0)["marked"] == n_items
        assert row(policy, 1.0)["data_transfers"] == n_items

"""E8 — one-serializability under failures (DESIGN.md §3, §1 + Theorem 3)."""

from benchmarks.conftest import run_once, show
from repro.harness.experiments import e8_serializability


def test_e8_serializability(benchmark):
    table = run_once(
        benchmark,
        lambda: e8_serializability.run(seed=1, trials=3, duration=600.0),
    )
    show(table)

    (rowaa,) = table.where(scheme="rowaa")
    (rowaa_to,) = table.where(scheme="rowaa-to")
    (naive,) = table.where(scheme="naive")

    # Theorem 3's consequence: every protocol run is one-serializable —
    # under strict 2PL *and* under timestamp ordering (the theorem is
    # stated for a class of concurrency controls).
    assert rowaa["one_sr_ok"] == rowaa["runs"]
    assert rowaa["theorem3_ok"] == rowaa["runs"]
    assert rowaa_to["one_sr_ok"] == rowaa_to["runs"]
    assert rowaa_to["theorem3_ok"] == rowaa_to["runs"]
    # The naive scheme commits non-1SR executions (§1's warning) in at
    # least one random run — while its physical conflict graphs remain
    # acyclic, which is exactly why the anomaly is insidious.
    assert naive["one_sr_ok"] < naive["runs"]
    assert rowaa["committed_txns"] > 0

"""E6 — resilience to multiple failures (DESIGN.md §3, claims of §1/§3.4)."""

from benchmarks.conftest import run_once, show
from repro.harness.experiments import e6_multifailure


def test_e6_multi_failure(benchmark):
    table = run_once(
        benchmark,
        lambda: e6_multifailure.run(seed=3, trials=4),
    )
    show(table)

    # Every recovery in every scenario eventually succeeds.
    for row in table.rows:
        assert row["succeeded"] == row["recoveries"], row

    (single,) = table.where(scenario="single")
    (disturbed,) = table.where(scenario="crash-during-t1")
    # A quiet recovery takes exactly one type-1 attempt; the disturbed
    # scenario needs retries and recoverer-initiated type-2 exclusions.
    assert single["mean_type1_attempts"] == 1.0
    assert single["type2_by_recoverer"] == 0
    assert disturbed["mean_type1_attempts"] > 1.0

"""Microbenchmarks of the substrates themselves (real multi-round runs).

These measure the *simulator's* throughput, not the protocol: how many
virtual events, lock operations, RPC round trips, and checker runs a
second of wall time buys. Useful for sizing experiments and for
catching performance regressions in the kernel.
"""

from repro.baselines import StrictROWA
from repro.histories import HistoryRecorder, check_one_sr
from repro.net import ConstantLatency, Network, RpcNode
from repro.sim import Kernel
from repro.system import DatabaseSystem
from repro.txn import LockManager, LockMode, TxnConfig


def test_kernel_event_throughput(benchmark):
    """Schedule-and-drain 10k timeout events."""

    def run():
        kernel = Kernel(seed=0)
        for index in range(10_000):
            kernel.timeout(index % 97)
        kernel.run()
        return kernel.now

    assert benchmark(run) > 0


def test_process_switch_throughput(benchmark):
    """Two processes ping-ponging through 2k queue handoffs."""

    def run():
        from repro.sim import Queue

        kernel = Kernel(seed=0)
        ping, pong = Queue(kernel), Queue(kernel)

        def left():
            for index in range(1000):
                ping.put(index)
                yield pong.get()

        def right():
            for _ in range(1000):
                value = yield ping.get()
                pong.put(value)

        kernel.process(left())
        kernel.process(right())
        kernel.run()
        return True

    assert benchmark(run)


def test_timeout_cancellation_churn(benchmark):
    """10k scheduled timers, 90% cancelled before firing.

    The RPC layer's dominant pattern: a per-call timeout timer that is
    almost always cancelled because the reply lands first. Exercises
    the lazy-cancellation path — cancel is O(1), dead entries are
    skipped at pop time and never count as processed events.
    """

    def noop():
        return None

    def run():
        kernel = Kernel(seed=0)
        timers = [
            kernel.schedule_callback(5.0 + (index % 13), noop)
            for index in range(10_000)
        ]
        for index, timer in enumerate(timers):
            if index % 10 != 0:
                timer.cancel()
        kernel.run()
        return kernel.events_processed

    assert benchmark(run) == 1000


def test_copier_refresh_throughput(benchmark):
    """Crash a site, miss 16 updates, recover, drain the copiers."""
    from repro.baselines import build_rowaa_system

    n_items = 16

    def write_program(item, value):
        def program(ctx):
            yield from ctx.write(item, value)

        return program

    def run():
        kernel = Kernel(seed=0)
        system = build_rowaa_system(
            kernel, 3, {f"X{i}": 0 for i in range(n_items)},
            latency=ConstantLatency(1.0), config=TxnConfig(),
        )
        system.crash(3)
        kernel.run(until=kernel.now + 40)
        for index in range(n_items):
            kernel.run(
                system.submit_with_retry(
                    1, write_program(f"X{index}", index), attempts=4
                )
            )
        kernel.run(system.power_on(3))
        kernel.run(until=kernel.now + 2000)
        system.stop()
        return system.copiers[3].stats.copies_performed

    assert benchmark(run) >= n_items


def test_lock_manager_throughput(benchmark):
    """5k uncontended acquire/release cycles."""

    def run():
        kernel = Kernel(seed=0)
        manager = LockManager(kernel, site_id=1)
        for index in range(5000):
            txn = f"T{index}@1"
            manager.acquire(txn, f"item{index % 50}", LockMode.X)
            manager.release_all(txn)
        kernel.run()
        return manager.stats_grants

    assert benchmark(run) == 5000


def test_rpc_roundtrip_throughput(benchmark):
    """500 sequential remote echo calls."""

    def run():
        kernel = Kernel(seed=0)
        network = Network(kernel, latency=ConstantLatency(0.1))
        a = RpcNode(kernel, network, 1)
        b = RpcNode(kernel, network, 2)
        a.start()
        b.start()
        b.register("echo", lambda payload, src: payload)

        def caller():
            for index in range(500):
                got = yield a.call(2, "echo", index)
                assert got == index
            return True

        return kernel.run(kernel.process(caller()))

    assert benchmark(run)


def test_transaction_throughput_3sites(benchmark):
    """200 sequential replicated read-modify-write transactions."""

    def run():
        kernel = Kernel(seed=0)
        system = DatabaseSystem(
            kernel, 3, {"X": 0},
            strategy_factory=lambda _s: StrictROWA(),
            latency=ConstantLatency(1.0),
            config=TxnConfig(),
        )
        system.boot()

        def increment(ctx):
            value = yield from ctx.read("X")
            yield from ctx.write("X", value + 1)

        def driver():
            for _ in range(200):
                yield from system.tms[1].run(increment)
            return system.copy_value(1, "X")

        result = kernel.run(kernel.process(driver()))
        system.stop()
        return result

    assert benchmark(run) == 200


def test_one_sr_checker_throughput(benchmark):
    """Check a 300-transaction serial history."""

    recorder = HistoryRecorder()
    time = 0.0
    for seq in range(1, 301):
        txn = f"T{seq}@1"
        time += 1.0
        item = f"X{seq % 10}"
        recorder.record_read(time, txn, seq, "user", item, 1,
                             version_seq=max(0, seq - 10),
                             version_ts=max(0.0, time - 10),
                             version_commit=max(0, seq - 10))
        recorder.record_write(time, txn, seq, "user", item, 1,
                              version_seq=seq, version_ts=time,
                              version_commit=seq)
        recorder.mark_committed(txn)

    def run():
        return check_one_sr(recorder).ok

    assert benchmark(run)

"""E1 — availability vs failed sites (DESIGN.md §3, claim of §1/§6)."""

from benchmarks.conftest import run_once, show
from repro.harness.experiments import e1_availability


def test_e1_availability(benchmark):
    table = run_once(
        benchmark,
        lambda: e1_availability.run(
            seed=3,
            n_sites=5,
            replication=3,
            n_items=12,
            max_failed=3,
            load_duration=250.0,
        ),
    )
    show(table)

    def cell(scheme, failed, column):
        (row,) = table.where(scheme=scheme, failed=failed)
        return row[column]

    # No failures: everyone is fully available.
    for scheme in ("rowaa", "rowa", "quorum", "directories"):
        assert cell(scheme, 0, "read_availability") >= 0.95

    # One failure: strict ROWA's write availability collapses (most items
    # have a replica on the dead site), while ROWAA stays high.
    assert cell("rowaa", 1, "write_availability") >= 0.9
    assert cell("rowa", 1, "write_availability") <= 0.6
    assert cell("directories", 1, "write_availability") >= 0.9

    # Three of five failed: quorum (majority = 2 of 3 copies) is mostly
    # dead; ROWAA still commits on surviving copies.
    assert cell("rowaa", 3, "write_availability") > cell(
        "quorum", 3, "write_availability"
    )
    assert cell("rowaa", 3, "read_availability") > cell(
        "quorum", 3, "read_availability"
    )

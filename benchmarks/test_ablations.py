"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper tables — these quantify the knobs the implementation had to
choose, so a downstream user can see what each one buys:

* A1: failure-detection delay → availability during the exclusion window;
* A2: copier concurrency → staleness drain time;
* A3: concurrency control (2PL vs TO) → throughput/abort profile under
  the same contended workload (the §1 "large class of CC algorithms"
  composition, measured).
"""

import random

from benchmarks.conftest import run_once, show
from repro.core import RowaaSystem
from repro.core.config import RowaaConfig
from repro.harness.runner import build_scheme, settle
from repro.harness.tables import Table
from repro.net import ConstantLatency
from repro.sim import Kernel
from repro.txn import TxnConfig
from repro.workload import ClientPool, WorkloadGenerator, WorkloadSpec


def test_a1_detection_delay(benchmark):
    """Longer detection ⇒ longer write-disruption window after a crash.

    Measured as the time from the crash until the first write commits
    again: a write cannot commit while the nominal view still names the
    dead site (all attempts time out), so the window is roughly
    detection delay + type-2 commit + the in-flight timeout.
    """

    def run():
        table = Table(
            "A1: write-disruption window vs failure-detection delay",
            ["detection_delay", "disruption_window"],
        )
        for delay in (2.0, 10.0, 40.0):
            kernel = Kernel(seed=21)
            system = RowaaSystem(
                kernel, 3, {"X": 0},
                latency=ConstantLatency(1.0), detection_delay=delay,
                # Tight (but > RTT) timeouts so the detection delay, not
                # timeout machinery, is the binding term of the window.
                config=TxnConfig(rpc_timeout=8.0),
                rowaa_config=RowaaConfig(type2_verify_ping=3.0),
            )
            system.boot()
            crash_at = 20.0
            first_commit = [None]

            def hammer(first_commit=first_commit, kernel=kernel, system=system):
                from repro.errors import TransactionAborted

                while first_commit[0] is None:
                    def write(ctx):
                        yield from ctx.write("X", 1)

                    try:
                        yield from system.tms[1].run(write)
                        if kernel.now > crash_at:
                            first_commit[0] = kernel.now
                    except TransactionAborted:
                        yield kernel.timeout(1.0)

            kernel.run(until=crash_at)
            system.crash(3)
            kernel.process(hammer())
            kernel.run(until=400.0)
            system.stop()
            kernel.run(until=410.0)
            window = (first_commit[0] - crash_at) if first_commit[0] else None
            table.add_row(detection_delay=delay, disruption_window=window)
        return table

    table = run_once(benchmark, run)
    show(table)
    window = {row["detection_delay"]: row["disruption_window"] for row in table.rows}
    assert all(value is not None for value in window.values())
    assert window[2.0] < window[10.0] < window[40.0]
    # The window tracks the detection delay roughly one-for-one.
    assert window[40.0] - window[2.0] >= 0.5 * (40.0 - 2.0)


def test_a2_copier_concurrency(benchmark):
    """More copier lanes ⇒ faster drain, with diminishing returns."""

    def run():
        table = Table(
            "A2: staleness drain time vs copier concurrency (24 stale copies)",
            ["concurrency", "drain_time"],
        )
        for lanes in (1, 4, 16):
            config = RowaaConfig(copier_mode="eager", copier_concurrency=lanes)
            kernel, system = build_scheme(
                "rowaa", 31 + lanes, 3, {f"X{i}": 0 for i in range(24)},
                rowaa_config=config,
            )
            system.crash(3)
            settle(kernel, system, 60.0)
            for index in range(24):
                kernel.run(system.submit_with_retry(
                    1, _write(f"X{index}", index), attempts=4))
            power_at = kernel.now
            kernel.run(system.power_on(3))
            kernel.run(until=kernel.now + 2000)
            system.stop()
            drained = system.copiers[3].drained_at
            table.add_row(concurrency=lanes, drain_time=drained - power_at)
        return table

    table = run_once(benchmark, run)
    show(table)
    drain = {row["concurrency"]: row["drain_time"] for row in table.rows}
    assert drain[4] <= drain[1]
    assert drain[16] <= drain[4] + 1.0  # diminishing returns allowed


def test_a3_concurrency_control(benchmark):
    """2PL vs TO on a contended read-modify-write mix."""

    def run():
        table = Table(
            "A3: 2PL vs timestamp ordering under contention",
            ["cc", "committed", "aborted", "deadlock_victims", "to_rejections"],
        )
        for cc in ("2pl", "to"):
            spec = WorkloadSpec(n_items=6, ops_per_txn=3, write_fraction=0.5,
                                zipf_s=0.8)
            kernel = Kernel(seed=77)
            system = RowaaSystem(
                kernel, 3, spec.initial_items(),
                latency=ConstantLatency(1.0),
                config=TxnConfig(rpc_timeout=25.0, deadlock_interval=15.0),
                concurrency=cc,
            )
            system.boot()
            pool = ClientPool(system, WorkloadGenerator(spec, random.Random(6)),
                              n_clients=6, think_time=2.0, retries=2)
            pool.start(400.0)
            kernel.run(until=450.0)
            system.stop()
            kernel.run(until=460.0)
            to_rejections = sum(
                getattr(dm, "stats_to_rejections", 0) for dm in system.dms.values()
            )
            table.add_row(
                cc=cc,
                committed=pool.stats.committed,
                aborted=pool.stats.aborted,
                deadlock_victims=system.deadlock_detector.victims_chosen,
                to_rejections=to_rejections,
            )
        return table

    table = run_once(benchmark, run)
    show(table)
    (two_pl,) = table.where(cc="2pl")
    (to,) = table.where(cc="to")
    assert two_pl["committed"] > 0 and to["committed"] > 0
    assert to["deadlock_victims"] == 0  # TO cannot deadlock
    assert to["to_rejections"] > 0  # it aborts conflicts instead


def _write(item, value):
    def program(ctx):
        yield from ctx.write(item, value)

    return program

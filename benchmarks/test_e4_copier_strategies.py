"""E4 — copier scheduling (DESIGN.md §3, claim of §3.2)."""

from benchmarks.conftest import run_once, show
from repro.harness.experiments import e4_copiers


def test_e4_copier_strategies(benchmark):
    table = run_once(
        benchmark,
        lambda: e4_copiers.run(
            seed=3,
            n_items=16,
            stale_fraction=0.5,
            read_duration=400.0,
        ),
    )
    show(table)

    def row(mode):
        (r,) = table.where(mode=mode)
        return r

    # Eager (and both) drain everything promptly.
    assert row("eager")["drain_time"] is not None
    assert row("both")["drain_time"] is not None
    # Demand-only is no faster than eager and forces more redirects.
    if row("demand")["drain_time"] is not None:
        assert row("demand")["drain_time"] >= row("eager")["drain_time"]
    assert row("demand")["redirected_reads"] >= row("eager")["redirected_reads"]
    # With no copiers at all, reads keep redirecting for the whole run.
    assert row("none")["redirected_reads"] > row("demand")["redirected_reads"]
    assert row("none")["copies_performed"] == 0

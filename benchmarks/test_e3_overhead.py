"""E3 — failure-free overhead (DESIGN.md §3, claim of §6)."""

from benchmarks.conftest import run_once, show
from repro.harness.experiments import e3_overhead


def test_e3_overhead(benchmark):
    table = run_once(
        benchmark,
        lambda: e3_overhead.run(
            seed=3,
            site_counts=(3, 5),
            n_items=16,
            load_duration=400.0,
        ),
    )
    show(table)

    for n_sites in (3, 5):
        (rowaa,) = table.where(scheme="rowaa", sites=n_sites)
        (naive,) = table.where(scheme="naive", sites=n_sites)
        # "The extra cost to user transactions is negligible" (§6):
        # within 10% of the machinery-free floor on every metric.
        assert rowaa["throughput"] >= naive["throughput"] * 0.9
        assert rowaa["mean_latency"] <= naive["mean_latency"] * 1.1
        assert rowaa["msgs_per_commit"] <= naive["msgs_per_commit"] * 1.1

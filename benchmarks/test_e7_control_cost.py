"""E7 — control-transaction cost (DESIGN.md §3, claim of §6)."""

from benchmarks.conftest import run_once, show
from repro.harness.experiments import e7_control_cost


def test_e7_control_cost(benchmark):
    table = run_once(
        benchmark,
        lambda: e7_control_cost.run(seed=3, item_counts=(4, 16, 32)),
    )
    show(table)

    def row(scheme, items):
        (r,) = table.where(scheme=scheme, items=items)
        return r

    # Status transactions: per-site (flat) vs per-item (linear).
    assert row("rowaa", 4)["status_txns"] == row("rowaa", 32)["status_txns"] == 2
    assert row("directories", 32)["status_txns"] >= 8 * row(
        "directories", 4
    )["status_txns"] // 2
    assert (
        row("directories", 32)["status_txns"]
        > row("rowaa", 32)["status_txns"] * 10
    )

    # With precise identification and nothing updated, ROWAA's total
    # failure-handling traffic is flat in the database size.
    assert (
        row("rowaa-faillocks", 32)["remote_messages"]
        == row("rowaa-faillocks", 4)["remote_messages"]
    )
    # The directory scheme's grows linearly.
    assert row("directories", 32)["remote_messages"] >= 4 * row(
        "directories", 4
    )["remote_messages"]

"""Shared helpers for the experiment benchmarks.

Each benchmark regenerates one experiment table (DESIGN.md §3) at
reduced scale, prints it, and asserts the paper's expected *shape* —
who wins and by roughly what factor, not absolute numbers.

Run with::

    pytest benchmarks/ --benchmark-only

The experiments are single deterministic simulations, so each runs for
exactly one benchmark round.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark clock; return result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def show(table) -> None:
    print()
    print(table.render())

"""Read-heavy product catalog with on-demand copiers.

Models a retail catalog: a skewed (zipfian) read-mostly workload over a
partially replicated item set. A storage site crashes during the rush;
after it rejoins, reads at that site transparently redirect away from
stale copies while *demand-triggered* copiers renovate exactly the
products customers actually look at — the §3.2 on-demand strategy.

Run:  python examples/inventory_catalog.py
"""

import random

from repro.core import RowaaConfig, RowaaSystem
from repro.net import ConstantLatency
from repro.sim import Kernel
from repro.storage import Catalog
from repro.workload import ClientPool, WorkloadGenerator, WorkloadSpec

N_SITES = 4
N_PRODUCTS = 40
REPLICATION = 2


def main():
    kernel = Kernel(seed=2026)
    spec = WorkloadSpec(
        n_items=N_PRODUCTS,
        ops_per_txn=3,
        write_fraction=0.05,   # mostly browsing, occasional restock
        zipf_s=1.1,            # strong bestseller skew
    )
    catalog = Catalog.random_placement(
        list(range(1, N_SITES + 1)),
        spec.item_names(),
        REPLICATION,
        random.Random(5),
    )
    system = RowaaSystem(
        kernel,
        n_sites=N_SITES,
        items=spec.initial_items(100),   # 100 units of everything
        catalog=catalog,
        latency=ConstantLatency(1.0),
        detection_delay=5.0,
        rowaa_config=RowaaConfig(
            copier_mode="demand",            # renovate only what is read
            unreadable_policy="redirect",    # never block a customer
            identify_mode="fail-locks",      # mark only what went stale
        ),
    )
    system.boot()

    pool = ClientPool(
        system,
        WorkloadGenerator(spec, random.Random(7)),
        n_clients=8,
        think_time=3.0,
        retries=2,
    )
    pool.start(1200.0)

    def crash_and_recover():
        yield kernel.timeout(300.0)
        print(f"[t={kernel.now:7.1f}] site 4 crashes mid-rush")
        system.crash(4)
        yield kernel.timeout(200.0)
        print(f"[t={kernel.now:7.1f}] site 4 reboots")
        record = yield system.power_on(4)
        print(f"[t={kernel.now:7.1f}] site 4 operational again after "
              f"{record.time_to_operational:.1f} (marked {record.marked_items} "
              f"of {len(catalog.items_at(4))} resident copies stale)")

    kernel.process(crash_and_recover())
    kernel.run(until=1300.0)
    system.stop()
    kernel.run(until=kernel.now + 10)

    stats = pool.stats
    print(f"\ncustomer transactions: attempted={stats.attempted} "
          f"committed={stats.committed} aborted={stats.aborted} "
          f"refused={stats.refused}")
    print(f"availability through the incident: {stats.availability:.3f}")

    copiers = system.copiers[4]
    dm = system.dms[4]
    print(f"\non-demand copiers at site 4: performed={copiers.stats.copies_performed} "
          f"version-skips={copiers.stats.copies_skipped_version}")
    print(f"reads redirected away from stale copies: "
          f"{dm.stats_unreadable_rejections}")
    leftover = [item for item in system.cluster.site(4).copies.unreadable_items()
                if not item.startswith("NS[")]
    print(f"cold products still awaiting a copier: {len(leftover)} "
          "(they renovate on first read or next restock)")


if __name__ == "__main__":
    main()

"""Why the paper excludes network partitions — demonstrated.

"The algorithm presented in this paper does not handle partition
failures" (§1); §6 sketches how nominal session numbers might extend to
partition *merging* as future work.

This demo partitions a 3-site ROWAA system into {1} vs {2, 3} and shows
the exact boundary behaviour:

* the failure detector stays silent (it is sound for *crashes* only, and
  nobody crashed), so no type-2 exclusion ever runs;
* every write therefore still targets all three nominal copies and
  blocks/aborts on the unreachable side — the system is SAFE but
  (write-)UNAVAILABLE on both sides — no split brain, no divergence;
* majority quorum, by contrast, keeps committing in the majority
  partition and stays consistent after healing — availability under
  partitions is exactly what quorums buy.

After healing, the ROWAA system resumes at full availability with zero
recovery work: no copy ever diverged.

Run:  python examples/partition_demo.py
"""

from repro.baselines import build_quorum_system
from repro.core import RowaaSystem
from repro.errors import TransactionAborted
from repro.net import ConstantLatency
from repro.sim import Kernel
from repro.txn import TxnConfig


def write_program(item, value):
    def program(ctx):
        yield from ctx.write(item, value)

    return program


def read_program(item):
    def program(ctx):
        value = yield from ctx.read(item)
        return value

    return program


def attempt(kernel, system, site, program):
    try:
        result = kernel.run(system.submit(site, program))
        return f"committed ({result})" if result is not None else "committed"
    except TransactionAborted as exc:
        return f"aborted: {exc.reason}"


def main():
    print("=== ROWAA under a partition: safe, but writes block ===")
    kernel = Kernel(seed=5)
    rowaa = RowaaSystem(
        kernel, n_sites=3, items={"X": 0},
        latency=ConstantLatency(1.0), detection_delay=5.0,
        config=TxnConfig(rpc_timeout=15.0),
    )
    rowaa.boot()
    rowaa.cluster.network.set_partition([{1}, {2, 3}])
    print("partitioned into {1} | {2, 3}")
    print(f"  write at site 1:  {attempt(kernel, rowaa, 1, write_program('X', 1))}")
    print(f"  write at site 2:  {attempt(kernel, rowaa, 2, write_program('X', 2))}")
    print(f"  read  at site 1:  {attempt(kernel, rowaa, 1, read_program('X'))}")
    print(f"  read  at site 3:  {attempt(kernel, rowaa, 3, read_program('X'))}")
    print(f"  nominal views unchanged: {rowaa.nominal_view(1)} / "
          f"{rowaa.nominal_view(2)} — the crash-only detector never fired,")
    print("  so no type-2 exclusion: writes keep addressing all copies and")
    print("  time out. Nothing diverges; write availability is the price.")

    rowaa.cluster.network.heal_partition()
    print("healed.")
    print(f"  write at site 1:  {attempt(kernel, rowaa, 1, write_program('X', 10))}")
    values = {s: rowaa.copy_value(s, 'X') for s in (1, 2, 3)}
    print(f"  copies after heal: {values}  (consistent, no recovery needed)\n")

    print("=== majority quorum under the same partition ===")
    kernel2 = Kernel(seed=5)
    quorum = build_quorum_system(
        kernel2, 3, {"X": 0},
        latency=ConstantLatency(1.0), detection_delay=5.0,
        config=TxnConfig(rpc_timeout=15.0),
    )
    quorum.cluster.network.set_partition([{1}, {2, 3}])
    print("partitioned into {1} | {2, 3}")
    print(f"  write at site 1 (minority):  "
          f"{attempt(kernel2, quorum, 1, write_program('X', 1))}")
    print(f"  write at site 2 (majority):  "
          f"{attempt(kernel2, quorum, 2, write_program('X', 2))}")
    quorum.cluster.network.heal_partition()
    print("healed.")
    print(f"  read at site 1: {attempt(kernel2, quorum, 1, read_program('X'))}")
    print("  The majority side progressed; the version vote serves its value")
    print("  everywhere after healing — availability under partitions is the")
    print("  quorum trade (paid for on every operation, as E1/E3 show).")
    print()
    print("§6's future-work direction: treat each partition like a failed")
    print("site set and drive the merge with the session machinery. This")
    print("repository implements that sketch (primary-partition rule in")
    print("place of true-copy tokens [7]) — third act:\n")

    print("=== ROWAA + partition mode (the §6 prototype) ===")
    from repro.core import RowaaSystem as _RS
    from repro.core.partition_merge import PartitionConfig

    kernel3 = Kernel(seed=5)
    merged = _RS(
        kernel3, 5, {"X": 0},
        latency=ConstantLatency(1.0), detection_delay=5.0,
        config=TxnConfig(rpc_timeout=15.0),
        partition_mode=True,
        partition_config=PartitionConfig(probe_interval=10.0, ping_timeout=5.0),
    )
    merged.boot()
    merged.cluster.network.set_partition([{1, 2}, {3, 4, 5}])
    print("partitioned into {1, 2} | {3, 4, 5}")
    kernel3.run(until=120)
    print(f"  minority frozen: site1={merged.cluster.site(1).user_frozen}, "
          f"site2={merged.cluster.site(2).user_frozen}")
    print(f"  write at site 4 (majority): "
          f"{attempt(kernel3, merged, 4, write_program('X', 77))}")
    merged.cluster.network.heal_partition()
    kernel3.run(until=kernel3.now + 400)
    print("healed; ex-minority demoted itself and re-ran the §3.4 procedure:")
    print(f"  demotions: site1={merged.partition_services[1].demotions}, "
          f"site2={merged.partition_services[2].demotions}")
    print(f"  read at site 1: {attempt(kernel3, merged, 1, read_program('X'))}")
    print("  The merge needed no new protocol — one-directional integration,")
    print("  exactly as §6 predicted.")


if __name__ == "__main__":
    main()

"""Quickstart: a replicated database that survives a site crash.

Boots a three-site fully replicated database running the paper's
session-number recovery protocol, runs transactions, crashes a site,
keeps operating, recovers it, and shows that the database converged.

Run:  python examples/quickstart.py
"""

from repro.core import RowaaSystem
from repro.net import ConstantLatency
from repro.sim import Kernel


def transfer(amount):
    """A transaction program: move `amount` from ACCT_A to ACCT_B."""

    def program(ctx):
        a = yield from ctx.read("ACCT_A")
        b = yield from ctx.read("ACCT_B")
        yield from ctx.write("ACCT_A", a - amount)
        yield from ctx.write("ACCT_B", b + amount)
        return (a - amount, b + amount)

    return program


def read_accounts(ctx):
    a = yield from ctx.read("ACCT_A")
    b = yield from ctx.read("ACCT_B")
    return a, b


def main():
    kernel = Kernel(seed=7)
    system = RowaaSystem(
        kernel,
        n_sites=3,
        items={"ACCT_A": 1000, "ACCT_B": 0},
        latency=ConstantLatency(1.0),   # one virtual ms per hop
        detection_delay=5.0,            # crash detection latency
    )
    system.boot()
    print(f"[t={kernel.now:6.1f}] booted 3 sites, sessions: "
          f"{ {s: system.sessions[s].current for s in (1, 2, 3)} }")

    # Normal operation: a transfer submitted at site 1.
    result = kernel.run(system.submit(1, transfer(250)))
    print(f"[t={kernel.now:6.1f}] transfer committed, balances now {result}")

    # Site 3 crashes. The survivors detect it and exclude it with a
    # type-2 control transaction; work continues without it.
    system.crash(3)
    print(f"[t={kernel.now:6.1f}] site 3 CRASHED")
    kernel.run(until=kernel.now + 30)
    print(f"[t={kernel.now:6.1f}] nominal view at site 1: {system.nominal_view(1)}"
          " (0 = nominally down)")

    result = kernel.run(system.submit(2, transfer(100)))
    print(f"[t={kernel.now:6.1f}] transfer during the outage committed: {result}")
    print(f"           stale copy at site 3: ACCT_A="
          f"{system.copy_value(3, 'ACCT_A')} (missed the update)")

    # Site 3 reboots and runs the paper's recovery procedure: mark
    # possibly-stale copies, announce a new session (type-1 control
    # transaction), resume user service immediately; copiers refresh the
    # data in the background.
    record = kernel.run(system.power_on(3))
    print(f"[t={kernel.now:6.1f}] site 3 recovered: session={record.session_number}, "
          f"time-to-operational={record.time_to_operational:.1f}, "
          f"marked {record.marked_items} copies unreadable")

    kernel.run(until=kernel.now + 60)  # let the copiers drain
    balances = kernel.run(system.submit(3, read_accounts))
    print(f"[t={kernel.now:6.1f}] read AT the recovered site: "
          f"A={balances[0]}, B={balances[1]} (sum={sum(balances)})")
    print(f"           copies of ACCT_A: " + ", ".join(
        f"site {s}={system.copy_value(s, 'ACCT_A')}" for s in (1, 2, 3)))

    from repro.core.nominal import db_item_filter
    from repro.histories import check_one_sr, check_theorem3
    print(f"           Theorem 3 invariant: {check_theorem3(system.recorder).ok}, "
          f"one-serializable: {check_one_sr(system.recorder, item_filter=db_item_filter).ok}")


if __name__ == "__main__":
    main()

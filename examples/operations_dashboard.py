"""An operator's view of an incident: live trace + post-mortem report.

Runs a mixed workload through a double-failure incident and prints what
an on-call operator would want: a structured event timeline (site
lifecycle, control transactions, recoveries) and the per-site /
abort-reason / network report tables.

Run:  python examples/operations_dashboard.py
"""

import random

from repro.core import RowaaSystem
from repro.harness.report import full_report
from repro.harness.trace import SystemTracer
from repro.net import ConstantLatency
from repro.sim import Kernel
from repro.workload import ClientPool, WorkloadGenerator, WorkloadSpec


def main():
    kernel = Kernel(seed=404)
    spec = WorkloadSpec(n_items=16, ops_per_txn=3, write_fraction=0.4)
    system = RowaaSystem(
        kernel,
        n_sites=4,
        items=spec.initial_items(),
        latency=ConstantLatency(1.0),
        detection_delay=5.0,
    )
    system.boot()
    tracer = SystemTracer(system, keep_user_txns=False)  # protocol events only

    pool = ClientPool(
        system,
        WorkloadGenerator(spec, random.Random(2)),
        n_clients=6,
        think_time=3.0,
        retries=2,
    )
    pool.start(600.0)

    def incident():
        yield kernel.timeout(120.0)
        system.crash(3)                      # first failure
        yield kernel.timeout(60.0)
        system.crash(4)                      # second failure, overlapping
        yield kernel.timeout(80.0)
        yield system.power_on(3)             # 3 recovers while 4 is down
        yield kernel.timeout(100.0)
        yield system.power_on(4)

    kernel.process(incident())
    kernel.run(until=700.0)
    system.stop()
    kernel.run(until=720.0)

    print("=== incident timeline (protocol events) ===")
    print(tracer.render())
    print()
    print("=== post-mortem report ===")
    print(full_report(system))
    print()
    stats = pool.stats
    print(f"client availability through the incident: {stats.availability:.3f} "
          f"({stats.committed}/{stats.attempted} committed, "
          f"{stats.refused} refused at down sites)")


if __name__ == "__main__":
    main()

"""Bank ledger under fire: money conservation across crashes.

A 4-site replicated bank. Concurrent clients transfer money between
accounts while sites crash and recover on a random schedule. At the end
the example verifies the classic invariants:

* conservation — the total balance never changes;
* convergence — after recovery quiesces, all readable copies agree;
* one-serializability — the recorded execution passes the paper's §4
  checker.

Run:  python examples/bank_ledger.py
"""

import random

from repro.core import RowaaSystem
from repro.core.nominal import db_item_filter
from repro.errors import Interrupt, NotOperational, TransactionAborted
from repro.histories import check_one_sr, check_theorem3
from repro.net import ConstantLatency
from repro.sim import Kernel
from repro.workload import FailureSchedule

N_ACCOUNTS = 10
INITIAL_BALANCE = 100
N_SITES = 4
DURATION = 1500.0


def account(index):
    return f"ACCT_{index}"


def transfer_program(src, dst, amount):
    def program(ctx):
        a = yield from ctx.read(account(src))
        if not isinstance(a, int) or a < amount:
            return "insufficient"
        b = yield from ctx.read(account(dst))
        yield from ctx.write(account(src), a - amount)
        yield from ctx.write(account(dst), b + amount)
        return "moved"

    return program


def teller(kernel, system, home, rng, stats, deadline):
    """A closed-loop client issuing random transfers from one site."""
    while kernel.now < deadline:
        src, dst = rng.sample(range(N_ACCOUNTS), 2)
        amount = rng.randint(1, 30)
        site = system.cluster.site(home)
        if site.is_operational:
            proc = system.tms[home].submit(transfer_program(src, dst, amount))
            try:
                outcome = yield proc
                stats[outcome] += 1
            except (TransactionAborted, NotOperational, Interrupt):
                stats["aborted"] += 1
        else:
            stats["refused"] += 1
        yield kernel.timeout(rng.uniform(2.0, 8.0))


def main():
    kernel = Kernel(seed=1234)
    system = RowaaSystem(
        kernel,
        n_sites=N_SITES,
        items={account(i): INITIAL_BALANCE for i in range(N_ACCOUNTS)},
        latency=ConstantLatency(1.0),
        detection_delay=5.0,
    )
    system.boot()

    rng = random.Random(99)
    schedule = FailureSchedule.random_failures(
        system.cluster.site_ids, rng, horizon=DURATION * 0.8, mtbf=400, mttr=120
    )
    schedule.apply(system)
    print(f"injecting {len(schedule)} failure events over {DURATION} time units")

    stats = {"moved": 0, "insufficient": 0, "aborted": 0, "refused": 0}
    for index in range(6):
        home = 1 + index % N_SITES
        kernel.process(teller(kernel, system, home, random.Random(index), stats,
                              DURATION))

    kernel.run(until=DURATION)
    # Quiesce: bring everything back and let copiers drain.
    for site_id in system.cluster.site_ids:
        if system.cluster.site(site_id).is_down:
            system.power_on(site_id)
    kernel.run(until=DURATION + 800)
    system.stop()
    kernel.run(until=kernel.now + 10)

    print(f"teller outcomes: {stats}")
    recoveries = system.recovery_records()
    completed = sum(1 for record in recoveries if record.succeeded)
    print(f"recovery attempts: {len(recoveries)} ({completed} completed; the "
          "rest were cut short by a follow-up crash and superseded)")
    print(f"final site states: "
          f"{ {s: system.cluster.site(s).status.value for s in system.cluster.site_ids} }")

    # Invariant 1: conservation.
    totals = {}
    for site_id in system.cluster.site_ids:
        balances = [system.copy_value(site_id, account(i)) for i in range(N_ACCOUNTS)]
        totals[site_id] = sum(balances)
    expected = N_ACCOUNTS * INITIAL_BALANCE
    print(f"per-site totals: {totals} (expected {expected})")
    assert all(total == expected for total in totals.values())

    # Invariant 2: convergence.
    for index in range(N_ACCOUNTS):
        values = {system.copy_value(s, account(index)) for s in system.cluster.site_ids}
        assert len(values) == 1, f"{account(index)} diverged: {values}"
    print("all replicas converged")

    # Invariant 3: one-serializability (§4).
    print(f"Theorem 3 invariant: {check_theorem3(system.recorder).ok}")
    verdict = check_one_sr(system.recorder, item_filter=db_item_filter)
    print(f"one-serializable: {verdict.ok} (method: {verdict.method})")
    assert verdict.ok


if __name__ == "__main__":
    main()

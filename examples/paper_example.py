"""The paper's §1 counter-example, reproduced live — twice.

    "Transaction T_a reads X and writes Y, transaction T_b reads Y and
     writes X. Both X and Y have two copies at site 1 and site 2. ...
     A history  Ra[x1] Rb[y1] (site 1 crashes) Wa[y2] Wb[x2]  is
     acceptable by a concurrency control algorithm that concerns only
     the serializability of physical operations. ... When site 1
     recovers, x1 and y1 may be updated by copier transactions. No
     matter how the copiers are scheduled, the database cannot be
     brought up to a consistent state."

First under the naive write-all-available scheme: both transactions
commit and the execution is provably not one-serializable. Then under
the paper's ROWAA protocol: both transactions abort (their views still
name the crashed site), and consistency is preserved.

Run:  python examples/paper_example.py
"""

from repro.baselines import build_naive_system
from repro.core import RowaaSystem
from repro.errors import TransactionAborted
from repro.histories import check_one_sr, check_sr
from repro.net import ConstantLatency
from repro.sim import Kernel
from repro.storage import Catalog
from repro.txn import TxnConfig


def two_copy_catalog():
    catalog = Catalog([1, 2, 3])
    catalog.add_item("X", [1, 2])
    catalog.add_item("Y", [1, 2])
    return catalog


def txn_a(kernel):
    def program(ctx):
        x = yield from ctx.read("X")        # Ra[x1]
        yield kernel.timeout(50)            # ... site 1 crashes here ...
        yield from ctx.write("Y", x)        # Wa[y*]
        return "committed"

    return program


def txn_b(kernel):
    def program(ctx):
        y = yield from ctx.read("Y")        # Rb[y1]
        yield kernel.timeout(50)
        yield from ctx.write("X", y)        # Wb[x*]
        return "committed"

    return program


def drive(system, kernel):
    """Submit both transactions at site 3 and crash site 1 mid-flight."""
    proc_a = system.submit(3, txn_a(kernel))
    proc_b = system.submit(3, txn_b(kernel))
    kernel.run(until=5)
    system.crash(1)
    outcomes = []
    for proc in (proc_a, proc_b):
        try:
            outcomes.append(kernel.run(proc))
        except TransactionAborted as exc:
            outcomes.append(f"aborted ({exc.reason})")
    return outcomes


def main():
    print("=== naive write-all-available (the scheme of the example) ===")
    kernel = Kernel(seed=42)
    naive = build_naive_system(
        kernel, 3, {"X": 0, "Y": 0}, catalog=two_copy_catalog(),
        latency=ConstantLatency(1.0), detection_delay=5.0,
        config=TxnConfig(rpc_timeout=20.0),
    )
    outcomes = drive(naive, kernel)
    print(f"T_a: {outcomes[0]},  T_b: {outcomes[1]}")
    physical = check_sr(naive.recorder)
    logical = check_one_sr(naive.recorder)
    print(f"physically serializable: {physical.ok} ({physical.method})")
    print(f"one-serializable:        {logical.ok} ({logical.method})")
    print("-> both committed, the copies can never be reconciled.\n")

    print("=== the paper's ROWAA protocol ===")
    kernel = Kernel(seed=42)
    rowaa = RowaaSystem(
        kernel, 3, {"X": 0, "Y": 0}, catalog=two_copy_catalog(),
        latency=ConstantLatency(1.0), detection_delay=5.0,
        config=TxnConfig(rpc_timeout=20.0),
    )
    rowaa.boot()
    outcomes = drive(rowaa, kernel)
    print(f"T_a: {outcomes[0]},  T_b: {outcomes[1]}")
    logical = check_one_sr(rowaa.recorder)
    print(f"one-serializable: {logical.ok} ({logical.method})")
    print("-> the writers' views still named the crashed site, so the")
    print("   write-all-available interpretation could not complete and")
    print("   both transactions aborted. A retry after the type-2")
    print("   exclusion would commit safely against site 2 alone.")


if __name__ == "__main__":
    main()

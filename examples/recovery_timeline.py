"""An annotated recovery timeline, policy by policy.

Replays the same outage under the three §5 identification policies and
prints what each phase of the §3.4 procedure did and when:

  power-on → collect/mark (step 2) → type-1 (steps 3-4) → operational
  → copiers drain in the background.

Run:  python examples/recovery_timeline.py
"""

from repro.core import RowaaConfig, RowaaSystem
from repro.net import ConstantLatency
from repro.sim import Kernel

N_ITEMS = 12
UPDATED_DURING_OUTAGE = 3


def write_program(item, value):
    def program(ctx):
        yield from ctx.write(item, value)

    return program


def one_run(identify_mode):
    kernel = Kernel(seed=3)
    system = RowaaSystem(
        kernel,
        n_sites=3,
        items={f"X{i}": 0 for i in range(N_ITEMS)},
        latency=ConstantLatency(1.0),
        detection_delay=5.0,
        rowaa_config=RowaaConfig(copier_mode="eager", identify_mode=identify_mode),
    )
    system.boot()

    system.crash(3)
    kernel.run(until=40)
    for index in range(UPDATED_DURING_OUTAGE):
        kernel.run(system.submit(1, write_program(f"X{index}", index + 1)))

    print(f"--- identify_mode = {identify_mode} ---")
    power_at = kernel.now
    print(f"[t={power_at:6.1f}] site 3 powers on (state: recovering, as[3]=0)")
    record = kernel.run(system.power_on(3))
    print(f"[t={record.identified_at:6.1f}] step 2 done: marked "
          f"{record.marked_items}/{N_ITEMS} copies unreadable "
          f"({UPDATED_DURING_OUTAGE} actually missed updates)")
    print(f"[t={record.operational_at:6.1f}] type-1 committed on attempt "
          f"{record.type1_attempts}: session {record.session_number} announced; "
          "site 3 accepts user transactions NOW")
    kernel.run(until=kernel.now + 300)
    copiers = system.copiers[3]
    drained = copiers.drained_at
    print(f"[t={drained:6.1f}] background copiers done: "
          f"{copiers.stats.copies_performed} copied, "
          f"{copiers.stats.copies_skipped_version} skipped by version match")
    print(f"    time-to-operational: {record.time_to_operational:.1f}   "
          f"time-to-caught-up: {drained - power_at:.1f}\n")
    system.stop()


def main():
    for mode in ("mark-all", "fail-locks", "missing-lists"):
        one_run(mode)
    print("Note how the choice changes only the background copier work")
    print("(and the step-2 chatter) — time-to-operational stays flat,")
    print("which is the paper's headline property.")


if __name__ == "__main__":
    main()

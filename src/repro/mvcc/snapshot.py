"""Snapshot lifetimes for read-only transactions at one site.

``beginRO`` goes through the :class:`SnapshotManager`: it asks the
site's :class:`~repro.mvcc.store.MultiVersionStore` for the current
serving cut, pins that cut against garbage collection, and hands the
transaction a :class:`Snapshot` carrying the explicit staleness bound
(`kernel.now - cut`) the client is promised. Releasing the snapshot
(commit or abort, in ``finally``) drops the pin so GC can advance.
"""

from __future__ import annotations

import typing

from repro.mvcc.store import Cut, MultiVersionStore


class Snapshot:
    """One read-only transaction's pinned, consistent committed cut."""

    __slots__ = ("pin_id", "cut", "taken_at", "staleness", "stale")

    def __init__(
        self, pin_id: int, cut: Cut, taken_at: float, stale: bool
    ) -> None:
        self.pin_id = pin_id
        self.cut = cut
        self.taken_at = taken_at
        #: The explicit bound surfaced to the client: every read in this
        #: transaction reflects all commits decided before
        #: ``taken_at - staleness``.
        self.staleness = taken_at - cut[0]
        #: True when the serving site was recovering (or still held
        #: unreadable copies) at begin time — the cut is then the durable
        #: stale cut rather than the rolling ``now - D`` floor.
        self.stale = stale

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "stale" if self.stale else "current"
        return f"<Snapshot cut={self.cut} staleness={self.staleness:g} {mode}>"


class SnapshotManager:
    """Assigns and releases snapshots for one site's ``beginRO`` path."""

    def __init__(
        self, kernel: typing.Any, site: typing.Any, store: MultiVersionStore
    ) -> None:
        self.kernel = kernel
        self.site = site
        self.store = store
        self.begun = 0
        # Created eagerly so the metric catalog (and its doc-drift gate)
        # sees the histogram even in runs with no read-only traffic.
        self._age = site.obs.registry.histogram(
            "mvcc.snapshot_age", site.site_id
        )

    def begin(self) -> Snapshot:
        """Pin and return the snapshot a ``beginRO`` reads at."""
        cut, stale = self.store.serving_cut()
        pin_id = self.store.pin(cut)
        snapshot = Snapshot(pin_id, cut, self.kernel.now, stale)
        self.begun += 1
        self._age.observe(snapshot.staleness)
        return snapshot

    def release(self, snapshot: Snapshot) -> None:
        """Unpin; idempotent (release twice is a no-op)."""
        self.store.release(snapshot.pin_id)

    def active(self) -> int:
        return self.store.active_pins()

"""Multiversion snapshot reads: lock-free read-only transactions.

The subsystem behind ``beginRO`` (see DESIGN.md "Snapshot reads"):

* :class:`~repro.mvcc.store.MultiVersionStore` — per-site committed
  version chains layered over :class:`~repro.storage.copies.CopyStore`
  via its ``version_hooks`` (writers and the WAL replay path are
  untouched), with snapshot-bounded garbage collection.
* :class:`~repro.mvcc.snapshot.SnapshotManager` — assigns each
  read-only transaction a consistent committed cut, pins it against GC,
  and surfaces the staleness bound.

Read-only transactions take no locks, run no 2PC, and never participate
in deadlocks; a recovering site answers them from the versions it
provably holds while copiers drain its missing list.
"""

from repro.mvcc.snapshot import Snapshot, SnapshotManager
from repro.mvcc.store import MultiVersionStore, MvccStats, VersionChain

__all__ = [
    "MultiVersionStore",
    "MvccStats",
    "Snapshot",
    "SnapshotManager",
    "VersionChain",
]

"""Per-site committed version chains with snapshot-bounded GC.

The store observes its site's :class:`~repro.storage.copies.CopyStore`
through the ``version_hooks`` seam: every committed apply ("write") and
every replay install ("install") appends to the item's chain, so live
commits and WAL restarts feed the same structure without the writer or
the replay path knowing multiversioning exists. Chains are ordered by
the version key ``(ts, commit)`` — the same total commit order the
single-version copies use.

Snapshot cuts
-------------

A read-only transaction reads at a *cut* ``(ts, 0)``: per item, the
newest chain version with key <= the cut. Two regimes pick the cut:

* **Current site** (operational, no unreadable marks): ``ts = now - D``
  where ``D`` (``floor_delay``) upper-bounds the one-way delivery
  latency of commit messages. Every committed version decided before
  ``now - D`` has then been applied locally, so the cut is a consistent
  committed prefix of the global commit order — at the price of a
  staleness bound of ``D``.
* **Recovering / stale site** (not operational, or holding unreadable
  marks): the durable ``stale_cut``, advanced at restore to
  ``last_crash_time - D`` only when the pre-crash durable state shows
  the site was fully current (no unreadable marks survived in the
  checkpoint + log). Writes the site missed during the outage were all
  decided after that instant, so the versions below the cut are exactly
  the ones the site provably holds — this is what lets a recovering
  site answer snapshot reads while copiers drain its missing list.

Both cuts only ever grow, which keeps GC sound: the horizon is the
minimum of the current serving cut and every pinned snapshot, and a
sweep keeps, per chain, the newest version at-or-below the horizon (the
floor any pinned or future cut can still need) plus everything above it.
"""

from __future__ import annotations

import bisect
import typing

from repro.errors import SnapshotUnavailable
from repro.storage.copies import Version

#: A snapshot cut: the ``(ts, commit)`` prefix bound on version keys.
Cut = typing.Tuple[float, int]


def version_key(version: Version) -> Cut:
    """The commit-order key of a version (``seq`` is provenance only)."""
    return (version.ts, version.commit)


class VersionRecord:
    """One committed version of one item (REP006: hot record, slotted)."""

    __slots__ = ("version", "value")

    def __init__(self, version: Version, value: object) -> None:
        self.version = version
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VersionRecord {tuple(self.version)} {self.value!r}>"


class VersionChain:
    """The committed versions of one item at one site, oldest first."""

    __slots__ = ("item", "records", "keys")

    def __init__(self, item: str) -> None:
        self.item = item
        self.records: list[VersionRecord] = []
        self.keys: list[Cut] = []

    def __len__(self) -> int:
        return len(self.records)

    def insert(self, version: Version, value: object) -> bool:
        """Insert in key order; duplicates (same key) are ignored.

        Interior inserts happen: a copier write carries the original
        writer's version, and an in-doubt apply after a restart can land
        below versions a faster peer already shipped here.
        """
        key = version_key(version)
        index = bisect.bisect_left(self.keys, key)
        if index < len(self.keys) and self.keys[index] == key:
            return False
        self.keys.insert(index, key)
        self.records.insert(index, VersionRecord(version, value))
        return True

    def floor(self, cut: Cut) -> VersionRecord | None:
        """The newest record with key <= ``cut``; None if the chain has
        been truncated (or never reached) below the cut."""
        index = bisect.bisect_right(self.keys, cut)
        if index == 0:
            return None
        return self.records[index - 1]

    def versions(self) -> list[Version]:
        """The chain's versions, oldest first (audit hooks, tests)."""
        return [record.version for record in self.records]


class MvccStats:
    """Counters scraped by the ``mvcc.*`` metric collectors."""

    __slots__ = ("ro_served", "ro_served_stale", "gc_reclaimed", "gc_sweeps")

    def __init__(self) -> None:
        self.ro_served = 0
        #: Reads answered while this site was recovering or still held
        #: unreadable marks — the headline of E11.
        self.ro_served_stale = 0
        self.gc_reclaimed = 0
        self.gc_sweeps = 0


class MultiVersionStore:
    """Committed version chains for every copy at one site."""

    def __init__(
        self,
        kernel: typing.Any,
        site: typing.Any,
        floor_delay: float = 2.0,
        gc_period: float = 50.0,
    ) -> None:
        self.kernel = kernel
        self.site = site
        self.floor_delay = floor_delay
        self.gc_period = gc_period
        #: Durable-safe cut while the site is not fully current; advanced
        #: only at restore (see :meth:`on_restore`) and persisted through
        #: WAL checkpoints.
        self.stale_cut = 0.0
        self._chains: dict[str, VersionChain] = {}
        self._pins: dict[int, Cut] = {}
        self._pin_counter = 0
        #: Fault-injection switch for the audit suite: with pins ignored,
        #: a sweep can reclaim a pinned snapshot's floor version, which
        #: the auditor's ``mvcc.gc_pinned`` rule must catch.
        self.gc_respect_pins = True
        #: Observers called as ``hook(item, removed, pins, chain_before)``
        #: per chain a sweep truncated: the removed Versions, the pinned
        #: cuts active at sweep time, and the pre-sweep version list.
        self.gc_hooks: list[typing.Callable] = []
        self._gc_proc: typing.Any = None
        self.stats = MvccStats()
        # Seed chains from the copies already installed (CopyStore.create
        # predates the store), then observe every later mutation.
        for item in site.copies.items():
            copy = site.copies.get(item)
            self._observe(item, copy.value, copy.version)
        site.copies.version_hooks.append(self._on_copy_event)

    # -- chain maintenance ----------------------------------------------------

    def _on_copy_event(
        self, op: str, item: str | None, value: object, version: Version | None
    ) -> None:
        if op == "reset":
            # Restore path: chains rebuild from the checkpoint installs +
            # replay that follow, then :meth:`on_restore` merges the
            # checkpointed chain tails back in.
            self._chains.clear()
            return
        assert item is not None and version is not None
        self._observe(item, value, version)

    def _observe(self, item: str, value: object, version: Version) -> None:
        chain = self._chains.get(item)
        if chain is None:
            chain = self._chains[item] = VersionChain(item)
        chain.insert(version, value)

    def chain(self, item: str) -> VersionChain | None:
        return self._chains.get(item)

    def versions_retained(self) -> int:
        return sum(len(chain) for chain in self._chains.values())

    # -- snapshot cuts --------------------------------------------------------

    def is_stale_serving(self) -> bool:
        """Whether snapshot reads here are currently fenced by the
        durable stale cut (recovering, or unreadable marks remain)."""
        if not self.site.is_operational:
            return True
        copies = self.site.copies
        for item in copies.items():
            if copies.get(item).unreadable:
                return True
        return False

    def serving_cut(self) -> tuple[Cut, bool]:
        """The cut a read-only transaction beginning now reads at, and
        whether it is the stale (recovery) cut."""
        if self.is_stale_serving():
            return (self.stale_cut, 0), True
        return (max(0.0, self.kernel.now - self.floor_delay), 0), False

    def read_at(self, item: str, cut: Cut) -> tuple[object, Version]:
        """Serve one snapshot read: the newest version with key <= cut."""
        chain = self._chains.get(item)
        record = chain.floor(cut) if chain is not None else None
        if record is None:
            raise SnapshotUnavailable(item, self.site.site_id, cut[0])
        return record.value, record.version

    # -- pins (snapshot lifetimes) --------------------------------------------

    def pin(self, cut: Cut) -> int:
        self._pin_counter += 1
        self._pins[self._pin_counter] = cut
        return self._pin_counter

    def release(self, pin_id: int) -> None:
        self._pins.pop(pin_id, None)

    def active_pins(self) -> int:
        return len(self._pins)

    def oldest_pin(self) -> Cut | None:
        pins = list(self._pins.values())
        return min(pins) if pins else None

    # -- garbage collection ---------------------------------------------------

    def gc_horizon(self) -> Cut:
        """Keep-everything-above bound: the oldest cut any active pin —
        or any snapshot that could still begin — may read at."""
        horizon, _stale = self.serving_cut()
        if self.gc_respect_pins:
            for cut in self._pins.values():
                if cut < horizon:
                    horizon = cut
        return horizon

    def sweep(self) -> int:
        """One GC pass: truncate every chain below the horizon, keeping
        the floor version each surviving cut still resolves to."""
        horizon = self.gc_horizon()
        pins = tuple(sorted(self._pins.values()))
        reclaimed = 0
        for item in sorted(self._chains):
            chain = self._chains[item]
            index = bisect.bisect_right(chain.keys, horizon)
            if index <= 1:
                continue  # at most the floor sits at-or-below the horizon
            chain_before = chain.versions()
            removed = [record.version for record in chain.records[: index - 1]]
            del chain.records[: index - 1]
            del chain.keys[: index - 1]
            reclaimed += len(removed)
            for hook in self.gc_hooks:
                hook(item, removed, pins, chain_before)
        self.stats.gc_reclaimed += reclaimed
        self.stats.gc_sweeps += 1
        return reclaimed

    def run_gc(self) -> typing.Generator:
        """Background sweep loop; spawn via ``site.spawn`` so it dies
        with a crash and restarts with the power-on hook."""
        while True:
            yield self.kernel.timeout(self.gc_period)
            self.sweep()

    def stop_gc(self) -> None:
        """Halt the periodic sweeps (lets ``kernel.run()`` drain) —
        same contract as ``DeadlockDetector.stop``."""
        if self._gc_proc is not None and self._gc_proc.is_alive:
            self._gc_proc.interrupt("stop")
        self._gc_proc = None

    def on_power_on(self) -> None:
        """Site power-on hook: restart the background GC sweep."""
        self._gc_proc = self.site.spawn(
            self.run_gc(), name=f"mvcc-gc[{self.site.site_id}]"
        )

    # -- WAL integration ------------------------------------------------------

    def checkpoint_payload(self) -> dict:
        """Chain tails + the durable cut, persisted inside the site's
        fuzzy checkpoint (the GC horizon survives restarts with it)."""
        return {
            "cut": self.stale_cut,
            "chains": [
                (
                    item,
                    [
                        (rec.version.ts, rec.version.commit, rec.version.seq,
                         rec.value)
                        for rec in self._chains[item].records
                    ],
                )
                for item in sorted(self._chains)
            ],
        }

    def on_restore(self, payload: dict | None) -> None:
        """Post-replay handoff from ``SiteWal.restore``.

        The reset/install hooks already rebuilt one-version chains from
        the checkpoint image plus replayed writes; this merges the
        checkpointed chain *tails* back in (interior inserts, idempotent)
        and re-derives the durable stale cut: advanced to
        ``last_crash_time - D`` only when no unreadable mark survived in
        the durable state — a crash mid-recovery keeps the older cut,
        which is conservative (more stale) but never inconsistent.
        """
        base = 0.0
        if payload is not None:
            base = float(payload.get("cut", 0.0))
            for item, records in payload.get("chains", []):
                for ts, commit, seq, value in records:
                    self._observe(item, value, Version(ts, commit, seq))
        self.stale_cut = base
        copies = self.site.copies
        fully_current = True
        for item in copies.items():
            if copies.get(item).unreadable:
                fully_current = False
                break
        if fully_current:
            crash_time = self.site.last_crash_time or 0.0
            self.stale_cut = max(base, crash_time - self.floor_delay, 0.0)

    # -- determinism digest ---------------------------------------------------

    def digest_state(self) -> tuple:
        """Canonical chain image for the crash-replay determinism gate."""
        return (
            self.stale_cut,
            tuple(
                (
                    item,
                    tuple(
                        (rec.version.ts, rec.version.commit, rec.version.seq,
                         rec.value)
                        for rec in self._chains[item].records
                    ),
                )
                for item in sorted(self._chains)
            ),
        )

"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro list
    python -m repro e1 [--seed 3] [--scale small|full]
    python -m repro all --scale small

Each experiment prints the table documented in EXPERIMENTS.md; ``small``
scale finishes in a few seconds per experiment, ``full`` matches the
recorded tables.
"""

from __future__ import annotations

import argparse
import sys
import time
import typing

from repro.harness.experiments import (
    e1_availability,
    e2_resume,
    e3_overhead,
    e4_copiers,
    e5_identification,
    e6_multifailure,
    e7_control_cost,
    e8_serializability,
)

Runner = typing.Callable[..., object]

EXPERIMENTS: dict[str, dict] = {
    "e1": {
        "module": e1_availability,
        "title": "availability vs failed sites",
        "full": dict(n_sites=5, replication=3, n_items=12, max_failed=4,
                     load_duration=300.0),
        "small": dict(n_sites=4, replication=2, n_items=8, max_failed=2,
                      load_duration=150.0),
    },
    "e2": {
        "module": e2_resume,
        "title": "recovery latency vs missed updates",
        "full": dict(n_items=24, missed_updates=(0, 8, 24, 48)),
        "small": dict(n_items=12, missed_updates=(0, 6, 12)),
    },
    "e3": {
        "module": e3_overhead,
        "title": "failure-free overhead",
        "full": dict(site_counts=(3, 5, 7), load_duration=400.0, repeats=3),
        "small": dict(site_counts=(3,), load_duration=200.0, repeats=1),
    },
    "e4": {
        "module": e4_copiers,
        "title": "copier scheduling strategies",
        "full": dict(n_items=24, stale_fraction=0.5, read_duration=500.0),
        "small": dict(n_items=12, stale_fraction=0.5, read_duration=250.0),
    },
    "e5": {
        "module": e5_identification,
        "title": "out-of-date identification policies",
        "full": dict(n_items=24, update_fractions=(0.125, 0.5, 1.0)),
        "small": dict(n_items=12, update_fractions=(0.25, 1.0)),
    },
    "e6": {
        "module": e6_multifailure,
        "title": "multiple/cascading failures",
        "full": dict(trials=6),
        "small": dict(trials=2),
    },
    "e7": {
        "module": e7_control_cost,
        "title": "control/status maintenance cost",
        "full": dict(item_counts=(4, 16, 48)),
        "small": dict(item_counts=(4, 16)),
    },
    "e8": {
        "module": e8_serializability,
        "title": "one-serializability under failures",
        "full": dict(trials=5, duration=800.0),
        "small": dict(trials=2, duration=400.0),
    },
}


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for Bhargava & Ruan (1986), "
        "'Site Recovery in Replicated Distributed Database Systems'.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e1..e8), 'all', or 'list'",
    )
    parser.add_argument("--seed", type=int, default=3, help="master seed")
    parser.add_argument(
        "--scale", choices=("small", "full"), default="small",
        help="parameter scale (default: small)",
    )
    return parser


def run_one(name: str, seed: int, scale: str) -> None:
    """Run one experiment and print its table."""
    spec = EXPERIMENTS[name]
    params = dict(spec[scale])
    start = time.time()
    table = spec["module"].run(seed=seed, **params)
    print(table.render())
    print(f"({name} at scale={scale}, seed={seed}, "
          f"{time.time() - start:.1f}s wall)\n")


def main(argv: typing.Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    name = args.experiment.lower()
    if name == "list":
        for key, spec in EXPERIMENTS.items():
            print(f"{key}  {spec['title']}")
        return 0
    if name == "all":
        for key in EXPERIMENTS:
            run_one(key, args.seed, args.scale)
        return 0
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
        return 2
    run_one(name, args.seed, args.scale)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro list
    python -m repro e1 [--seed 3] [--scale small|full] [--jobs 4]
    python -m repro all --scale small --jobs 4 --bench-out BENCH_grid.json
    python -m repro bench [--quick] [--check]
    python -m repro trace --experiment e2 --out trace.json [--jsonl spans.jsonl]
    python -m repro metrics --experiment e2 [--out metrics.json]
    python -m repro audit --experiment e2 [--out alerts.jsonl]
    python -m repro latency --experiment e10 [--out budget.json] [--series ts.jsonl]
    python -m repro profile --experiment e11 [--sample] [--folded f.txt]
        [--speedscope s.json] [--out prof.json]
    python -m repro schedfuzz --experiment e2 [--schedules 8] [--races]
        [--out schedules.json | --replay schedules.json]

Each experiment prints the table documented in EXPERIMENTS.md; ``small``
scale finishes in a few seconds per experiment, ``full`` matches the
recorded tables. ``--jobs N`` fans the (scheme × seed × config) cell
grid across a process pool — results are identical to a serial run
(cells are pure functions of their arguments). ``bench`` runs the
microbenchmark suite and appends to the perf trajectory
(``BENCH_kernel.json``); ``bench --check`` additionally fails when
kernel event throughput regressed more than 30% against the last
committed entry.

``trace`` and ``metrics`` run one small traced scenario of an experiment
(spans + timeline on; see :mod:`repro.obs.scenarios`) and export the
observability stream: ``trace`` writes a Chrome trace-event file for
chrome://tracing or https://ui.perfetto.dev (plus optionally the raw
JSONL stream), ``metrics`` a metrics-registry snapshot; both print the
recovery-timeline report.

``latency`` runs a traced scenario with the windowed time-series
sampler on and prints the critical-path **latency budget**
(:mod:`repro.obs.critpath`): end-to-end ack latency decomposed into
lock wait / execution / WAL stall / network / prepare wait / decision
broadcast, with p50/p99 and share-of-total per category, plus the
per-outage throughput troughs (:mod:`repro.obs.timeseries`). For
``--experiment e10`` it runs *both* commit modes (async fast path and
the sync baseline) so the budget tables line up side by side;
``--out`` saves the machine-readable JSON and ``--series`` the sampled
time-series JSONL.

``profile`` runs a traced scenario with the **host-CPU profiler**
attached to the kernel dispatch loop (:mod:`repro.obs.profiler`):
exclusive host CPU attributed per subsystem (kernel/net/tm/dm/locks/
wal/copier/mvcc/audit/obs/workload), printed as a table whose rows sum
to the dispatch wall time. ``--folded``/``--speedscope`` export the
*sim-time* flamegraph collapsed from the span tree; ``--sample`` adds
``sys.setprofile`` host folded stacks; ``--out`` saves everything as
JSON. The profiler's own overhead is gated by ``bench --check``
(``kernel_events_profiled_per_s`` under ``--max-overhead``).

``audit`` runs the same traced scenario under the online protocol
auditor (:mod:`repro.audit`): live 1-STG cycle detection, session
coherence, missing-list conservatism, ROWAA write coverage, WAL/durable
coherence, and liveness watchdogs. It exports the structured alert
stream as JSONL, prints the auditor summary table and the
recovery-timeline report, and exits non-zero when any **critical**
alert fired — which is exactly the CI audit gate.

``schedfuzz`` runs the schedule-space sanitizer (:mod:`repro.sanitize`):
K perturbed schedules of one traced scenario — same seed, shuffled
same-timestamp tie-breaks — each compared against the canonical run on
committed-state fingerprint and audit-alert signature. A divergence
means the protocol's outcome depended on an arbitrary scheduling
tie-break; the failing decision list is then delta-debugged down to a
minimal replayable schedule and exported (``--out``) as a JSON artifact
that ``--replay`` re-runs. ``--races`` additionally attaches the
happens-before race detector (vector clocks over simulated strands) to
the perturbed runs.

``lint`` runs replint (:mod:`repro.lint`), the AST-based static
analysis enforcing the same invariants the auditor checks dynamically
(determinism, protocol isolation, durable-write discipline) over *all*
code paths. Exit 0 clean or baseline-only, 1 on new findings, 2 on
usage errors — see ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import argparse
import sys
import time
import typing

from repro.harness.experiments import (
    e1_availability,
    e2_resume,
    e3_overhead,
    e4_copiers,
    e5_identification,
    e6_multifailure,
    e7_control_cost,
    e8_serializability,
    e9_catchup,
    e10_commit_modes,
    e11_snapshot_reads,
)

Runner = typing.Callable[..., object]

EXPERIMENTS: dict[str, dict] = {
    "e1": {
        "module": e1_availability,
        "title": "availability vs failed sites",
        "full": dict(n_sites=5, replication=3, n_items=12, max_failed=4,
                     load_duration=300.0),
        "small": dict(n_sites=4, replication=2, n_items=8, max_failed=2,
                      load_duration=150.0),
    },
    "e2": {
        "module": e2_resume,
        "title": "recovery latency vs missed updates",
        "full": dict(n_items=24, missed_updates=(0, 8, 24, 48)),
        "small": dict(n_items=12, missed_updates=(0, 6, 12)),
    },
    "e3": {
        "module": e3_overhead,
        "title": "failure-free overhead",
        "full": dict(site_counts=(3, 5, 7), load_duration=400.0, repeats=3),
        "small": dict(site_counts=(3,), load_duration=200.0, repeats=1),
    },
    "e4": {
        "module": e4_copiers,
        "title": "copier scheduling strategies",
        "full": dict(n_items=24, stale_fraction=0.5, read_duration=500.0),
        "small": dict(n_items=12, stale_fraction=0.5, read_duration=250.0),
    },
    "e5": {
        "module": e5_identification,
        "title": "out-of-date identification policies",
        "full": dict(n_items=24, update_fractions=(0.125, 0.5, 1.0)),
        "small": dict(n_items=12, update_fractions=(0.25, 1.0)),
    },
    "e6": {
        "module": e6_multifailure,
        "title": "multiple/cascading failures",
        "full": dict(trials=6),
        "small": dict(trials=2),
    },
    "e7": {
        "module": e7_control_cost,
        "title": "control/status maintenance cost",
        "full": dict(item_counts=(4, 16, 48)),
        "small": dict(item_counts=(4, 16)),
    },
    "e8": {
        "module": e8_serializability,
        "title": "one-serializability under failures",
        "full": dict(trials=5, duration=800.0),
        "small": dict(trials=2, duration=400.0),
    },
    "e9": {
        "module": e9_catchup,
        "title": "catch-up transport: log-shipping vs item copy",
        "full": dict(n_items=24, missed_updates=(4, 16, 48)),
        "small": dict(n_items=12, missed_updates=(4, 12)),
    },
    "e10": {
        "module": e10_commit_modes,
        "title": "commit modes: sync 2PC vs async quorum",
        "full": dict(trials=4, duration=600.0),
        "small": dict(trials=2, duration=300.0),
    },
    "e11": {
        "module": e11_snapshot_reads,
        "title": "snapshot reads vs lock-based reads under failures",
        "full": dict(trials=4, duration=600.0),
        "small": dict(trials=2, duration=300.0),
    },
}


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for Bhargava & Ruan (1986), "
        "'Site Recovery in Replicated Distributed Database Systems'.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e1..e11), 'all', 'list', 'bench', 'trace', "
        "'metrics', 'audit', 'latency', 'profile', 'schedfuzz', or 'lint'",
    )
    parser.add_argument("--seed", type=int, default=3, help="master seed")
    parser.add_argument(
        "--scale", choices=("small", "full"), default="small",
        help="parameter scale (default: small)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan experiment cells across N worker processes",
    )
    parser.add_argument(
        "--bench-out", default=None, metavar="PATH",
        help="append per-cell wall times to this grid trajectory file",
    )
    # bench-only options (ignored by the experiment subcommands).
    parser.add_argument(
        "--quick", action="store_true",
        help="bench: smaller iteration counts (CI smoke mode)",
    )
    parser.add_argument(
        "--label", default="dev", help="bench: label for the trajectory entry"
    )
    parser.add_argument(
        "--trajectory", default="BENCH_kernel.json", metavar="PATH",
        help="bench: trajectory file (default: BENCH_kernel.json)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="bench: fail on regression against the last trajectory entry",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.30, metavar="FRAC",
        help="bench --check: tolerated fractional drop (default 0.30)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=0.05, metavar="FRAC",
        help="bench --check: tolerated instrumentation overhead on the "
        "kernel-events bench with tracing disabled (default 0.05)",
    )
    parser.add_argument(
        "--no-append", action="store_true",
        help="bench: do not write the run into the trajectory file",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="bench/trace/metrics/audit: write this run's output to a "
        "standalone file (trace default: trace.json; audit default: "
        "alerts.jsonl)",
    )
    # trace/metrics/audit/latency/profile options (ignored elsewhere).
    parser.add_argument(
        "--experiment", dest="scenario", default="e2", metavar="EID",
        help="trace/metrics/audit/latency/profile: which experiment's "
        "traced scenario to run (default: e2; latency runs both commit "
        "modes for e10)",
    )
    parser.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="trace: also write the raw JSONL span/metric stream here",
    )
    parser.add_argument(
        "--sample-period", type=float, default=None, metavar="T",
        help="trace/latency: attach the windowed time-series sampler "
        "with this period in sim-time units (latency default: 10)",
    )
    parser.add_argument(
        "--series", default=None, metavar="PATH",
        help="latency: write the sampled time series as JSONL here "
        "(both modes appended for e10)",
    )
    # profile-only options (ignored by the other subcommands).
    parser.add_argument(
        "--sample", action="store_true",
        help="profile: also run the sys.setprofile host-stack sampler "
        "over the scenario (slow; folded stacks land in --out)",
    )
    parser.add_argument(
        "--folded", default=None, metavar="PATH",
        help="profile: write the sim-time flamegraph as flamegraph.pl "
        "collapsed folded stacks",
    )
    parser.add_argument(
        "--speedscope", default=None, metavar="PATH",
        help="profile: write the sim-time flamegraph as speedscope JSON "
        "(open at https://www.speedscope.app)",
    )
    # schedfuzz-only options (ignored by the other subcommands).
    parser.add_argument(
        "--schedules", type=int, default=8, metavar="K",
        help="schedfuzz: number of perturbed schedules (default: 8)",
    )
    parser.add_argument(
        "--races", action="store_true",
        help="schedfuzz: attach the happens-before race detector to the "
        "perturbed runs (reports ride on the artifact; they never gate)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="schedfuzz: skip delta-debugging the failing decision list",
    )
    parser.add_argument(
        "--shrink-budget", type=int, default=48, metavar="N",
        help="schedfuzz: max scenario re-runs spent shrinking (default 48)",
    )
    parser.add_argument(
        "--replay", default=None, metavar="PATH",
        help="schedfuzz: re-run the minimal schedule from a previously "
        "exported artifact instead of fuzzing",
    )
    # lint-only options (ignored by the other subcommands).
    parser.add_argument(
        "--json", action="store_true",
        help="lint: emit the machine-readable JSON report",
    )
    parser.add_argument(
        "--path", action="append", default=None, metavar="PATH",
        help="lint: file or directory to analyse (repeatable; default: "
        "the installed repro package sources)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="IDS",
        help="lint: comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="lint: grandfathering baseline file "
        "(default: replint_baseline.json)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="lint: rewrite the baseline from the current findings",
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="REF",
        help="lint: only analyse files that differ from the given git ref "
        "(default ref: HEAD); untracked files are included",
    )
    return parser


def run_one(
    name: str, seed: int, scale: str, jobs: int | None = None,
    bench_out: str | None = None,
) -> None:
    """Run one experiment and print its table."""
    from repro.harness import parallel

    spec = EXPERIMENTS[name]
    params = dict(spec[scale])
    params["seed"] = seed
    start = time.time()
    table, timings = parallel.run_experiment(spec["module"], params, jobs=jobs)
    wall = time.time() - start
    print(table.render())
    print(f"({name} at scale={scale}, seed={seed}, jobs={jobs or 1}, "
          f"{wall:.1f}s wall)\n")
    if bench_out:
        parallel.write_grid_trajectory(
            bench_out, timings, label=f"{name}@{scale}", jobs=jobs,
            extra={"wall_s": round(wall, 4), "seed": seed},
        )


def run_all(
    seed: int, scale: str, jobs: int | None, bench_out: str | None
) -> None:
    """Run the whole E1–E8 grid, pooling every cell together."""
    from repro.harness import parallel

    specs = []
    for name, spec in EXPERIMENTS.items():
        params = dict(spec[scale])
        params["seed"] = seed
        specs.append((name, spec["module"], params))
    start = time.time()
    tables, timings = parallel.run_grid(specs, jobs=jobs)
    wall = time.time() - start
    for name, table in tables.items():
        print(table.render())
        print()
    print(f"(all at scale={scale}, seed={seed}, jobs={jobs or 1}, "
          f"{wall:.1f}s wall)")
    if bench_out:
        parallel.write_grid_trajectory(
            bench_out, timings, label=f"all@{scale}", jobs=jobs,
            extra={"wall_s": round(wall, 4), "seed": seed},
        )


def run_bench(args: argparse.Namespace) -> int:
    """The ``bench`` subcommand: microbench suite + trajectory."""
    from repro.harness import bench

    snapshots: dict = {}
    metrics = bench.run_suite(quick=args.quick, snapshots=snapshots)
    for key, value in metrics.items():
        print(f"{key}: {value:.1f}")
    overhead = bench.overhead_fraction(metrics)
    if overhead is not None:
        print(f"instrumentation_overhead: {overhead:.1%}")
    sampled_overhead = bench.attribution_overhead_fraction(metrics)
    if sampled_overhead is not None:
        print(f"latency_attribution_overhead: {sampled_overhead:.1%}")
        # Percent, not fraction: append_entry rounds metrics to one
        # decimal, which would flatten a fraction to 0.0 or 0.1.
        metrics["latency_attribution_overhead_pct"] = sampled_overhead * 100
    mvcc_overhead = bench.ro_overhead_fraction(metrics)
    if mvcc_overhead is not None:
        print(f"mvcc_write_overhead: {mvcc_overhead:.1%}")
        metrics["mvcc_write_overhead_pct"] = mvcc_overhead * 100
    profiler_overhead = bench.profiler_overhead_fraction(metrics)
    if profiler_overhead is not None:
        print(f"profiler_overhead: {profiler_overhead:.1%}")
        metrics["profiler_overhead_pct"] = profiler_overhead * 100
    sanitize_overhead = bench.sanitize_overhead_fraction(metrics)
    if sanitize_overhead is not None:
        print(f"sanitize_off_overhead: {sanitize_overhead:.1%}")
        metrics["sanitize_off_overhead_pct"] = sanitize_overhead * 100

    exit_code = 0
    if args.check:
        trajectory = bench.load_trajectory(args.trajectory)
        baseline = bench.latest_entry(trajectory, quick=args.quick)
        if baseline is None:
            print(f"no baseline in {args.trajectory}; nothing to check")
        else:
            ok, report = bench.compare(
                baseline["metrics"], metrics,
                max_regression=args.max_regression,
            )
            print(f"\nvs baseline {baseline['label']!r} "
                  f"({baseline['timestamp']}):")
            print(report)
            if not ok:
                exit_code = 1
            base_profile = baseline.get("obs", {}).get("profile")
            cur_profile = snapshots.get("profile")
            if base_profile and cur_profile:
                for line in bench.share_drift(base_profile, cur_profile):
                    print(line)
        if overhead is not None and overhead > args.max_overhead:
            print(f"instrumentation overhead {overhead:.1%} exceeds "
                  f"--max-overhead {args.max_overhead:.0%}  << REGRESSION")
            exit_code = 1
        if sampled_overhead is not None and sampled_overhead > args.max_overhead:
            print(f"latency attribution overhead {sampled_overhead:.1%} exceeds "
                  f"--max-overhead {args.max_overhead:.0%}  << REGRESSION")
            exit_code = 1
        if mvcc_overhead is not None and mvcc_overhead > args.max_overhead:
            print(f"mvcc write overhead {mvcc_overhead:.1%} exceeds "
                  f"--max-overhead {args.max_overhead:.0%}  << REGRESSION")
            exit_code = 1
        if profiler_overhead is not None and profiler_overhead > args.max_overhead:
            print(f"profiler overhead {profiler_overhead:.1%} exceeds "
                  f"--max-overhead {args.max_overhead:.0%}  << REGRESSION")
            exit_code = 1
        if sanitize_overhead is not None and sanitize_overhead > args.max_overhead:
            print(f"sanitizer-off overhead {sanitize_overhead:.1%} exceeds "
                  f"--max-overhead {args.max_overhead:.0%}  << REGRESSION")
            exit_code = 1
    if not args.no_append:
        bench.append_entry(
            args.trajectory, metrics, label=args.label, quick=args.quick,
            snapshots=snapshots,
        )
    if args.out:
        import json

        with open(args.out, "w") as handle:
            json.dump({"label": args.label, "quick": args.quick,
                       "metrics": metrics}, handle, indent=2)
            handle.write("\n")
    return exit_code


def run_trace(args: argparse.Namespace) -> int:
    """The ``trace`` subcommand: traced scenario -> Chrome trace file."""
    from repro.obs.export import export_chrome_trace, export_jsonl
    from repro.obs.report import recovery_timeline, render_recovery_timeline
    from repro.obs.scenarios import run_traced

    try:
        run = run_traced(
            args.scenario, seed=args.seed, sample_period=args.sample_period
        )
    except ValueError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2
    label = f"{run.experiment}@seed={args.seed}"
    out = args.out or "trace.json"
    n_events = export_chrome_trace(run.obs, out, label=label)
    recorder = run.obs.spans
    print(f"{out}: {n_events} trace events ({len(recorder.spans)} spans, "
          f"{len(recorder.instants)} instants) — open in chrome://tracing "
          "or https://ui.perfetto.dev")
    if args.jsonl:
        n_lines = export_jsonl(run.obs, args.jsonl, label=label)
        print(f"{args.jsonl}: {n_lines} JSONL lines")
    for key, value in run.summary.items():
        print(f"{key}: {value}")
    print()
    print(render_recovery_timeline(recovery_timeline(run.system)))
    return 0


def run_metrics(args: argparse.Namespace) -> int:
    """The ``metrics`` subcommand: traced scenario -> registry snapshot."""
    from repro.obs.export import export_metrics_json
    from repro.obs.report import recovery_timeline, render_recovery_timeline
    from repro.obs.scenarios import run_traced

    try:
        run = run_traced(args.scenario, seed=args.seed)
    except ValueError as exc:
        print(f"metrics: {exc}", file=sys.stderr)
        return 2
    if args.out:
        export_metrics_json(
            run.obs, args.out, label=f"{run.experiment}@seed={args.seed}"
        )
        print(f"wrote metrics snapshot to {args.out}")
    snapshot = run.obs.registry.snapshot()
    for name in sorted(snapshot["global"]):
        print(f"{name}: {snapshot['global'][name]}")
    print()
    print(render_recovery_timeline(recovery_timeline(run.system)))
    return 0


def run_latency(args: argparse.Namespace) -> int:
    """The ``latency`` subcommand: critical-path budget + time series.

    Runs the traced scenario with the windowed sampler attached, prints
    the per-category latency budget and per-outage throughput troughs.
    ``--experiment e10`` runs both commit modes (``e10`` async,
    ``e10sync`` baseline) back to back on the same seed. Exit status:
    0 on success, 2 on an unknown experiment name.
    """
    import json

    from repro.obs.critpath import latency_budget, render_latency_budget
    from repro.obs.scenarios import run_traced
    from repro.obs.timeseries import (
        export_series_jsonl,
        outage_stats,
        render_outage_stats,
    )

    period = args.sample_period if args.sample_period is not None else 10.0
    paired = {"e10": ["e10sync", "e10"], "e11": ["e11sync", "e11"]}
    scenarios = paired.get(args.scenario, [args.scenario])
    budgets: dict[str, dict] = {}
    troughs: dict[str, dict] = {}
    for index, scenario in enumerate(scenarios):
        try:
            run = run_traced(scenario, seed=args.seed, sample_period=period)
        except ValueError as exc:
            print(f"latency: {exc}", file=sys.stderr)
            return 2
        label = f"{scenario}@seed={args.seed}"
        mode = run.summary.get("commit_mode")
        print(f"== {scenario}" + (f" ({mode})" if mode else ""))
        budget = latency_budget(run.obs)
        budgets[scenario] = budget
        print(render_latency_budget(budget))
        sampler = run.obs.sampler
        if sampler is not None and sampler.windows:
            stats = outage_stats(sampler)
            troughs[scenario] = stats
            for line in render_outage_stats(stats):
                print(line)
            if args.series:
                n_lines = export_series_jsonl(
                    sampler, args.series, label=label, append=index > 0
                )
                print(f"{args.series}: +{n_lines} JSONL lines")
        print()
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(
                {
                    "experiment": args.scenario,
                    "seed": args.seed,
                    "sample_period": period,
                    "budgets": budgets,
                    "throughput": troughs,
                },
                handle, indent=2, sort_keys=True,
            )
            handle.write("\n")
        print(f"wrote latency budget to {args.out}")
    return 0


def run_profile(args: argparse.Namespace) -> int:
    """The ``profile`` subcommand: host-CPU attribution + flamegraphs.

    Runs the traced scenario with the host-CPU profiler attached to
    the kernel dispatch loop and prints the per-subsystem attribution
    table (also folded into the recovery-timeline report for any
    profiled run). ``--folded`` / ``--speedscope`` export the sim-time
    flamegraph collapsed from the span tree; ``--sample`` additionally
    traces host stacks via ``sys.setprofile``; ``--out`` saves the
    machine-readable JSON. Exit status: 0 on success, 2 on an unknown
    experiment name.
    """
    import json

    from repro.obs.profiler import (
        StackSampler,
        export_folded,
        export_speedscope,
        folded_stacks,
        render_profile,
    )
    from repro.obs.report import recovery_timeline, render_recovery_timeline
    from repro.obs.scenarios import run_traced

    sampler = StackSampler() if args.sample else None
    try:
        if sampler is not None:
            sampler.start()
        try:
            run = run_traced(args.scenario, seed=args.seed, profile=True)
        finally:
            if sampler is not None:
                sampler.stop()
    except ValueError as exc:
        print(f"profile: {exc}", file=sys.stderr)
        return 2
    report = run.obs.profiler.report()
    print(render_profile(report))
    label = f"{run.experiment}@seed={args.seed}"
    sim_folded = folded_stacks(run.obs.spans)
    if args.speedscope:
        n_stacks = export_speedscope(run.obs.spans, args.speedscope, label=label)
        print(f"{args.speedscope}: speedscope profile, {n_stacks} sim-time "
              "stacks — open at https://www.speedscope.app")
    if args.folded:
        n_lines = export_folded(sim_folded, args.folded)
        print(f"{args.folded}: {n_lines} folded sim-time stacks "
              "(flamegraph.pl collapsed format)")
    if sampler is not None:
        for stack, seconds in sampler.top(5):
            print(f"host {seconds:.4f}s  {';'.join(stack[-4:])}")
    if args.out:
        document: dict = {
            "experiment": run.experiment,
            "seed": args.seed,
            "host": report,
            "sim_folded": [
                {"stack": list(stack), "sim_time": value}
                for stack, value in sorted(sim_folded.items())
            ],
        }
        if sampler is not None:
            document["host_folded"] = [
                {"stack": list(stack), "cpu_s": value}
                for stack, value in sorted(sampler.folded().items())
            ]
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"wrote profile to {args.out}")
    for key, value in run.summary.items():
        print(f"{key}: {value}")
    print()
    timeline = recovery_timeline(run.system)
    timeline.pop("profile", None)  # the table already led the output
    print(render_recovery_timeline(timeline))
    return 0


def run_schedfuzz(args: argparse.Namespace) -> int:
    """The ``schedfuzz`` subcommand: the schedule-space sanitizer.

    Runs the canonical schedule of the traced scenario under the
    auditor, then K perturbed schedules of the same seed with the
    kernel's same-timestamp tie-breaks shuffled, and compares committed
    state fingerprints and audit-alert signatures. On divergence the
    failing decision list is delta-debugged to a minimal replayable
    schedule. ``--out`` saves the JSON artifact; ``--replay`` re-runs a
    saved artifact's minimal schedule. Exit status: 0 when every
    perturbed schedule converges (and a replayed artifact still
    diverges — reproducing is the replay's *success*), 1 on divergence
    (or a replay that no longer reproduces), 2 on usage errors.
    """
    import json

    from repro.sanitize.fuzz import replay_artifact, schedfuzz

    if args.replay is not None:
        try:
            with open(args.replay) as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"schedfuzz: cannot read {args.replay}: {exc}",
                  file=sys.stderr)
            return 2
        if "divergence" not in document:
            print(f"schedfuzz: {args.replay} records no divergence; "
                  "nothing to replay", file=sys.stderr)
            return 2
        experiment = document.get("experiment", args.scenario)
        seed = int(document.get("seed", args.seed))
        try:
            canonical, replayed, diverged = replay_artifact(
                experiment, seed, document
            )
        except ValueError as exc:
            print(f"schedfuzz: {exc}", file=sys.stderr)
            return 2
        print(f"replay {experiment} seed={seed}: canonical "
              f"{canonical.fingerprint[:16]} vs replayed "
              f"{replayed.fingerprint[:16]}")
        if diverged:
            print("divergence reproduced")
            return 0
        print("divergence did NOT reproduce", file=sys.stderr)
        return 1

    if args.schedules < 1:
        print("schedfuzz: --schedules must be >= 1", file=sys.stderr)
        return 2
    try:
        result = schedfuzz(
            args.scenario, seed=args.seed, schedules=args.schedules,
            shrink=not args.no_shrink, races=args.races,
            shrink_budget=args.shrink_budget,
        )
    except ValueError as exc:
        print(f"schedfuzz: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result.artifact(), handle, indent=2)
            handle.write("\n")
        print(f"wrote schedule artifact to {args.out}")
    return 1 if result.diverged else 0


def run_audit(args: argparse.Namespace) -> int:
    """The ``audit`` subcommand: traced scenario under the auditor.

    Exit status: 0 when no critical alert fired, 1 on any critical
    alert (the CI audit gate), 2 on an unknown experiment name.
    """
    from repro.obs.report import recovery_timeline, render_recovery_timeline
    from repro.obs.scenarios import run_traced

    try:
        run = run_traced(args.scenario, seed=args.seed, audit=True)
    except ValueError as exc:
        print(f"audit: {exc}", file=sys.stderr)
        return 2
    auditor = run.obs.audit
    summary = auditor.summary()
    out = args.out or "alerts.jsonl"
    n_lines = auditor.alerts.export_jsonl(
        out, label=f"{run.experiment}@seed={args.seed}"
    )
    print(f"{out}: {n_lines} JSONL lines")
    print(auditor.alerts.render_summary())
    for key, value in run.summary.items():
        print(f"{key}: {value}")
    print()
    print(render_recovery_timeline(recovery_timeline(run.system)))
    if auditor.alerts.has_critical:
        print(
            f"audit: {summary['critical']} critical alert(s)  << VIOLATION",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: typing.Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    name = args.experiment.lower()
    if name == "list":
        for key, spec in EXPERIMENTS.items():
            print(f"{key}  {spec['title']}")
        return 0
    if name == "bench":
        return run_bench(args)
    if name == "trace":
        return run_trace(args)
    if name == "metrics":
        return run_metrics(args)
    if name == "audit":
        return run_audit(args)
    if name == "latency":
        return run_latency(args)
    if name == "profile":
        return run_profile(args)
    if name == "schedfuzz":
        return run_schedfuzz(args)
    if name == "lint":
        from repro.lint.cli import run_lint

        return run_lint(args)
    if name == "all":
        run_all(args.seed, args.scale, args.jobs, args.bench_out)
        return 0
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
        return 2
    run_one(name, args.seed, args.scale, jobs=args.jobs,
            bench_out=args.bench_out)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

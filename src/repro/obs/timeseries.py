"""Windowed time-series telemetry: a kernel-timer-driven sampler.

The metrics registry is an end-of-run snapshot; throughput dips during
an outage and the recovery ramp afterwards are invisible in it. The
:class:`WindowedSampler` closes that gap: a periodic kernel timer
(configurable period, **off by default** — nothing here runs unless a
scenario opts in) snapshots a designated set of probes into fixed-width
windows:

* ``ts.committed`` / ``ts.aborted`` — monotone counters, **delta
  encoded**: each window stores only what happened inside it, so
  window/period is the instantaneous commit (abort) rate;
* ``ts.inflight_drains`` — async-quorum drains spawned but not finished;
* ``ts.missing_depth`` — total unreadable copies across the cluster
  (the missing-list drain, live);
* ``ts.site_up`` — per-site 0/1 availability gauge.

Gauges are sampled at each window's *end*; an outage shorter than one
window can therefore hide between ticks — pick the period accordingly.

Exporters: a compact JSONL stream (:func:`export_series_jsonl`, one line
per series) and Chrome trace *counter-track* events
(:func:`counter_events`, merged into the trace by
:mod:`repro.obs.export`) so the dips render right under the span
timeline in Perfetto. :func:`outage_stats` derives the recovery-timeline
report's "throughput trough" figures: per outage (a maximal run of
windows with any site down), the minimum windowed commit rate and the
time to recover 90% of the all-up baseline rate.

Cost model: one timer callback per period touching a handful of Python
counters — never the kernel event loop. The bench's
``latency_attribution_overhead`` twin keeps it under the same <5% gate
as the rest of the observability layer.
"""

from __future__ import annotations

import json
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel

#: Default sampling period (sim-time units) when a caller enables the
#: sampler without choosing one: fine enough to resolve a 40-unit
#: outage, coarse enough to stay negligible.
DEFAULT_PERIOD = 10.0

#: Recovery threshold for :func:`outage_stats`: a post-outage window
#: counts as recovered when its commit rate reaches this fraction of
#: the all-up baseline.
RECOVERY_FRACTION = 0.9

Probe = typing.Callable[[], float]


class WindowedSampler:
    """Fixed-width window snapshots of registered probes.

    Probes are registered (``add_delta`` / ``add_gauge``) before
    :meth:`start`; every ``period`` sim-time units the sampler appends
    one value per probe, so all series stay aligned: window ``w`` spans
    ``(t0 + w*period, t0 + (w+1)*period]``.
    """

    __slots__ = ("kernel", "period", "t0", "windows", "running",
                 "_timer", "_probes", "_values", "_last")

    def __init__(self, kernel: "Kernel", period: float = DEFAULT_PERIOD) -> None:
        if period <= 0:
            raise ValueError(f"sample period must be positive, got {period}")
        self.kernel = kernel
        self.period = float(period)
        self.t0 = kernel.now
        self.windows = 0
        self.running = False
        self._timer: typing.Any = None
        #: (name, site, kind, probe) in registration order — iteration
        #: order is deterministic by construction (REP002).
        self._probes: list[tuple[str, int | None, str, Probe]] = []
        self._values: dict[tuple[str, int | None], list[float]] = {}
        self._last: dict[tuple[str, int | None], float] = {}

    # -- registration ---------------------------------------------------------

    def _add(self, name: str, site: int | None, kind: str, probe: Probe) -> None:
        if self.windows:
            raise RuntimeError("cannot add probes after sampling began")
        self._probes.append((name, site, kind, probe))
        self._values[(name, site)] = []

    def add_delta(self, name: str, probe: Probe, site: int | None = None) -> None:
        """Sample a monotone counter; windows store per-window deltas."""
        self._add(name, site, "delta", probe)

    def add_gauge(self, name: str, probe: Probe, site: int | None = None) -> None:
        """Sample a point-in-time value at each window end."""
        self._add(name, site, "gauge", probe)

    # -- the timer loop -------------------------------------------------------

    def start(self) -> None:
        """Prime the delta baselines and schedule the first tick."""
        if self.running:
            return
        self.running = True
        self.t0 = self.kernel.now
        for name, site, kind, probe in self._probes:
            if kind == "delta":
                self._last[(name, site)] = float(probe())
        self._timer = self.kernel.schedule_callback(self.period, self._tick)

    def stop(self) -> None:
        """Cancel the timer so an unbounded ``kernel.run()`` can drain."""
        self.running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        if not self.running:
            return
        for name, site, kind, probe in self._probes:
            key = (name, site)
            raw = float(probe())
            if kind == "delta":
                self._values[key].append(raw - self._last[key])
                self._last[key] = raw
            else:
                self._values[key].append(raw)
        self.windows += 1
        self._timer = self.kernel.schedule_callback(self.period, self._tick)

    # -- views ----------------------------------------------------------------

    def window_times(self) -> list[float]:
        """The end time of each completed window."""
        return [self.t0 + (w + 1) * self.period for w in range(self.windows)]

    def values(self, name: str, site: int | None = None) -> list[float]:
        """The recorded windows of one series (deltas for counters)."""
        return list(self._values.get((name, site), ()))

    def series(self) -> list[dict]:
        """Every series as a plain dict, in registration order."""
        return [
            {
                "name": name,
                "site": site,
                "kind": kind,
                "values": list(self._values[(name, site)]),
            }
            for name, site, kind, _probe in self._probes
        ]

    def series_names(self) -> list[str]:
        """Distinct series names, sorted (the doc-drift catalog view)."""
        return sorted({name for name, _s, _k, _p in self._probes})


def attach_sampler(
    system: typing.Any, period: float = DEFAULT_PERIOD
) -> WindowedSampler:
    """Build, register, and start the standard sampler on ``system``.

    Wires the designated probe set (commit/abort rates, in-flight
    drains, missing-list depth, per-site up/down) against the stats
    objects the components already keep, parks the sampler on
    ``system.obs.sampler`` (where exporters and the report find it), and
    starts the timer. ``system.stop()`` stops it.
    """
    sampler = WindowedSampler(system.kernel, period)
    tms = [system.tms[site_id] for site_id in sorted(system.tms)]
    sampler.add_delta(
        "ts.committed", lambda: float(sum(tm.stats.committed for tm in tms))
    )
    sampler.add_delta(
        "ts.aborted", lambda: float(sum(tm.stats.aborted for tm in tms))
    )
    sampler.add_gauge(
        "ts.inflight_drains",
        lambda: float(
            sum(tm.stats.drains_spawned - tm.stats.drains_completed
                for tm in tms)
        ),
    )
    cluster = system.cluster

    def missing_depth() -> float:
        return float(
            sum(
                len(cluster.site(site_id).copies.unreadable_items())
                for site_id in cluster.site_ids
            )
        )

    sampler.add_gauge("ts.missing_depth", missing_depth)
    for site_id in cluster.site_ids:
        site = cluster.site(site_id)
        sampler.add_gauge(
            "ts.site_up",
            lambda s=site: 0.0 if s.is_down else 1.0,
            site=site_id,
        )
    system.obs.sampler = sampler
    sampler.start()
    return sampler


# -- exporters ------------------------------------------------------------------


def export_series_jsonl(
    sampler: WindowedSampler, path: str, label: str = "", append: bool = False
) -> int:
    """Write the sampler's series to ``path`` as JSONL; returns lines.

    One ``meta`` line (period, origin, window count) then one ``series``
    line per probe. ``append=True`` concatenates another run into the
    same file (each block keeps its own meta/label), which is how the
    CLI pairs E10's sync and async runs in one artifact.
    """
    lines: list[dict] = [
        {
            "type": "meta",
            "label": label,
            "t0": sampler.t0,
            "period": sampler.period,
            "windows": sampler.windows,
        }
    ]
    for entry in sampler.series():
        record = dict(entry)
        record["type"] = "series"
        record["values"] = [round(v, 6) for v in record["values"]]
        lines.append(record)
    with open(path, "a" if append else "w") as fh:
        for line in lines:
            fh.write(json.dumps(line) + "\n")
    return len(lines)


def counter_events(
    sampler: WindowedSampler, us_per_unit: float = 1000.0
) -> list[dict]:
    """Chrome trace counter-track (``"ph": "C"``) events, one per window.

    Delta series are emitted as rates (delta/period) so the track reads
    in transactions *per sim-time unit*; gauges are emitted as-is.
    Per-site series land on their site's pid, global series on pid 0.
    """
    events: list[dict] = []
    times = sampler.window_times()
    for entry in sampler.series():
        site = entry["site"]
        scale = 1.0 / sampler.period if entry["kind"] == "delta" else 1.0
        name = (
            f"{entry['name']}/s" if entry["kind"] == "delta" else entry["name"]
        )
        for when, value in zip(times, entry["values"]):
            events.append(
                {
                    "ph": "C",
                    "name": name,
                    "pid": site if site is not None else 0,
                    "tid": 0,
                    "ts": when * us_per_unit,
                    "args": {"value": round(value * scale, 6)},
                }
            )
    return events


# -- throughput-trough analysis -------------------------------------------------


def commit_rates(sampler: WindowedSampler) -> tuple[list[float], list[float]]:
    """``(window_end_times, committed-per-sim-unit rates)``."""
    rates = [v / sampler.period for v in sampler.values("ts.committed")]
    return sampler.window_times(), rates


def _degraded_windows(sampler: WindowedSampler) -> list[bool]:
    """Per window: was any site observed down at the window end?"""
    per_site = [
        entry["values"] for entry in sampler.series()
        if entry["name"] == "ts.site_up"
    ]
    return [
        any(values[w] < 0.5 for values in per_site)
        for w in range(sampler.windows)
    ]


def outage_stats(sampler: WindowedSampler) -> dict:
    """Throughput-trough figures per outage, plus the all-up baseline.

    An *outage* is a maximal run of windows with at least one site down
    (per the ``ts.site_up`` gauges). ``baseline_rate`` is the mean
    commit rate over all-up windows (falling back to the overall mean
    when the run never has all sites up). Each outage reports its
    minimum windowed rate (the trough) and the time from the outage's
    last degraded window to the first window back at
    :data:`RECOVERY_FRACTION` of baseline — ``None`` when the run ends
    first. Resolution is one window in both directions.
    """
    times, rates = commit_rates(sampler)
    degraded = _degraded_windows(sampler)
    n = sampler.windows
    clear = [rate for rate, down in zip(rates, degraded) if not down]
    pool = clear or rates
    baseline = sum(pool) / len(pool) if pool else 0.0
    threshold = RECOVERY_FRACTION * baseline

    outages: list[dict] = []
    w = 0
    while w < n:
        if not degraded[w]:
            w += 1
            continue
        first = w
        while w < n and degraded[w]:
            w += 1
        last = w - 1  # final degraded window of this outage
        recovered_at = None
        for j in range(w, n):
            if rates[j] >= threshold:
                recovered_at = times[j]
                break
        outages.append(
            {
                "start": times[first] - sampler.period,
                "end": times[last],
                "windows": w - first,
                "trough_rate": min(rates[first:w]),
                "recovered_90_at": recovered_at,
                "time_to_recover_90": (
                    recovered_at - times[last]
                    if recovered_at is not None
                    else None
                ),
            }
        )
    return {
        "period": sampler.period,
        "baseline_rate": baseline,
        "recovery_fraction": RECOVERY_FRACTION,
        "outages": outages,
    }


def render_outage_stats(stats: dict) -> list[str]:
    """Render lines for the recovery-timeline report."""
    lines = [
        f"throughput baseline {stats['baseline_rate']:.3f} txn/unit "
        f"(window={stats['period']:.0f})"
    ]
    for outage in stats["outages"]:
        recover = (
            f"recover90=+{outage['time_to_recover_90']:.0f}"
            if outage["time_to_recover_90"] is not None
            else "recover90=never"
        )
        lines.append(
            f"outage t={outage['start']:.0f}..{outage['end']:.0f}: "
            f"trough={outage['trough_rate']:.3f} txn/unit {recover}"
        )
    return lines

"""System-wide observability: metrics registry + causal spans + exporters.

One :class:`Observability` object travels with each
:class:`~repro.system.DatabaseSystem` (created implicitly when none is
passed in). It bundles:

* a :class:`~repro.obs.metrics.MetricsRegistry` — always live, because
  its cost model is pull-based (components register *collectors* that
  scrape counters they keep anyway) plus rare push updates;
* a :class:`~repro.obs.spans.SpanRecorder` — spans and timeline instants
  are **off by default** and enabled per run (``repro trace``,
  :class:`~repro.harness.trace.SystemTracer`), so the hot paths pay a
  single branch when disabled.

Exporters (`repro.obs.export`) turn a recorder into JSONL or a Chrome
``chrome://tracing`` file; `repro.obs.report` computes the
recovery-timeline report (MTTR, time-to-nominally-up vs
time-to-fully-current, drain curves). See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import typing

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from repro.obs.spans import Instant, Span, SpanRecorder

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "Observability",
    "Span",
    "SpanRecorder",
    "TimeSeries",
]


class Observability:
    """The instrumentation bundle carried by one system."""

    def __init__(
        self, kernel: "Kernel", spans: bool = False, timeline: bool = False
    ) -> None:
        self.kernel = kernel
        self.registry = MetricsRegistry()
        self.spans = SpanRecorder(kernel, enabled=spans, timeline=timeline)
        #: The attached protocol auditor (repro.audit), or None. Hot
        #: paths only ever test this for None-ness.
        self.audit: typing.Any = None
        #: The attached windowed time-series sampler
        #: (:func:`repro.obs.timeseries.attach_sampler`), or None. Off by
        #: default; exporters and the recovery-timeline report pick it up
        #: when present.
        self.sampler: typing.Any = None
        #: The attached host-CPU profiler
        #: (:func:`repro.obs.profiler.attach_profiler`), or None. The
        #: kernel dispatch loop tests its *own* handle for None-ness;
        #: this one is for reports and the ``repro profile`` CLI.
        self.profiler: typing.Any = None
        #: The attached happens-before race detector
        #: (:func:`repro.sanitize.hb.attach_detector`), or None. The
        #: kernel and the hooked protocol modules test their own handles
        #: for None-ness; this one is for ``repro schedfuzz`` reports.
        self.sanitizer: typing.Any = None

    @property
    def spans_on(self) -> bool:
        """True when span recording is enabled (checked on hot paths)."""
        return self.spans.enabled

    @property
    def timeline_on(self) -> bool:
        """True when instant/timeline recording is enabled."""
        return self.spans.timeline_on

    def enable_spans(self) -> None:
        self.spans.enabled = True

    def enable_timeline(self) -> None:
        self.spans.timeline_on = True

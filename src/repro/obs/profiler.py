"""Continuous profiling: host-CPU attribution and sim-time flamegraphs.

Two views over where time goes, one per time domain:

**View 1 — host CPU** (:class:`HostProfiler`). The kernel's dispatch
loop is the only place host cycles are ever spent during a simulation,
so attaching there covers everything. The profiler hands the kernel a
host clock (from :mod:`repro.obs.hostclock` — the sanctioned REP001
seam; the kernel itself never imports ``time``) and the kernel reads it
at *run boundaries*: a run is a maximal stretch of consecutive events
sharing one dispatch signature (a Future's waiter-list identity, a
Callback's function). The common storms — thousands of bare timeouts,
one process resumed again and again — therefore cost two clock reads
total rather than two per event, which is what keeps the profiled twin
bench under the <5% ``--max-overhead`` gate. Charging whole runs keeps
the headline invariant exact: the per-subsystem exclusive ``cpu_s``
sum to the wall time spent inside the dispatch loop.

Each run is attributed to a *subsystem label* derived from the owning
module of the code the events dispatch into: a resumed process is
labelled by its generator's defining file, a callback by its function's
module, a bare future/timeout (no waiters) by the kernel itself. The
:func:`subsystem_of_module` prefix map turns module paths into the
stable label set (kernel/net/tm/dm/locks/wal/copier/recovery/mvcc/
audit/obs/workload/site).

An optional :class:`StackSampler` (``repro profile --sample``) rides on
``sys.setprofile`` and folds exclusive host time per Python call stack
— the drill-down view when a subsystem's share moved and the question
becomes *which function*.

**View 2 — sim-time flamegraphs** (:func:`folded_stacks`). The span
tree already records where *simulated* time goes; the fold collapses it
into root-to-leaf label paths, charging every instant of a root span's
window to exactly one path (children clipped to their parent's window,
latest-started span winning overlaps). Exports as flamegraph.pl
collapsed text (:func:`export_folded`) and speedscope JSON
(:func:`export_speedscope`).

Profiler results deliberately stay *out* of the metrics registry: they
are host-machine wall-clock quantities, and the registry snapshots must
remain deterministic for a fixed seed. They surface instead as the
``prof.*`` mapping of :meth:`HostProfiler.metrics`, the rendered
:func:`render_profile` table, and the ``profile`` section of the
recovery-timeline report. See docs/OBSERVABILITY.md §Profiling.
"""

from __future__ import annotations

import json
import sys
import typing

from repro.obs import hostclock
from repro.sim.process import Process

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.spans import Span, SpanRecorder
    from repro.sim.kernel import Kernel

# -- subsystem labels ----------------------------------------------------------

#: Module-prefix → subsystem label, longest prefix first. ``harness``
#: folds into ``workload``: both are load generation and scenario
#: driving, not protocol work.
_MODULE_LABELS: tuple[tuple[str, str], ...] = (
    ("repro.txn.data_manager", "dm"),
    ("repro.txn.locks", "locks"),
    ("repro.txn.deadlock", "locks"),
    ("repro.core.copier", "copier"),
    ("repro.sim", "kernel"),
    ("repro.net", "net"),
    ("repro.txn", "tm"),
    ("repro.baselines", "tm"),
    ("repro.storage", "dm"),
    ("repro.wal", "wal"),
    ("repro.core", "recovery"),
    ("repro.site", "site"),
    ("repro.mvcc", "mvcc"),
    ("repro.audit", "audit"),
    ("repro.obs", "obs"),
    ("repro.histories", "audit"),
    ("repro.workload", "workload"),
    ("repro.harness", "workload"),
    ("repro.system", "workload"),
)


def subsystem_of_module(module: str) -> str:
    """The subsystem label owning a dotted module path."""
    for prefix, label in _MODULE_LABELS:
        if module == prefix or module.startswith(prefix + "."):
            return label
    return "other"


def subsystem_of_path(path: str) -> str:
    """The subsystem label owning a source file path."""
    normalized = path.replace("\\", "/")
    index = normalized.rfind("/repro/")
    if index < 0:
        return "other"
    dotted = normalized[index + 1:].removesuffix(".py").replace("/", ".")
    return subsystem_of_module(dotted)


# -- view 1: host-CPU attribution ----------------------------------------------


class HostProfiler:
    """Attributes the kernel dispatch loop's host CPU to subsystems.

    Attach with :meth:`attach` (or ``build_traced_scheme(...,
    profile=True)`` / ``repro profile``); the kernel then routes its
    drain loop through the profiled path, calling :meth:`charge` once
    per signature run. All bookkeeping here is O(1) per *run*, not per
    event — the resolve caches make repeat signatures a dict hit.
    """

    def __init__(self, clock: typing.Callable[[], float] | None = None) -> None:
        #: The host clock the kernel reads; the injection point that
        #: keeps ``time`` imports out of SIM_TIME scope.
        self.clock = clock if clock is not None else hostclock.now
        #: Exclusive host CPU per subsystem label, seconds.
        self.cpu_s: dict[str, float] = {}
        #: Events dispatched per subsystem label.
        self.events: dict[str, int] = {}
        #: Wall time spent inside the profiled dispatch loop(s),
        #: accumulated by the kernel with the same clock reads that
        #: bound the charges — so ``sum(cpu_s.values())`` equals this
        #: up to float rounding.
        self.dispatch_wall_s = 0.0
        self._code_labels: dict[object, str] = {}
        self._target_labels: dict[object, str] = {}
        self._kernel: typing.Any = None

    # -- kernel wiring --------------------------------------------------------

    def attach(self, kernel: "Kernel") -> None:
        """Route ``kernel``'s dispatch through the profiled loop."""
        kernel._prof = self
        self._kernel = kernel

    def detach(self) -> None:
        """Restore the kernel's unprofiled dispatch loop."""
        if self._kernel is not None:
            self._kernel._prof = None
            self._kernel = None

    # -- accumulation ---------------------------------------------------------

    def charge(
        self, sig: typing.Any, entry: typing.Any, dt: float, n_events: int
    ) -> None:
        """Credit one signature run: ``dt`` host seconds, ``n_events`` events.

        Called by the kernel at run boundaries; ``sig`` is the run's
        dispatch signature (a callable for a Callback, the waiter list
        for a Future) and ``entry`` the first heap entry of the run.
        """
        label = self._resolve(sig)
        self.cpu_s[label] = self.cpu_s.get(label, 0.0) + dt
        self.events[label] = self.events.get(label, 0) + n_events

    def _resolve(self, sig: typing.Any) -> str:
        if callable(sig):
            target = sig  # a Callback's fn
        elif sig:
            target = sig[0]  # the first waiter on a Future
        else:
            return "kernel"  # bare timeout/future: pure heap work
        owner = getattr(target, "__self__", None)
        if isinstance(owner, Process):
            # A process resume: the CPU goes into the generator body,
            # so label by the generator's defining file (survives
            # generator exhaustion; memoized per code object).
            code = owner._generator.gi_code
            label = self._code_labels.get(code)
            if label is None:
                label = subsystem_of_path(code.co_filename)
                self._code_labels[code] = label
            return label
        key = getattr(target, "__func__", target)
        try:
            label = self._target_labels.get(key)
        except TypeError:  # unhashable callable: resolve uncached
            key = None
            label = None
        if label is None:
            if owner is not None:
                module = type(owner).__module__
            else:
                module = getattr(target, "__module__", None) or ""
            label = subsystem_of_module(module)
            if key is not None:
                self._target_labels[key] = label
        return label

    # -- results --------------------------------------------------------------

    @property
    def total_cpu_s(self) -> float:
        """Host CPU attributed across all subsystems."""
        return sum(self.cpu_s.values())

    @property
    def total_events(self) -> int:
        """Events dispatched while the profiler was attached."""
        return sum(self.events.values())

    def report(self) -> dict:
        """The attribution report, subsystems sorted by cpu_s descending."""
        total = self.total_cpu_s
        subsystems: dict[str, dict] = {}
        for label, cpu in sorted(
            self.cpu_s.items(), key=lambda item: (-item[1], item[0])
        ):
            count = self.events.get(label, 0)
            subsystems[label] = {
                "cpu_s": cpu,
                "share": cpu / total if total else 0.0,
                "events": count,
                "cpu_per_event": cpu / count if count else 0.0,
            }
        return {
            "total_cpu_s": total,
            "dispatch_wall_s": self.dispatch_wall_s,
            "total_events": self.total_events,
            "subsystems": subsystems,
        }

    def shares(self) -> dict[str, float]:
        """``{label: fraction of total cpu}``, label-sorted; {} when idle."""
        total = self.total_cpu_s
        if not total:
            return {}
        return {
            label: cpu / total for label, cpu in sorted(self.cpu_s.items())
        }

    def metrics(self) -> dict[str, object]:
        """The flat ``prof.*`` mapping the metric catalog documents.

        Deliberately *not* fed into the metrics registry: these are
        host wall-clock quantities and the registry snapshots must stay
        deterministic for a fixed seed.
        """
        report = self.report()
        subsystems = report["subsystems"]
        return {
            "prof.total_cpu_s": report["total_cpu_s"],
            "prof.dispatch_wall_s": report["dispatch_wall_s"],
            "prof.total_events": report["total_events"],
            "prof.cpu_s": {k: v["cpu_s"] for k, v in subsystems.items()},
            "prof.share": {k: v["share"] for k, v in subsystems.items()},
            "prof.events": {k: v["events"] for k, v in subsystems.items()},
            "prof.cpu_per_event": {
                k: v["cpu_per_event"] for k, v in subsystems.items()
            },
        }


def attach_profiler(system: typing.Any) -> HostProfiler:
    """Attach a host-CPU profiler to ``system``'s kernel.

    Rides on ``system.obs.profiler`` (like the auditor and the sampler)
    so reports and the CLI can find it after the run.
    """
    profiler = HostProfiler()
    profiler.attach(system.kernel)
    system.obs.profiler = profiler
    return profiler


def render_profile(report: dict) -> str:
    """Human-readable host-CPU table of :meth:`HostProfiler.report`."""
    lines = [
        "host-CPU profile: {events} events dispatched in {cpu:.4f}s "
        "(dispatch wall {wall:.4f}s)".format(
            events=report["total_events"],
            cpu=report["total_cpu_s"],
            wall=report["dispatch_wall_s"],
        ),
        f"{'subsystem':>10}  {'cpu_s':>9}  {'share':>6}  "
        f"{'events':>9}  {'us/event':>9}",
    ]
    for label, entry in report["subsystems"].items():
        lines.append(
            f"{label:>10}  {entry['cpu_s']:>9.4f}  {entry['share']:>6.1%}  "
            f"{entry['events']:>9}  {entry['cpu_per_event'] * 1e6:>9.2f}"
        )
    return "\n".join(lines)


# -- host stack sampling (--sample) --------------------------------------------


class StackSampler:
    """Folded host stacks via ``sys.setprofile``.

    A deterministic tracing profiler, not a statistical one: every
    call/return boundary charges the elapsed host time to the stack
    that was running. Expensive (it hooks every Python and C call), so
    it is opt-in per run (``repro profile --sample``) and never sits
    under the overhead gate. Stacks are relative to wherever
    :meth:`start` was called; frames opened before that simply never
    appear.
    """

    def __init__(self, clock: typing.Callable[[], float] | None = None) -> None:
        self.clock = clock if clock is not None else hostclock.now
        self._stack: list[str] = []
        self._folded: dict[tuple[str, ...], float] = {}
        self._labels: dict[object, str] = {}
        self._last = 0.0

    def start(self) -> None:
        """Install the hook; charges accrue until :meth:`stop`."""
        self._last = self.clock()
        sys.setprofile(self._hook)

    def stop(self) -> None:
        """Remove the hook."""
        sys.setprofile(None)

    def _hook(self, frame: typing.Any, event: str, arg: typing.Any) -> None:
        now = self.clock()
        stack = self._stack
        if stack:
            key = tuple(stack)
            self._folded[key] = self._folded.get(key, 0.0) + (now - self._last)
        self._last = now
        if event == "call":
            stack.append(self._code_label(frame.f_code))
        elif event == "c_call":
            stack.append(self._c_label(arg))
        elif event in ("return", "c_return", "c_exception"):
            if stack:
                stack.pop()

    def _code_label(self, code: typing.Any) -> str:
        label = self._labels.get(code)
        if label is None:
            path = code.co_filename.replace("\\", "/")
            index = path.rfind("/repro/")
            if index >= 0:
                tail = path[index + 1:].removesuffix(".py").replace("/", ".")
            else:
                tail = path.rsplit("/", 1)[-1].removesuffix(".py")
            label = f"{tail}.{code.co_name}"
            self._labels[code] = label
        return label

    def _c_label(self, fn: typing.Any) -> str:
        name = getattr(fn, "__qualname__", None) or repr(fn)
        module = getattr(fn, "__module__", None)
        return f"{module}.{name}" if module else str(name)

    def folded(self) -> dict[tuple[str, ...], float]:
        """``{stack: exclusive host seconds}`` accumulated so far."""
        return dict(self._folded)

    def top(self, n: int = 10) -> list[tuple[tuple[str, ...], float]]:
        """The ``n`` hottest stacks, by exclusive host time."""
        ranked = sorted(self._folded.items(), key=lambda item: -item[1])
        return ranked[:n]


# -- view 2: sim-time flamegraphs ----------------------------------------------


def frame_label(span: "Span") -> str:
    """The flamegraph frame name of a span.

    Per-instance suffixes collapse (``refresh:X3`` → ``refresh``,
    ``lock-wait:X1`` → ``lock-wait``) so identical work merges into one
    frame; transaction roots use their category (``user``/``control``)
    because the ``txn:`` prefix would erase exactly the distinction
    that matters.
    """
    prefix, sep, _ = span.name.partition(":")
    if not sep:
        return span.name
    if prefix == "txn":
        return span.category
    return prefix or span.name


def folded_stacks(recorder: "SpanRecorder") -> dict[tuple[str, ...], float]:
    """Collapse the span tree into exclusive sim-time per label path.

    Every instant of a root span's window is charged to exactly one
    root-to-leaf path: children are clipped to their parent's window,
    and where siblings overlap the latest-started one wins (the
    deepest stack at that instant). By construction the totals grouped
    by root label equal the root span durations — the property the
    test suite holds the fold to, whatever the tree shape (truncated
    spans, out-of-order recording, children outliving parents).
    """
    spans = recorder.spans
    by_id = {span.span_id: span for span in spans}
    children: dict[int, list["Span"]] = {}
    roots: list["Span"] = []
    for span in spans:
        parent_id = span.parent_id
        if (
            parent_id is not None
            and parent_id != span.span_id
            and parent_id in by_id
        ):
            children.setdefault(parent_id, []).append(span)
        else:
            roots.append(span)
    folded: dict[tuple[str, ...], float] = {}
    for root in roots:
        end = _end_of(root)
        if end > root.start:
            _charge_window(root, root.start, end, (), children, folded)
    return folded


def _end_of(span: "Span") -> float:
    end = span.end
    if end is None or end < span.start:
        return span.start
    return end


def _charge_window(
    span: "Span",
    lo: float,
    hi: float,
    path: tuple[str, ...],
    children: dict[int, list["Span"]],
    folded: dict[tuple[str, ...], float],
) -> None:
    path = path + (frame_label(span),)
    kids = [
        (max(lo, child.start), min(hi, _end_of(child)), child)
        for child in children.get(span.span_id, ())
    ]
    kids = [(start, end, child) for start, end, child in kids if end > start]
    if not kids:
        folded[path] = folded.get(path, 0.0) + (hi - lo)
        return
    bounds = sorted(
        {lo, hi}
        | {start for start, _end, _child in kids}
        | {end for _start, end, _child in kids}
    )
    for seg_lo, seg_hi in zip(bounds, bounds[1:]):
        covering = [
            child
            for start, end, child in kids
            if start <= seg_lo and end >= seg_hi
        ]
        if covering:
            winner = max(
                covering, key=lambda child: (child.start, child.span_id)
            )
            _charge_window(winner, seg_lo, seg_hi, path, children, folded)
        else:
            folded[path] = folded.get(path, 0.0) + (seg_hi - seg_lo)


def export_folded(
    folded: dict[tuple[str, ...], float], path: str, scale: float = 1000.0
) -> int:
    """Write a fold as flamegraph.pl collapsed text; returns line count.

    Works for both views: sim-time folds from :func:`folded_stacks` and
    host folds from :meth:`StackSampler.folded`. Values are scaled
    (default ×1000) and rounded because the collapsed format wants
    integer sample counts; zero-weight stacks are dropped.
    """
    lines = []
    for stack in sorted(folded):
        value = round(folded[stack] * scale)
        if value > 0:
            lines.append(";".join(stack) + f" {value}")
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def speedscope_document(recorder: "SpanRecorder", label: str = "repro") -> dict:
    """The span tree as a speedscope ``sampled`` profile (sim-time).

    One sample per distinct root-to-leaf path, weighted by its
    exclusive sim-time — open the file at https://www.speedscope.app
    (the "Left Heavy" view is the flamegraph).
    """
    folded = folded_stacks(recorder)
    frame_index: dict[str, int] = {}
    frames: list[dict] = []
    samples: list[list[int]] = []
    weights: list[float] = []
    for stack in sorted(folded):
        weight = folded[stack]
        if weight <= 0:
            continue
        indexed = []
        for frame in stack:
            index = frame_index.get(frame)
            if index is None:
                index = frame_index[frame] = len(frames)
                frames.append({"name": frame})
            indexed.append(index)
        samples.append(indexed)
        weights.append(weight)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": label,
        "exporter": "repro profile",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": label,
                "unit": "seconds",
                "startValue": 0.0,
                "endValue": sum(weights),
                "samples": samples,
                "weights": weights,
            }
        ],
    }


def export_speedscope(
    recorder: "SpanRecorder", path: str, label: str = "repro"
) -> int:
    """Write the speedscope JSON; returns the number of stacks."""
    document = speedscope_document(recorder, label=label)
    with open(path, "w") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return len(document["profiles"][0]["samples"])

"""Named traced scenarios: one representative cell per experiment.

``repro trace`` and ``repro metrics`` need a *single* system run with
spans enabled. The experiment grids are no good for that: their cells
run inside worker processes, where the :class:`~repro.obs.Observability`
bundle (and its span stream) would be lost at the pickle boundary. Each
experiment module therefore exposes a ``traced_scenario(seed)`` that
mirrors one representative cell of its grid on a small configuration,
built on :func:`repro.harness.runner.build_traced_scheme`; this module
is the dispatch table over them.

Every ``traced_scenario`` returns ``(kernel, system, obs, summary)``
where ``summary`` is a small dict of the numbers the mirrored cell would
have reported; :func:`run_traced` wraps that in a :class:`TracedRun`.
"""

from __future__ import annotations

import dataclasses
import importlib
import typing

SCENARIO_MODULES: dict[str, str] = {
    # Values are "module" (entry point ``traced_scenario``) or
    # "module:attr" when one experiment exposes several variants —
    # e10/e10sync are the same grid cell in each commit mode.
    "e1": "repro.harness.experiments.e1_availability",
    "e2": "repro.harness.experiments.e2_resume",
    "e3": "repro.harness.experiments.e3_overhead",
    "e4": "repro.harness.experiments.e4_copiers",
    "e5": "repro.harness.experiments.e5_identification",
    "e6": "repro.harness.experiments.e6_multifailure",
    "e7": "repro.harness.experiments.e7_control_cost",
    "e8": "repro.harness.experiments.e8_serializability",
    "e9": "repro.harness.experiments.e9_catchup",
    "e10": "repro.harness.experiments.e10_commit_modes",
    "e10sync": "repro.harness.experiments.e10_commit_modes:traced_scenario_sync",
    "e11": "repro.harness.experiments.e11_snapshot_reads",
    "e11sync": "repro.harness.experiments.e11_snapshot_reads:traced_scenario_sync",
}


@dataclasses.dataclass
class TracedRun:
    """A finished scenario run plus its observability bundle."""

    experiment: str
    kernel: typing.Any
    system: typing.Any
    obs: typing.Any
    summary: dict


def scenario_names() -> list[str]:
    """The experiment ids that have a traced scenario."""
    return sorted(SCENARIO_MODULES)


def run_traced(
    experiment: str,
    seed: int = 0,
    audit: bool = False,
    sample_period: float | None = None,
    profile: bool = False,
    schedule: typing.Any = None,
    races: bool = False,
) -> TracedRun:
    """Run the named experiment's traced scenario to completion.

    ``audit=True`` runs it under the online protocol auditor
    (``repro audit``): the returned run's ``obs.audit`` carries the
    alert log and the incremental 1-STG. ``sample_period`` enables the
    windowed time-series sampler (``repro latency --sample-period``,
    the throughput-trough report): the returned run's ``obs.sampler``
    carries the windows. ``profile=True`` attaches the host-CPU
    profiler (``repro profile``) to the kernel dispatch loop: the
    returned run's ``obs.profiler`` carries the per-subsystem CPU
    attribution.

    ``schedule`` (a :class:`~repro.sanitize.policy.ScheduleSpec`) runs
    the scenario under a perturbed same-timestamp tie-break policy and
    ``races=True`` attaches the happens-before race detector — both for
    ``repro schedfuzz``. With ``races=True`` the global access seam is
    torn down before returning, even on failure.
    """
    try:
        module_name = SCENARIO_MODULES[experiment]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment!r}; "
            f"choose from {', '.join(scenario_names())}"
        ) from None
    module_name, _, attr = module_name.partition(":")
    module = importlib.import_module(module_name)
    scenario = getattr(module, attr or "traced_scenario")
    try:
        kernel, system, obs, summary = scenario(
            seed, audit=audit, sample_period=sample_period, profile=profile,
            schedule=schedule, races=races,
        )
    finally:
        if races:
            from repro.sanitize import hooks

            hooks.clear()
    # Span hygiene backstop for scenarios that end without quiescing:
    # spans still open at the horizon are closed with truncated=True so
    # exports and critpath see them. Idempotent after quiesce().
    obs.spans.finish_open()
    return TracedRun(experiment, kernel, system, obs, summary)

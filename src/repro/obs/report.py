"""The recovery-timeline reporter.

Computes, per site, the temporal quantities the paper's evaluation is
about (experiments E2/E4/E6):

* **MTTR** — mean crash-to-operational downtime, from the
  ``recovery.downtime`` histogram;
* **time to nominally up** — power-on to the type-1 commit making the
  site operational (§3.4 step 4), from the recovery records;
* **time to fully current** — power-on to the copiers draining the last
  unreadable copy; ``None`` while copies are still unreadable;
* **missing-list drain curve** — the ``recovery.unreadable`` time series
  (unreadable count after each completed refresh);
* **session-mismatch rejections** — how often this site's DM bounced a
  stale-view request (the protocol's correctness tax).

Three analysis layers ride along when their inputs were recorded: the
per-category **latency budget** (:mod:`repro.obs.critpath`, when spans
are on), the **throughput trough** figures per outage
(:mod:`repro.obs.timeseries`, when a windowed sampler was attached),
and the **host-CPU profile** table (:mod:`repro.obs.profiler`, when a
profiler was attached).

Works on any :class:`~repro.system.DatabaseSystem`; the copier/recovery
fields appear when the system has the corresponding services (i.e. a
:class:`~repro.core.system.RowaaSystem`).
"""

from __future__ import annotations

import typing


def recovery_timeline(system: typing.Any) -> dict:
    """Build the recovery-timeline report as a plain dict."""
    registry = system.obs.registry
    copiers = getattr(system, "copiers", {})
    recoveries = getattr(system, "recoveries", {})

    sites: dict[int, dict] = {}
    for site_id in system.cluster.site_ids:
        site = system.cluster.site(site_id)
        downtime = registry.histogram("recovery.downtime", site_id)
        records = recoveries[site_id].records if site_id in recoveries else []
        to_operational = [
            r.time_to_operational for r in records if r.time_to_operational is not None
        ]
        entry: dict = {
            "crashes": site.crash_count,
            "recoveries": len(records),
            "mttr": downtime.mean if downtime.count else None,
            "time_to_nominally_up": (
                sum(to_operational) / len(to_operational) if to_operational else None
            ),
            "session_mismatch_rejections": int(
                registry.value("dm.session_mismatch", site_id)
            ),
            "marked_items": sum(r.marked_items for r in records),
            "type1_attempts": sum(r.type1_attempts for r in records),
            "type2_runs": sum(r.type2_runs for r in records),
        }
        if site.wal is not None:
            wal = site.wal
            service = copiers.get(site_id)
            entry["wal"] = {
                "durable_lsn": wal.log.durable_lsn,
                "checkpoint_lag": wal.checkpoint_lag,
                "checkpoints": wal.stats.checkpoints,
                "truncated_records": wal.log.truncated_records,
                "replays": wal.stats.replays,
                "records_replayed": wal.stats.records_replayed,
                "records_lost_unflushed": wal.stats.records_lost_unflushed,
                "records_shipped": (
                    service.stats.records_shipped if service is not None else 0
                ),
                "copies_performed": (
                    service.stats.copies_performed if service is not None else 0
                ),
            }
        if site_id in copiers and entry["recoveries"]:
            # Only meaningful for sites that actually came back: a site
            # that never crashed "drains" trivially when its (empty)
            # missing list is first checked.
            service = copiers[site_id]
            last_power_on = site.last_power_on_time
            drained = service.drained_at
            entry["time_to_fully_current"] = (
                drained - last_power_on
                if drained is not None
                and last_power_on is not None
                and drained >= last_power_on
                else None
            )
            entry["drain_curve"] = list(
                registry.series("recovery.unreadable", site_id).points
            )
        sites[site_id] = entry

    mttrs = [e["mttr"] for e in sites.values() if e["mttr"] is not None]
    nominally = [
        e["time_to_nominally_up"]
        for e in sites.values()
        if e["time_to_nominally_up"] is not None
    ]
    fully = [
        e.get("time_to_fully_current")
        for e in sites.values()
        if e.get("time_to_fully_current") is not None
    ]
    report = {
        "sim_time": system.kernel.now,
        "sites": sites,
        "global": {
            "recoveries": sum(e["recoveries"] for e in sites.values()),
            "mean_mttr": sum(mttrs) / len(mttrs) if mttrs else None,
            "mean_time_to_nominally_up": (
                sum(nominally) / len(nominally) if nominally else None
            ),
            "mean_time_to_fully_current": sum(fully) / len(fully) if fully else None,
            "session_mismatch_rejections": int(
                registry.value("dm.session_mismatch")
            ),
        },
    }
    obs = system.obs
    if obs.spans.enabled and obs.spans.spans:
        from repro.obs.critpath import latency_budget

        report["latency"] = latency_budget(obs)
    sampler = getattr(obs, "sampler", None)
    if sampler is not None and sampler.windows:
        from repro.obs.timeseries import outage_stats

        report["throughput"] = outage_stats(sampler)
    auditor = getattr(obs, "audit", None)
    if auditor is not None:
        report["audit"] = auditor.summary()
    profiler = getattr(obs, "profiler", None)
    if profiler is not None and profiler.total_events:
        report["profile"] = profiler.report()
    return report


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def render_recovery_timeline(report: dict) -> str:
    """Human-readable rendering of :func:`recovery_timeline`."""
    lines = [
        f"recovery timeline @ t={report['sim_time']:.1f}",
        f"{'site':>4}  {'crashes':>7}  {'recov':>5}  {'mttr':>8}  "
        f"{'nominally-up':>12}  {'fully-current':>13}  {'mismatches':>10}",
    ]
    for site_id, entry in sorted(report["sites"].items()):
        lines.append(
            f"{site_id:>4}  {entry['crashes']:>7}  {entry['recoveries']:>5}  "
            f"{_fmt(entry['mttr']):>8}  {_fmt(entry['time_to_nominally_up']):>12}  "
            f"{_fmt(entry.get('time_to_fully_current')):>13}  "
            f"{entry['session_mismatch_rejections']:>10}"
        )
    overall = report["global"]
    lines.append(
        "all:  "
        f"recoveries={overall['recoveries']} "
        f"mean_mttr={_fmt(overall['mean_mttr'])} "
        f"mean_nominally_up={_fmt(overall['mean_time_to_nominally_up'])} "
        f"mean_fully_current={_fmt(overall['mean_time_to_fully_current'])} "
        f"session_mismatches={overall['session_mismatch_rejections']}"
    )
    for site_id, entry in sorted(report["sites"].items()):
        curve = entry.get("drain_curve")
        if curve:
            points = "  ".join(f"t={t:.0f}:{int(v)}" for t, v in curve[:12])
            suffix = " ..." if len(curve) > 12 else ""
            lines.append(f"drain site {site_id}: {points}{suffix}")
    if any("wal" in entry for entry in report["sites"].values()):
        lines.append(
            f"{'site':>4}  {'dur-lsn':>7}  {'ckpt-lag':>8}  {'ckpts':>5}  "
            f"{'truncated':>9}  {'replays':>7}  {'replayed':>8}  {'lost':>4}  "
            f"{'shipped':>7}  {'copied':>6}"
        )
        for site_id, entry in sorted(report["sites"].items()):
            wal = entry.get("wal")
            if wal is None:
                continue
            lines.append(
                f"{site_id:>4}  {wal['durable_lsn']:>7}  {wal['checkpoint_lag']:>8}  "
                f"{wal['checkpoints']:>5}  {wal['truncated_records']:>9}  "
                f"{wal['replays']:>7}  {wal['records_replayed']:>8}  "
                f"{wal['records_lost_unflushed']:>4}  {wal['records_shipped']:>7}  "
                f"{wal['copies_performed']:>6}"
            )
    throughput = report.get("throughput")
    if throughput is not None:
        from repro.obs.timeseries import render_outage_stats

        lines.extend(render_outage_stats(throughput))
    latency = report.get("latency")
    if latency is not None and latency["txns"]:
        from repro.obs.critpath import render_latency_budget

        lines.append(render_latency_budget(latency))
    audit = report.get("audit")
    if audit is not None:
        lines.append(
            f"audit: {audit['alerts']} alerts "
            f"({audit['critical']} critical, {audit['warning']} warning), "
            f"{audit['checks']} checks, 1-STG "
            f"{audit['graph']['nodes']} txns / {audit['graph']['edges']} edges"
        )
        for rule, count in sorted(audit["by_rule"].items()):
            lines.append(f"audit rule {rule}: {count}")
    profile = report.get("profile")
    if profile is not None:
        from repro.obs.profiler import render_profile

        lines.append(render_profile(profile))
    return "\n".join(lines)

"""Exporters: JSONL span/metric dumps and Chrome trace-event files.

Two output formats:

* **JSONL** — one JSON object per line: a ``meta`` header, then every
  span (``"type": "span"``) and timeline instant (``"type": "instant"``),
  any windowed time series (``"type": "series"``, when a sampler is
  attached), then one ``"type": "metrics"`` line with the registry
  snapshot. Easy to grep and to post-process with jq/pandas.
* **Chrome trace-event JSON** — loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev. Spans become complete (``"ph": "X"``) events,
  instants become instant (``"ph": "i"``) events, and an attached
  sampler's windows become counter-track (``"ph": "C"``) events. One
  simulated time unit
  is rendered as one millisecond (timestamps are in microseconds), each
  site is a process (``pid``), and each span tree occupies the thread
  (``tid``) of its root span so a transaction's remote RPC children line
  up under it visually.

Spans still open at export time (e.g. a recovery that never finished) are
closed at the current sim-time and tagged ``"open": true``.
"""

from __future__ import annotations

import json
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability
    from repro.obs.spans import Span

#: Microseconds per simulated time unit in Chrome trace output
#: (1 sim unit -> 1 ms keeps typical runs in a readable range).
US_PER_SIM_UNIT = 1000.0


def _span_record(span: "Span", now: float) -> dict:
    record = span.to_dict()
    record["type"] = "span"
    if record["end"] is None:
        record["end"] = now
        record["open"] = True
    return record


def export_jsonl(obs: "Observability", path: str, label: str = "") -> int:
    """Write the full observability stream to ``path``; returns line count."""
    recorder = obs.spans
    now = obs.kernel.now
    lines = [
        {
            "type": "meta",
            "label": label,
            "sim_time": now,
            "spans": len(recorder.spans),
            "instants": len(recorder.instants),
        }
    ]
    lines.extend(_span_record(span, now) for span in recorder.spans)
    for instant in recorder.instants:
        record = instant.to_dict()
        record["type"] = "instant"
        lines.append(record)
    sampler = getattr(obs, "sampler", None)
    if sampler is not None:
        for entry in sampler.series():
            record = dict(entry)
            record["type"] = "series"
            record["t0"] = sampler.t0
            record["period"] = sampler.period
            lines.append(record)
    lines.append({"type": "metrics", "snapshot": obs.registry.snapshot()})
    with open(path, "w") as fh:
        for line in lines:
            fh.write(json.dumps(line) + "\n")
    return len(lines)


def _root_ids(spans: typing.Sequence["Span"]) -> dict[int, int]:
    """Map each span id to the id of its tree's root (path-compressed)."""
    by_id = {span.span_id: span for span in spans}
    roots: dict[int, int] = {}

    def resolve(span_id: int) -> int:
        chain = []
        current = span_id
        while True:
            cached = roots.get(current)
            if cached is not None:
                root = cached
                break
            span = by_id.get(current)
            if span is None or span.parent_id is None:
                root = current
                break
            chain.append(current)
            current = span.parent_id
        roots[current] = root
        for visited in chain:
            roots[visited] = root
        return root

    for span in spans:
        resolve(span.span_id)
    return roots


def chrome_trace_events(obs: "Observability") -> list[dict]:
    """The trace-event list (see module docstring for conventions)."""
    recorder = obs.spans
    now = obs.kernel.now
    roots = _root_ids(recorder.spans)
    events: list[dict] = []
    sites = sorted(
        {span.site_id for span in recorder.spans}
        | {instant.site_id for instant in recorder.instants}
    )
    for site_id in sites:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": site_id,
                "tid": 0,
                "args": {"name": f"site {site_id}"},
            }
        )
    for span in recorder.spans:
        end = span.end if span.end is not None else now
        args: dict = {"span_id": span.span_id, "category": span.category}
        if span.txn_id is not None:
            args["txn_id"] = span.txn_id
        if span.attrs:
            args.update({str(k): str(v) for k, v in span.attrs.items()})
        if span.end is None:
            args["open"] = True
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                "pid": span.site_id,
                "tid": roots[span.span_id],
                "ts": span.start * US_PER_SIM_UNIT,
                "dur": max(0.0, (end - span.start)) * US_PER_SIM_UNIT,
                "args": args,
            }
        )
    for instant in recorder.instants:
        events.append(
            {
                "ph": "i",
                "name": f"{instant.category}/{instant.name}",
                "cat": instant.category,
                "pid": instant.site_id,
                "tid": 0,
                "ts": instant.time * US_PER_SIM_UNIT,
                "s": "g",
                "args": {"detail": instant.detail},
            }
        )
    sampler = getattr(obs, "sampler", None)
    if sampler is not None:
        # The windowed time series render as counter tracks right under
        # the span lanes: outage dips and recovery ramps line up with
        # the crash/power-on instants visually.
        from repro.obs.timeseries import counter_events

        events.extend(counter_events(sampler, us_per_unit=US_PER_SIM_UNIT))
    return events


def export_chrome_trace(obs: "Observability", path: str, label: str = "") -> int:
    """Write a Chrome trace-event file to ``path``; returns event count."""
    events = chrome_trace_events(obs)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"label": label, "sim_time": obs.kernel.now},
    }
    with open(path, "w") as fh:
        json.dump(document, fh)
    return len(events)


def export_metrics_json(obs: "Observability", path: str, label: str = "") -> dict:
    """Write the metrics snapshot to ``path``; returns the snapshot."""
    snapshot = obs.registry.snapshot()
    with open(path, "w") as fh:
        json.dump({"label": label, "snapshot": snapshot}, fh, indent=2, sort_keys=True)
    return snapshot

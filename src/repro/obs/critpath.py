"""Critical-path latency attribution over recorded span trees.

Answers "where did the commit latency go?" for every committed user
transaction: the window from the transaction root's start to the client
ack is decomposed into **exclusive** segments, each charged to exactly
one category, so the per-category totals sum to the end-to-end ack
latency — no double counting, no silent gaps.

The decomposition walks the transaction's span tree (the root plus its
2pc / rpc / serve / lock-wait / wal-stall descendants recorded by
:class:`~repro.obs.spans.SpanRecorder`) and runs a priority sweep over
the ack window: at every instant the most specific span covering it
wins. The categories, most specific first:

==================  =========================================================
``lock_wait``       waiting in a lock queue (``lock`` spans, any site)
``wal_stall``       blocked on a WAL group-commit flush (``wal_stall`` spans)
``prepare_wait``    the 2PC prepare round / explicit quorum fallback
                    (``rpc:dm.prepare`` and ``quorum`` spans)
``decision_broadcast``  the commit/abort round on the client path
                    (``rpc:dm.commit`` / ``rpc:dm.abort`` spans)
``ro_serve``        snapshot-read rounds of read-only transactions
                    (``rpc:dm.read_snapshot`` and its serve span —
                    service *and* transit, so a lock-free RO txn's whole
                    ack latency lands here)
``execution``       remote DM work (other ``serve`` spans)
``network``         RPC transit not covered by a serve span
``client_think``    explicit ``think`` spans inside the window (closed-loop
                    clients think *between* transactions, so this is 0
                    unless a workload yields mid-transaction)
``unattributed``    the remainder — instants no recorded span explains
==================  =========================================================

Why priority rather than chain-walking: an ``rpc:dm.write`` span fully
covers its remote ``serve:dm.write`` child, which in turn may contain a
``lock`` wait — with the sweep, the lock wait charges to ``lock_wait``,
the rest of the serve to ``execution``, and only the transit residue to
``network``. A span whose parent never finished, a zero-duration span,
or a span finished out of order (``end < start``) never crashes the
sweep: it simply covers nothing, and time nothing covers lands in
``unattributed`` — which the report flags when it exceeds
:data:`GAP_FLAG_FRACTION` of the total.

The aggregate (:func:`latency_budget`) is the per-category latency
budget: totals, share-of-total, and per-transaction p50/p99, surfaced by
``repro latency``, the recovery-timeline report, and the E10 CI
artifact.
"""

from __future__ import annotations

import typing

from repro.obs.metrics import percentile

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability
    from repro.obs.spans import Span, SpanRecorder

#: Attribution categories, highest priority (most specific) first. The
#: sweep charges each instant of the ack window to the first category in
#: this order with a covering span; ``unattributed`` is the implicit
#: last resort.
CATEGORIES: tuple[str, ...] = (
    "lock_wait",
    "wal_stall",
    "prepare_wait",
    "decision_broadcast",
    "ro_serve",
    "execution",
    "network",
    "client_think",
)

#: The report flags the run when ``unattributed`` exceeds this fraction
#: of total ack latency (the E10 acceptance bound).
GAP_FLAG_FRACTION = 0.05

_UNATTRIBUTED = len(CATEGORIES)


def _bucket_of(span: "Span") -> int | None:
    """Category index for ``span``, or None when it never attributes."""
    category = span.category
    if category == "lock":
        return 0
    if category == "wal_stall":
        return 1
    if category == "quorum":
        return 2
    if category == "rpc":
        if span.name == "rpc:dm.prepare":
            return 2
        if span.name in ("rpc:dm.commit", "rpc:dm.abort"):
            return 3
        if span.name == "rpc:dm.read_snapshot":
            return 4
        return 6
    if category == "serve":
        if span.name == "serve:dm.read_snapshot":
            return 4
        return 5
    if category == "think":
        return 7
    return None  # 2pc containers, drains, anything future


def _descendants(
    children: dict[int, list["Span"]], root: "Span"
) -> list["Span"]:
    """Every span under ``root``, excluding ``drain`` subtrees.

    Drains are post-ack background work by construction (they start at
    the decision); excluding the subtree keeps the walk honest even if a
    drain's own RPC children outlive the window.
    """
    found: list[Span] = []
    stack = [root.span_id]
    while stack:
        for child in children.get(stack.pop(), ()):
            if child.category == "drain":
                continue
            found.append(child)
            stack.append(child.span_id)
    return found


def ack_end_of(root: "Span", children: dict[int, list["Span"]]) -> float | None:
    """The client-ack moment of a committed transaction root.

    Prefers the explicit ``ack_time`` attr the TM stamps when the commit
    strategy returns; falls back to the end of the ``2pc`` child (under
    sync 2PC the root closes at the *decision*, before the commit round
    the client still waits on), then to the root's own end.
    """
    if root.attrs:
        ack = root.attrs.get("ack_time")
        if isinstance(ack, (int, float)):
            return float(ack)
    two_pc_ends = [
        child.end
        for child in children.get(root.span_id, ())
        if child.category == "2pc" and child.end is not None
    ]
    if two_pc_ends:
        return max(two_pc_ends)
    return root.end


def attribute_txn(
    root: "Span", children: dict[int, list["Span"]]
) -> dict[str, float] | None:
    """Decompose one committed root's ack window; None when unmeasurable.

    Returns ``{category: seconds}`` over :data:`CATEGORIES` plus
    ``"unattributed"`` and ``"total"``; the categories sum to the total
    exactly (same additions, no rounding).
    """
    ack_end = ack_end_of(root, children)
    if ack_end is None:
        return None
    window_start, window_end = root.start, ack_end
    intervals: list[tuple[float, float, int]] = []
    for span in _descendants(children, root):
        bucket = _bucket_of(span)
        if bucket is None or span.end is None:
            continue
        start = max(span.start, window_start)
        end = min(span.end, window_end)
        if end > start:  # drops zero-duration and out-of-order spans
            intervals.append((start, end, bucket))

    # Priority sweep over the elementary segments between boundaries.
    bounds = {window_start, window_end}
    for start, end, _bucket in intervals:
        bounds.add(start)
        bounds.add(end)
    points = sorted(b for b in bounds if window_start <= b <= window_end)
    charged = [0.0] * (_UNATTRIBUTED + 1)
    for seg_start, seg_end in zip(points, points[1:]):
        if seg_end <= seg_start:
            continue
        best = _UNATTRIBUTED
        for start, end, bucket in intervals:
            if bucket < best and start <= seg_start and seg_end <= end:
                best = bucket
        charged[best] += seg_end - seg_start

    result = {name: charged[i] for i, name in enumerate(CATEGORIES)}
    result["unattributed"] = charged[_UNATTRIBUTED]
    result["total"] = window_end - window_start
    return result


def committed_user_roots(recorder: "SpanRecorder") -> list["Span"]:
    """Root spans of committed user transactions, in recording order."""
    return [
        span
        for span in recorder.spans
        if span.parent_id is None
        and span.category == "user"
        and span.attrs is not None
        and span.attrs.get("status") == "committed"
    ]


def latency_budget(
    obs: "Observability", flag_fraction: float = GAP_FLAG_FRACTION
) -> dict:
    """The per-category latency budget over every committed user txn.

    Plain-dict shape (JSON-ready)::

        {"txns": N, "total": T, "ack_p50": ..., "ack_p99": ...,
         "categories": {name: {"total", "share", "p50", "p99"}, ...},
         "gap_fraction": unattributed/T, "gap_ok": bool,
         "flag_fraction": flag_fraction}

    ``categories`` includes ``unattributed`` and preserves the priority
    order of :data:`CATEGORIES`; shares sum to 1.0 (when T > 0) because
    the per-transaction decomposition is exclusive and exhaustive.
    """
    recorder = obs.spans
    children: dict[int, list[Span]] = {}
    for span in recorder.spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)

    names = CATEGORIES + ("unattributed",)
    per_category: dict[str, list[float]] = {name: [] for name in names}
    totals: list[float] = []
    for root in committed_user_roots(recorder):
        charges = attribute_txn(root, children)
        if charges is None:
            continue
        totals.append(charges["total"])
        for name in names:
            per_category[name].append(charges[name])

    grand_total = sum(totals)
    categories = {}
    for name in names:
        values = per_category[name]
        total = sum(values)
        categories[name] = {
            "total": total,
            "share": (total / grand_total) if grand_total > 0 else 0.0,
            "p50": percentile(values, 50),
            "p99": percentile(values, 99),
        }
    gap_fraction = categories["unattributed"]["share"]
    return {
        "txns": len(totals),
        "total": grand_total,
        "ack_p50": percentile(totals, 50),
        "ack_p99": percentile(totals, 99),
        "categories": categories,
        "gap_fraction": gap_fraction,
        "gap_ok": gap_fraction <= flag_fraction,
        "flag_fraction": flag_fraction,
    }


def render_latency_budget(budget: dict) -> str:
    """Human-readable latency-budget table."""
    lines = [
        f"latency budget ({budget['txns']} committed user txns, "
        f"total ack latency {budget['total']:.1f}, "
        f"ack p50={budget['ack_p50']:.1f} p99={budget['ack_p99']:.1f})",
        f"{'category':>18}  {'total':>9}  {'share':>6}  {'p50':>7}  {'p99':>7}",
    ]
    for name, entry in budget["categories"].items():
        flag = ""
        if name == "unattributed" and not budget["gap_ok"]:
            flag = (f"  << ABOVE {budget['flag_fraction']:.0%} "
                    "UNATTRIBUTED GAP")
        lines.append(
            f"{name:>18}  {entry['total']:>9.1f}  {entry['share']:>6.1%}  "
            f"{entry['p50']:>7.2f}  {entry['p99']:>7.2f}{flag}"
        )
    return "\n".join(lines)

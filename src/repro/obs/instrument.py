"""Wiring between the observability layer and the system's components.

``instrument_system`` is called at the end of
:class:`~repro.system.DatabaseSystem` construction and registers
*collectors* — pull-time scrapers over the counters the subsystems
already maintain (``TmStats``, ``NetworkStats``, lock-manager and DM
counters, detector down-events, the kernel's processed-event count) —
plus the timeline hooks (site lifecycle, transaction finish) that feed
:class:`~repro.harness.trace.SystemTracer` and the exporters.

``instrument_rowaa`` adds the protocol-layer sources a plain
``DatabaseSystem`` does not have: copier work accounting and recovery
records. Everything here is duck-typed on purpose: this module imports
no component modules, so it can never create an import cycle.

Metric name catalog: see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import typing

from repro.obs.metrics import percentile


def instrument_system(system: typing.Any) -> None:
    """Register base-layer collectors and timeline hooks on ``system``."""
    obs = system.obs
    registry = obs.registry
    kernel = system.kernel
    network = system.cluster.network

    def collect_kernel() -> dict:
        return {("kernel.events_processed", None): float(kernel.events_processed)}

    def collect_network() -> dict:
        stats = network.stats
        return {
            ("net.sent", None): float(stats.sent),
            ("net.delivered", None): float(stats.delivered),
            ("net.local_sent", None): float(stats.local_sent),
            ("net.local_delivered", None): float(stats.local_delivered),
            ("net.dropped_dst_down", None): float(stats.dropped_dst_down),
            ("net.dropped_src_down", None): float(stats.dropped_src_down),
            ("net.dropped_loss", None): float(stats.dropped_loss),
            ("net.dropped_partition", None): float(stats.dropped_partition),
            ("net.dropped_local_down", None): float(stats.dropped_local_down),
            ("net.bytes_sent", None): float(stats.bytes_sent),
            ("net.bytes_delivered", None): float(stats.bytes_delivered),
        }

    def collect_sites() -> dict:
        values: dict = {}
        for site_id, tm in system.tms.items():
            stats = tm.stats
            values[("txn.committed", site_id)] = float(stats.committed)
            values[("txn.aborted", site_id)] = float(stats.aborted)
            values[("txn.refused", site_id)] = float(stats.refused)
            values[("txn.ro_committed", site_id)] = float(stats.ro_committed)
            values[("txn.ro_aborted", site_id)] = float(stats.ro_aborted)
            values[("txn.ro_refused", site_id)] = float(stats.ro_refused)
            values[("tm.commit_ack_lost", site_id)] = float(stats.commit_ack_lost)
            values[("tm.abort_ack_lost", site_id)] = float(stats.abort_ack_lost)
            values[("tm.async_commits", site_id)] = float(stats.async_commits)
            values[("tm.drains_spawned", site_id)] = float(stats.drains_spawned)
            values[("tm.drains_completed", site_id)] = float(stats.drains_completed)
            values[("tm.commit_p50", site_id)] = percentile(stats.ack_latencies, 50)
            values[("tm.commit_p99", site_id)] = percentile(stats.ack_latencies, 99)
            rpc = tm.rpc
            values[("rpc.batches", site_id)] = float(rpc.stats_batches)
            values[("rpc.batched_calls", site_id)] = float(rpc.stats_batched_calls)
            values[("rpc.decisions_piggybacked", site_id)] = float(
                rpc.stats_decisions_piggybacked
            )
        for site_id, dm in system.dms.items():
            values[("dm.session_mismatch", site_id)] = float(
                dm.stats_session_rejections
            )
            values[("dm.unreadable_rejections", site_id)] = float(
                dm.stats_unreadable_rejections
            )
            lock_manager = getattr(dm, "lock_manager", None)
            if lock_manager is not None:
                values[("locks.waits", site_id)] = float(lock_manager.stats_waits)
                values[("locks.grants", site_id)] = float(lock_manager.stats_grants)
        for site_id in system.cluster.site_ids:
            detector = system.cluster.detector(site_id)
            values[("detector.down_events", site_id)] = float(detector.down_events)
        return values

    def collect_wal() -> dict:
        values: dict = {}
        for site_id in system.cluster.site_ids:
            wal = system.cluster.site(site_id).wal
            if wal is None:
                continue
            stats = wal.stats
            values[("wal.records_appended", site_id)] = float(stats.records_appended)
            values[("wal.flushes", site_id)] = float(stats.flushes)
            values[("wal.records_flushed", site_id)] = float(stats.records_flushed)
            values[("wal.bytes_flushed", site_id)] = float(stats.bytes_flushed)
            values[("wal.checkpoints", site_id)] = float(stats.checkpoints)
            values[("wal.replays", site_id)] = float(stats.replays)
            values[("wal.records_replayed", site_id)] = float(stats.records_replayed)
            values[("wal.records_lost_unflushed", site_id)] = float(
                stats.records_lost_unflushed
            )
            values[("wal.durable_lsn", site_id)] = float(wal.log.durable_lsn)
            values[("wal.checkpoint_lag", site_id)] = float(wal.checkpoint_lag)
            values[("wal.truncated_records", site_id)] = float(
                wal.log.truncated_records
            )
        return values

    def collect_mvcc() -> dict:
        values: dict = {}
        for site_id, store in getattr(system, "mvcc", {}).items():
            stats = store.stats
            values[("mvcc.ro_served", site_id)] = float(stats.ro_served)
            values[("mvcc.ro_served_while_recovering", site_id)] = float(
                stats.ro_served_stale
            )
            values[("mvcc.gc_reclaimed", site_id)] = float(stats.gc_reclaimed)
            values[("mvcc.gc_sweeps", site_id)] = float(stats.gc_sweeps)
            values[("mvcc.versions_retained", site_id)] = float(
                store.versions_retained()
            )
            values[("mvcc.snapshots_active", site_id)] = float(
                store.active_pins()
            )
        return values

    registry.add_collector(collect_kernel)
    registry.add_collector(collect_network)
    registry.add_collector(collect_sites)
    registry.add_collector(collect_wal)
    registry.add_collector(collect_mvcc)

    # Timeline instants: site lifecycle + transaction finish. The hooks
    # are always attached (cheap: one call per lifecycle event / txn
    # finish, not per kernel event) and drop everything until
    # obs.enable_timeline() flips the gate.
    recorder = obs.spans

    def site_instant(site_id: int, what: str) -> None:
        if recorder.timeline_on:
            recorder.instant(what, "site", site_id)

    for site_id in system.cluster.site_ids:
        site = system.cluster.site(site_id)
        site.crash_hooks.append(lambda sid=site_id: site_instant(sid, "crash"))
        site.power_on_hooks.append(lambda sid=site_id: site_instant(sid, "power-on"))
    system.cluster.recovered_hooks.append(
        lambda sid: site_instant(sid, "operational")
    )

    def txn_instant(txn: typing.Any) -> None:
        if not recorder.timeline_on:
            return
        kind = txn.kind.value
        detail = txn.txn_id + (f" ({txn.abort_reason})" if txn.abort_reason else "")
        recorder.instant(
            "commit" if txn.status.value == "committed" else "abort",
            "txn" if kind == "user" else kind,
            txn.home_site,
            detail,
        )

    for tm in system.tms.values():
        tm.finish_hooks.append(txn_instant)


def instrument_rowaa(system: typing.Any) -> None:
    """Register protocol-layer collectors (copiers, recovery, control)."""
    registry = system.obs.registry

    def collect_protocol() -> dict:
        values: dict = {}
        for site_id, service in system.copiers.items():
            stats = service.stats
            values[("copier.refreshes", site_id)] = float(stats.copies_performed)
            values[("copier.skipped_version", site_id)] = float(
                stats.copies_skipped_version
            )
            values[("copier.aborts", site_id)] = float(stats.copier_aborts)
            values[("copier.total_failures", site_id)] = float(stats.total_failures)
            values[("copier.resurrections", site_id)] = float(stats.resurrections)
            values[("copier.cleared_by_user_write", site_id)] = float(
                stats.cleared_by_user_write
            )
            values[("copier.bytes_copied", site_id)] = float(stats.bytes_copied)
            values[("copier.ship_batches", site_id)] = float(stats.ship_batches)
            values[("copier.records_shipped", site_id)] = float(stats.records_shipped)
            values[("copier.ship_applied", site_id)] = float(stats.ship_applied)
            values[("copier.ship_validated", site_id)] = float(stats.ship_validated)
            values[("copier.ship_bytes", site_id)] = float(stats.ship_bytes)
            values[("copier.ship_served_records", site_id)] = float(
                stats.ship_served_records
            )
            values[("copier.ship_fallback_truncated", site_id)] = float(
                stats.ship_fallback_truncated
            )
            values[("copier.ship_fallback_items", site_id)] = float(
                stats.ship_fallback_items
            )
        for site_id, manager in system.recoveries.items():
            records = manager.records
            values[("recovery.runs", site_id)] = float(len(records))
            values[("recovery.type1_attempts", site_id)] = float(
                sum(record.type1_attempts for record in records)
            )
            values[("recovery.type2_runs", site_id)] = float(
                sum(record.type2_runs for record in records)
            )
            values[("recovery.marked_items", site_id)] = float(
                sum(record.marked_items for record in records)
            )
        for site_id, control in system.controls.items():
            values[("control.type2_committed", site_id)] = float(
                control.type2_committed
            )
            values[("control.type2_aborted", site_id)] = float(control.type2_aborted)
        return values

    registry.add_collector(collect_protocol)

"""The sanctioned host monotonic clock (the REP001 seam).

Everything in the repository runs on *simulated* time (``kernel.now``);
replint's REP001 rule bans wall clocks inside SIM_TIME scope so no
protocol decision can ever depend on host timing. The two legitimate
consumers of real time — the microbench harness (wall-clock throughput)
and the host-CPU profiler behind ``repro profile`` — take their clock
from here instead of reaching for ``time.perf_counter`` themselves.
One module means one obvious place to audit, and the profiler can hand
the kernel a clock callable without the kernel ever importing ``time``.
"""

from __future__ import annotations

import time

#: Monotonic high-resolution host clock, in fractional seconds. The
#: bare ``perf_counter`` function object (not a wrapper) so hot loops
#: pay no extra call frame per read.
now = time.perf_counter

"""The metrics registry: counters, gauges, histograms, time series.

Every instrument is keyed by ``(name, site_id)`` — ``site_id`` is ``None``
for system-global instruments — so :meth:`MetricsRegistry.snapshot` can
offer both a per-site and a summed global view of the same name. Names
follow a ``subsystem.measure`` convention (``dm.session_mismatch``,
``locks.wait_time``, ``copier.refreshes``, ``recovery.downtime``); the
full catalog lives in ``docs/OBSERVABILITY.md``.

Two cost regimes:

* **Push instruments** (``counter``/``gauge``/``histogram``/``series``)
  are updated inline by the instrumented component. They are reserved
  for *rare* events (lock waits, commits, refreshes) — never the kernel
  event loop.
* **Collectors** are zero-cost until read: a callable registered with
  :meth:`add_collector` that scrapes counters a component already keeps
  (``TmStats``, ``NetworkStats``, ``CopierStats`` …) at snapshot time.
  The hot paths those counters live on are not touched at all.
"""

from __future__ import annotations

import math
import typing

#: Fixed log-scale histogram bucket upper bounds: powers of two from
#: 2^-3 (0.125 sim-time units) to 2^17 (131072), plus an implicit
#: overflow bucket. One shared layout keeps every histogram mergeable.
BUCKET_BOUNDS: tuple[float, ...] = tuple(2.0**exp for exp in range(-3, 18))

Key = typing.Tuple[str, typing.Optional[int]]


def percentile(values: typing.Sequence[float], p: float) -> float:
    """Half-up nearest-rank percentile (p in [0, 100]); 0.0 when empty.

    The one percentile in the repository: the harness statistics, the
    bench latency columns, the ``tm.commit_p50/p99`` collectors, and the
    critical-path latency budget all route here, so every reported
    percentile uses the same convention. The rank is ``floor(x + 0.5)``
    rather than ``round(x)``: built-in ``round`` uses banker's rounding,
    under which the p50 of two elements lands on index 0 (0.5 rounds to
    0) — half-up makes .5 ties resolve to the upper neighbour
    consistently on every Python build.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if p <= 0:
        return ordered[0]
    if p >= 100:
        return ordered[-1]
    rank = int(math.floor(p / 100 * (len(ordered) - 1) + 0.5))
    return ordered[max(0, min(len(ordered) - 1, rank))]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "site_id", "value")

    def __init__(self, name: str, site_id: int | None) -> None:
        self.name = name
        self.site_id = site_id
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "site_id", "value")

    def __init__(self, name: str, site_id: int | None) -> None:
        self.name = name
        self.site_id = site_id
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A fixed log-scale-bucket histogram of non-negative samples."""

    __slots__ = ("name", "site_id", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, site_id: int | None) -> None:
        self.name = name
        self.site_id = site_id
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)  # +1 = overflow
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        index = 0
        for bound in BUCKET_BOUNDS:
            if value <= bound:
                break
            index += 1
        self.buckets[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": self.min,
            "max": self.max,
            "buckets": {
                ("inf" if index == len(BUCKET_BOUNDS) else BUCKET_BOUNDS[index]): n
                for index, n in enumerate(self.buckets)
                if n
            },
        }

    def merge_into(self, other: "Histogram") -> None:
        """Add this histogram's samples into ``other`` (global views)."""
        for index, n in enumerate(self.buckets):
            other.buckets[index] += n
        other.count += self.count
        other.total += self.total
        if self.min is not None and (other.min is None or self.min < other.min):
            other.min = self.min
        if self.max is not None and (other.max is None or self.max > other.max):
            other.max = self.max


class TimeSeries:
    """An append-only ``(time, value)`` series (drain curves and the like)."""

    __slots__ = ("name", "site_id", "points")

    def __init__(self, name: str, site_id: int | None) -> None:
        self.name = name
        self.site_id = site_id
        self.points: list[tuple[float, float]] = []

    def append(self, time: float, value: float) -> None:
        self.points.append((time, value))


class MetricsRegistry:
    """All instruments of one system, plus pull-time collectors."""

    def __init__(self) -> None:
        self._counters: dict[Key, Counter] = {}
        self._gauges: dict[Key, Gauge] = {}
        self._histograms: dict[Key, Histogram] = {}
        self._series: dict[Key, TimeSeries] = {}
        self._collectors: list[typing.Callable[[], dict[Key, float]]] = []

    # -- instrument factories (idempotent per key) ----------------------------

    def counter(self, name: str, site: int | None = None) -> Counter:
        key = (name, site)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, site)
        return instrument

    def gauge(self, name: str, site: int | None = None) -> Gauge:
        key = (name, site)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, site)
        return instrument

    def histogram(self, name: str, site: int | None = None) -> Histogram:
        key = (name, site)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, site)
        return instrument

    def series(self, name: str, site: int | None = None) -> TimeSeries:
        key = (name, site)
        instrument = self._series.get(key)
        if instrument is None:
            instrument = self._series[key] = TimeSeries(name, site)
        return instrument

    def add_collector(
        self, collector: typing.Callable[[], dict[Key, float]]
    ) -> None:
        """Register a pull-time scraper returning ``{(name, site): value}``."""
        self._collectors.append(collector)

    # -- views ----------------------------------------------------------------

    def _scalar_values(self) -> dict[Key, float]:
        values: dict[Key, float] = {}
        for key, counter in self._counters.items():
            values[key] = counter.value
        for key, gauge in self._gauges.items():
            values[key] = gauge.value
        for collector in self._collectors:
            for key, value in collector().items():
                values[key] = values.get(key, 0.0) + value
        return values

    def value(self, name: str, site: int | None = None) -> float:
        """Current scalar value of ``name`` (summed over sites if None)."""
        values = self._scalar_values()
        if site is not None:
            return values.get((name, site), 0.0)
        return sum(v for (n, _s), v in values.items() if n == name)

    def snapshot(self) -> dict:
        """Plain-dict view: global totals plus per-site breakdowns.

        Scalars (counters, gauges, collector output) appear under
        ``"global"`` (summed over sites) and ``"per_site"``; histograms
        under ``"histograms"`` with a merged ``None``-site entry per
        name; series under ``"series"`` keyed ``name@site``.
        """
        values = self._scalar_values()
        global_view: dict[str, float] = {}
        per_site: dict[str, dict[int, float]] = {}
        for (name, site), value in sorted(values.items(), key=lambda kv: str(kv[0])):
            global_view[name] = global_view.get(name, 0.0) + value
            if site is not None:
                per_site.setdefault(name, {})[site] = value

        histograms: dict[str, dict] = {}
        merged: dict[str, Histogram] = {}
        for (name, site), histogram in self._histograms.items():
            if site is not None:
                histograms.setdefault(name, {})[f"site_{site}"] = histogram.to_dict()
            target = merged.get(name)
            if target is None:
                target = merged[name] = Histogram(name, None)
            histogram.merge_into(target)
        for name, histogram in merged.items():
            histograms.setdefault(name, {})["all"] = histogram.to_dict()

        series = {
            (name if site is None else f"{name}@{site}"): list(ts.points)
            for (name, site), ts in self._series.items()
        }
        return {
            "global": global_view,
            "per_site": per_site,
            "histograms": histograms,
            "series": series,
        }

"""Causal spans and timeline instants, recorded in sim-time.

A :class:`Span` is one timed unit of work (a transaction, an RPC, a lock
wait, a copier refresh, a recovery run). Spans form a tree via
``parent_id``; the tree crosses sites because the RPC layer stamps the
caller's span id onto the :class:`~repro.net.messages.Message` envelope
and the serving site opens a child span under it — that is how remote DM
work is attributed to the originating transaction.

An :class:`Instant` is a zero-duration timeline event (site crash,
power-on, operational announcement, transaction finish); the
:class:`~repro.harness.trace.SystemTracer` compatibility shim is a view
over the instant stream.

Cost model: recording is opt-in twice over. ``enabled`` gates spans,
``timeline_on`` gates instants, and every instrumentation hook checks its
gate before allocating anything — with both off (the default) a traced
code path pays one attribute read and one branch, and the kernel event
loop pays nothing at all.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel


class Span:
    """One timed unit of work. ``end`` stays ``None`` while open."""

    __slots__ = ("span_id", "parent_id", "name", "category", "site_id",
                 "start", "end", "txn_id", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        category: str,
        site_id: int,
        start: float,
        txn_id: str | None = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.site_id = site_id
        self.start = start
        self.end: float | None = None
        self.txn_id = txn_id
        self.attrs: dict[str, object] | None = None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict:
        record = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "site": self.site_id,
            "start": self.start,
            "end": self.end,
        }
        if self.txn_id is not None:
            record["txn_id"] = self.txn_id
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    def __repr__(self) -> str:
        state = "open" if self.end is None else f"{self.duration:.3f}"
        return f"<Span #{self.span_id} {self.category}/{self.name} @{self.site_id} {state}>"


class Instant:
    """A zero-duration timeline event."""

    __slots__ = ("name", "category", "site_id", "time", "detail")

    def __init__(
        self, name: str, category: str, site_id: int, time: float, detail: str = ""
    ) -> None:
        self.name = name
        self.category = category
        self.site_id = site_id
        self.time = time
        self.detail = detail

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "site": self.site_id,
            "time": self.time,
            "detail": self.detail,
        }


class SpanRecorder:
    """Collects the span tree and the instant timeline of one system."""

    def __init__(
        self, kernel: "Kernel", enabled: bool = False, timeline: bool = False
    ) -> None:
        self.kernel = kernel
        self.enabled = enabled
        self.timeline_on = timeline
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self._next_id = 1
        self._txn_roots: dict[str, int] = {}

    # -- spans ----------------------------------------------------------------

    def start(
        self,
        name: str,
        category: str,
        site_id: int,
        parent: int | None = None,
        txn_id: str | None = None,
    ) -> Span:
        """Open a span now; finish it with :meth:`finish`."""
        span = Span(
            self._next_id, parent, name, category, site_id,
            self.kernel.now, txn_id=txn_id,
        )
        self._next_id += 1
        self.spans.append(span)
        if txn_id is not None and parent is None:
            self._txn_roots[txn_id] = span.span_id
        return span

    def finish(self, span: Span, **attrs: object) -> None:
        """Close ``span`` at the current sim-time, attaching ``attrs``."""
        if span.end is None:
            span.end = self.kernel.now
        if attrs:
            if span.attrs is None:
                span.attrs = {}
            span.attrs.update(attrs)

    def annotate(self, span: Span, **attrs: object) -> None:
        """Attach ``attrs`` to ``span`` without touching its end time.

        Unlike :meth:`finish` this is safe on a span that must stay open
        (e.g. marking the client-ack moment on a transaction root whose
        drain is still in flight).
        """
        if attrs:
            if span.attrs is None:
                span.attrs = {}
            span.attrs.update(attrs)

    def finish_open(self, **attrs: object) -> list[Span]:
        """Close every still-open span at the current sim-time.

        Called when a simulation drains (harness ``quiesce``, the traced
        scenario dispatcher): a span left open at the horizon — an
        in-flight drain, a 2PC blocked on a dead coordinator — is real
        protocol history and must survive into the exports rather than
        being dropped or mis-measured. Each closed span is tagged
        ``truncated=True`` so downstream analysis (critpath, the trace
        viewer) can tell a horizon cut from a genuine finish. Returns the
        spans it closed; idempotent.
        """
        closed: list[Span] = []
        for span in self.spans:
            if span.end is None:
                span.end = self.kernel.now
                if span.attrs is None:
                    span.attrs = {}
                span.attrs["truncated"] = True
                if attrs:
                    span.attrs.update(attrs)
                closed.append(span)
        return closed

    def complete(
        self,
        name: str,
        category: str,
        site_id: int,
        start: float,
        parent: int | None = None,
        txn_id: str | None = None,
        **attrs: object,
    ) -> Span:
        """Record an already-finished span (e.g. a lock wait, post-grant)."""
        span = Span(self._next_id, parent, name, category, site_id, start, txn_id=txn_id)
        self._next_id += 1
        span.end = self.kernel.now
        if attrs:
            span.attrs = dict(attrs)
        self.spans.append(span)
        return span

    def root_of(self, txn_id: str) -> int | None:
        """The root span id of ``txn_id``, if it was recorded."""
        return self._txn_roots.get(txn_id)

    # -- instants -------------------------------------------------------------

    def instant(
        self, name: str, category: str, site_id: int, detail: str = ""
    ) -> None:
        self.instants.append(
            Instant(name, category, site_id, self.kernel.now, detail)
        )

    # -- queries --------------------------------------------------------------

    def spans_of_category(self, category: str) -> list[Span]:
        return [span for span in self.spans if span.category == category]

    def children_of(self, span_id: int) -> list[Span]:
        return [span for span in self.spans if span.parent_id == span_id]

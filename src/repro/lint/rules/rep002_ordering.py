"""REP002 — order-sensitive iteration over unordered sets.

String and object hashes vary across interpreter runs (hash
randomization, allocation addresses), so iterating a ``set`` in code
that schedules kernel events, sends messages, or builds durable state
produces run-to-run nondeterminism — the exact failure class the
``repro.wal.determinism`` gate exists to catch, except it only catches
the paths a given seed happens to execute. Statically: any set-like
expression consumed in an order-sensitive position (a ``for`` loop, a
list/generator comprehension, ``list()``/``tuple()``/``enumerate()``/
``zip()``/``.join()``) is flagged unless the consumer is itself
order-insensitive (``sorted``, ``set``, ``sum``, ``any``, …).

Fix by iterating ``sorted(s)``, or keep an insertion-ordered
dict-as-set (``dict[T, None]``) when sort order is wrong or too costly.
Set/dict comprehensions are exempt (their results are unordered/keyed);
the rare order-sensitive accumulation inside one still needs a manual
eye — the dynamic determinism gate backstops that gap.
"""

from __future__ import annotations

import ast
import typing

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules import _setlike
from repro.lint.rules._scopes import SIM_TIME

_ORDERED_WRAPPERS = frozenset({"list", "tuple", "enumerate", "zip"})


@register
class UnorderedIterationRule(Rule):
    id = "REP002"
    title = "order-sensitive iteration over an unordered set"
    scope = SIM_TIME

    def check(self, ctx: FileContext) -> typing.Iterator[Finding]:
        # Module top level.
        module_env = _setlike.Env(attrs={})
        _setlike.scan_scope_statements(ctx.tree.body, module_env)
        yield from self._check_scope(ctx, ctx.tree, module_env)
        # Functions and methods, each with its own environment; methods
        # share the class-wide ``self.*`` attribute map.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                attrs = _setlike.class_attr_env(node)
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        env = _setlike.env_for_function(stmt, attrs)
                        yield from self._check_scope(ctx, stmt, env)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                parent = ctx.parent(node)
                if isinstance(parent, ast.ClassDef):
                    continue  # handled above with the class attr map
                env = _setlike.env_for_function(node, {})
                yield from self._check_scope(ctx, node, env)

    # -- one scope ----------------------------------------------------------

    def _check_scope(
        self, ctx: FileContext, scope: ast.AST, env: _setlike.Env
    ) -> typing.Iterator[Finding]:
        for node in self._walk_scope(scope):
            if isinstance(node, ast.For):
                if self._is_setlike(node.iter, env):
                    yield self._flag(ctx, node.iter, "for-loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                if self._consumer_is_order_insensitive(ctx, node):
                    continue
                for comp in node.generators:
                    if self._is_setlike(comp.iter, env):
                        yield self._flag(ctx, comp.iter, "comprehension")
            elif isinstance(node, ast.Call):
                func = node.func
                wrapper = None
                if isinstance(func, ast.Name) and func.id in _ORDERED_WRAPPERS:
                    wrapper = func.id
                elif isinstance(func, ast.Attribute) and func.attr == "join":
                    wrapper = "join"
                if wrapper is None or self._consumer_is_order_insensitive(ctx, node):
                    continue
                for arg in node.args:
                    if self._is_setlike(arg, env):
                        yield self._flag(ctx, arg, f"{wrapper}()")

    def _walk_scope(self, scope: ast.AST) -> typing.Iterator[ast.AST]:
        """Walk a scope without crossing into nested function/class defs."""
        body = scope.body if hasattr(scope, "body") else []
        stack = list(body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _is_setlike(self, node: ast.expr, env: _setlike.Env) -> bool:
        return _setlike.expr_is_setlike(node, env)

    def _consumer_is_order_insensitive(
        self, ctx: FileContext, node: ast.AST
    ) -> bool:
        """True when the value feeds sorted()/set()/… directly."""
        parent = ctx.parent(node)
        if not isinstance(parent, ast.Call) or node is parent.func:
            return False
        func = parent.func
        if isinstance(func, ast.Name):
            return func.id in _setlike.ORDER_INSENSITIVE_CALLS
        if isinstance(func, ast.Attribute):
            return func.attr in _setlike.ORDER_INSENSITIVE_METHODS
        return False

    def _flag(self, ctx: FileContext, node: ast.expr, where: str) -> Finding:
        return self.finding(
            ctx,
            node,
            f"set iterated in order-sensitive {where}: iteration order "
            "varies across runs; wrap in sorted(...) or use an "
            "insertion-ordered dict-as-set",
        )

"""REP007 — protocol state mutated after a yield from a stale pre-yield read.

A protocol coroutine that reads shared site state (the actual session
number ``as[k]``, an unreadable mark), *yields* — suspending for an
arbitrary stretch of simulated time — and then mutates site state using
the value it read earlier is acting on a world that may no longer exist:
a recovery can install a new session, a copier can renovate the copy,
while the coroutine sleeps. The dynamic companion of this rule is the
schedsan coroutine-atomicity check (:mod:`repro.sanitize.hb`), which
catches the interleavings a given seed happens to execute; this rule
flags the *pattern* on every code path.

Statically: inside any generator function in the protocol layers, a
local variable whose **last** assignment reads session/unreadable state
(an attribute chain ending in ``.actual_session``, ``.sessions.current``,
or ``.unreadable``) is *stale-tainted*. Using a tainted variable in a
state-mutating position — as an argument to a known mutator
(``activate``, ``apply_write``, ``mark_unreadable``, ``clear_unreadable``,
``install``, ``log_session``) or on the right-hand side of a store to a
state attribute — after at least one intervening ``yield`` is flagged.
Re-reading the state after the yield (re-assigning the variable) is the
revalidation that clears the taint, and is the fix::

    session = site.sessions.current
    yield kernel.timeout(5)
    site.sessions.activate(session + 1, now)     # REP007: stale read

    yield kernel.timeout(5)
    session = site.sessions.current              # revalidated: clean
    site.sessions.activate(session + 1, now)

The analysis is a linear source-order approximation (branches are
visited in order, loops once): cheap, deterministic, and biased toward
silence — a value smuggled through a container or an attribute escapes
it, which the dynamic check backstops.
"""

from __future__ import annotations

import ast
import typing

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules._scopes import PROTOCOL

#: Call names that commit a value into shared protocol state.
MUTATORS = frozenset({
    "activate", "apply_write", "mark_unreadable", "clear_unreadable",
    "install", "log_session",
})

#: Attribute stores that ARE shared protocol state.
STATE_STORE_ATTRS = frozenset({"actual_session", "unreadable"})


def _is_state_read(node: ast.expr) -> bool:
    """Attribute chain reading session/unreadable state."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Attribute):
            continue
        if sub.attr in ("actual_session", "unreadable"):
            return True
        if sub.attr == "current" and isinstance(sub.value, ast.Attribute) \
                and sub.value.attr == "sessions":
            return True
    return False


def _names(node: ast.expr) -> set[str]:
    return {sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)}


class _CoroutineScan:
    """One generator function: linear source-order taint walk."""

    def __init__(self) -> None:
        self.yields = 0
        #: local name -> yield count at its last state-read assignment.
        self.taint: dict[str, int] = {}
        self.flagged: list[tuple[ast.AST, str]] = []

    # -- expressions ---------------------------------------------------------

    def expr(self, node: ast.expr | None) -> None:
        if node is None:
            return
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                self.yields += 1
            elif isinstance(sub, ast.Call):
                self._check_call(sub)
            elif isinstance(sub, (ast.Lambda, ast.FunctionDef)):
                pass  # nested scopes keep their own discipline

    def _check_call(self, call: ast.Call) -> None:
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name not in MUTATORS:
            return
        args = list(call.args) + [kw.value for kw in call.keywords]
        for arg in args:
            stale = self._stale_names(arg)
            if stale:
                self.flagged.append((call, f"{name}({', '.join(stale)})"))
                return

    def _stale_names(self, node: ast.expr) -> list[str]:
        return sorted(
            name for name in _names(node)
            if name in self.taint and self.taint[name] < self.yields
        )

    # -- statements ----------------------------------------------------------

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            self.expr(node.value)
            self._assign(node.targets, node.value)
        elif isinstance(node, ast.AnnAssign):
            self.expr(node.value)
            if node.value is not None:
                self._assign([node.target], node.value)
        elif isinstance(node, ast.AugAssign):
            self.expr(node.value)
            self._store_check(node.target, node.value)
            if isinstance(node.target, ast.Name):
                self.taint.pop(node.target.id, None)
        elif isinstance(node, (ast.Expr, ast.Return)):
            self.expr(node.value)
        elif isinstance(node, ast.If):
            self.expr(node.test)
            self.block(node.body)
            self.block(node.orelse)
        elif isinstance(node, (ast.While,)):
            self.expr(node.test)
            self.block(node.body)
            self.block(node.orelse)
        elif isinstance(node, ast.For):
            self.expr(node.iter)
            if isinstance(node.target, ast.Name):
                self.taint.pop(node.target.id, None)
            self.block(node.body)
            self.block(node.orelse)
        elif isinstance(node, ast.Try):
            self.block(node.body)
            for handler in node.handlers:
                self.block(handler.body)
            self.block(node.orelse)
            self.block(node.finalbody)
        elif isinstance(node, ast.With):
            for item in node.items:
                self.expr(item.context_expr)
            self.block(node.body)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # nested scopes keep their own discipline
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.expr(child)

    def _assign(
        self, targets: typing.Sequence[ast.expr], value: ast.expr
    ) -> None:
        for target in targets:
            self._store_check(target, value)
            if isinstance(target, ast.Name):
                if _is_state_read(value):
                    self.taint[target.id] = self.yields
                else:
                    # Any other reassignment is the revalidation point.
                    self.taint.pop(target.id, None)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        self.taint.pop(element.id, None)

    def _store_check(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Attribute) and target.attr in STATE_STORE_ATTRS:
            stale = self._stale_names(value)
            if stale:
                self.flagged.append(
                    (target, f"store to .{target.attr} of {', '.join(stale)}")
                )

    def block(self, body: typing.Sequence[ast.stmt]) -> None:
        for node in body:
            self.stmt(node)


def _is_generator(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)) and node is not func:
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


@register
class StaleYieldRule(Rule):
    id = "REP007"
    title = "protocol state mutated after a yield from a stale pre-yield read"
    scope = PROTOCOL

    def check(self, ctx: FileContext) -> typing.Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef) or not _is_generator(node):
                continue
            scan = _CoroutineScan()
            scan.block(node.body)
            for anchor, what in scan.flagged:
                yield self.finding(
                    ctx,
                    anchor,
                    f"{what} uses a session/unreadable read taken before a "
                    "yield; the site's state may have changed while "
                    "suspended — re-read it after resuming (REP007)",
                )

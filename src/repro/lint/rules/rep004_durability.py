"""REP004 — durable-state writes bypassing the StableStorage/WAL API.

Crash semantics in this reproduction are modeled, not real: "stable"
means a :class:`~repro.storage.stable.StableStorage` blob (which
survives ``Site.crash()`` and is byte-accounted), "volatile" means a
plain attribute (wiped on crash). Direct file I/O from simulation-layer
code would create state with *neither* semantic — it would survive
crashes the model says destroy it, dodge the WAL's LSN ordering and the
serialize-boundary byte accounting, and make the crash-replay
determinism gate meaningless.

The harness/obs/audit/cli layers sit outside the simulated machines
and legitimately write artifacts (traces, tables, alert streams), so
they are outside this rule's scope.
"""

from __future__ import annotations

import ast
import typing

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules._scopes import DURABLE

#: os.* calls that create/destroy/rename real filesystem state.
_OS_MUTATORS = frozenset(
    {
        "open",
        "remove",
        "unlink",
        "rename",
        "replace",
        "rmdir",
        "removedirs",
        "mkdir",
        "makedirs",
        "truncate",
        "write",
    }
)

#: pathlib-style mutating methods flagged on any receiver.
_PATH_MUTATORS = frozenset({"write_text", "write_bytes"})


@register
class DurabilityBypassRule(Rule):
    id = "REP004"
    title = "durable-state write bypassing the StableStorage/WAL API"
    scope = DURABLE

    def check(self, ctx: FileContext) -> typing.Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                yield self.finding(
                    ctx,
                    node,
                    "direct file I/O in simulation-layer code; durable "
                    "state must go through StableStorage.put / the WAL",
                )
            elif isinstance(func, ast.Attribute):
                receiver = func.value
                receiver_name = receiver.id if isinstance(receiver, ast.Name) else ""
                if receiver_name in {"os", "shutil", "tempfile"} and (
                    receiver_name != "os" or func.attr in _OS_MUTATORS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{receiver_name}.{func.attr}() touches the real "
                        "filesystem from simulation-layer code; durable "
                        "state must go through StableStorage / the WAL",
                    )
                elif receiver_name == "io" and func.attr == "open":
                    yield self.finding(
                        ctx,
                        node,
                        "io.open() in simulation-layer code; durable state "
                        "must go through StableStorage / the WAL",
                    )
                elif func.attr in _PATH_MUTATORS:
                    yield self.finding(
                        ctx,
                        node,
                        f".{func.attr}() writes a real file from "
                        "simulation-layer code; durable state must go "
                        "through StableStorage / the WAL",
                    )

"""REP006 (advisory) — missing ``__slots__`` on hot-path kernel classes.

The kernel's inner loop allocates futures, timeouts, and callbacks by
the hundred-thousand per run; PR 1's fast path slotted them and the
perf trajectory (BENCH_kernel.json) banks on it. A new class in the
hot-path modules without ``__slots__`` quietly reintroduces a
per-instance ``__dict__`` — correct, but a measurable throughput
regression the microbench may take a while to localize.

Advisory severity: ``__slots__`` is a performance convention, not a
correctness invariant, so this never fails the gate by itself.
"""

from __future__ import annotations

import ast
import typing

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register
from repro.lint.rules._scopes import HOT_PATH_FILES


def _has_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


@register
class MissingSlotsRule(Rule):
    id = "REP006"
    title = "hot-path kernel class without __slots__ (advisory)"
    severity = Severity.ADVICE
    scope = HOT_PATH_FILES

    def check(self, ctx: FileContext) -> typing.Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and not _has_slots(node):
                yield self.finding(
                    ctx,
                    node,
                    f"class {node.name} in a kernel hot-path module has no "
                    "__slots__; instances pay a __dict__ on the inner loop",
                )

"""REP005 — float equality in protocol decisions.

Virtual time, latencies, and session timestamps are floats. An
``==``/``!=`` against a float computation is a protocol decision that
can flip on the last ulp of an unrelated refactor (operation reordering
changes rounding), turning a deterministic run into a
seed-dependent heisenbug. Flagged: equality comparisons where an
operand is a float literal, a true division, or a ``float(...)`` call.

Compare times with ``<``/``<=`` windows, compare counters as ints, or
use an explicit tolerance. Exact-propagation cases (a sentinel float
stored and compared unchanged) do exist — suppress those lines with a
justification comment.
"""

from __future__ import annotations

import ast
import typing

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_DECISION_SCOPE = (
    "repro/sim",
    "repro/net",
    "repro/txn",
    "repro/wal",
    "repro/core",
    "repro/site",
    "repro/storage",
)


def _is_floatish(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    return False


@register
class FloatEqualityRule(Rule):
    id = "REP005"
    title = "float equality comparison in a protocol decision"
    scope = _DECISION_SCOPE

    def check(self, ctx: FileContext) -> typing.Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(_is_floatish(operand) for operand in operands):
                yield self.finding(
                    ctx,
                    node,
                    "float equality can flip on rounding; compare with a "
                    "tolerance, an ordering, or integer quantities",
                )

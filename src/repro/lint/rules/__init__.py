"""Rule implementations; importing this package registers them all."""

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    rep001_determinism,
    rep002_ordering,
    rep003_isolation,
    rep004_durability,
    rep005_floateq,
    rep006_slots,
    rep007_stale_yield,
)

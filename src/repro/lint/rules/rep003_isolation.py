"""REP003 — cross-site reach-through in protocol code.

A simulated site models a failure-isolated machine: the only way its
TM/DM/copier may observe or mutate another site's state is a message
through :mod:`repro.net` (which models latency, loss, and down sites).
Grabbing a peer's ``Site`` object via ``cluster.sites[...]`` or
``cluster.site(...)`` and poking its storage directly would bypass the
session-number validation and the crash model entirely — the protocol
would "work" in simulation while being unimplementable on real
machines.

Sanctioned exceptions, excluded by scope rather than flagged:

* ``repro/core/system.py`` — the scenario/system driver (cold start,
  crash/restart orchestration, whole-cluster fingerprints); it *is*
  the test harness's hand on the world, not protocol logic.
* ``repro.site.cluster`` — owns the site map by definition.
* ``repro.audit`` / ``repro.obs`` — declared read-only hooks, outside
  this rule's protocol scope.

Reads of cluster-level *status* (``cluster.site_ids``,
``cluster.detector(...)``) are allowed: they model the globally known
configuration and each site's local failure detector, per the paper.
"""

from __future__ import annotations

import ast
import typing

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules._scopes import PROTOCOL


def _mentions_cluster(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "cluster"
    if isinstance(node, ast.Attribute):
        return node.attr == "cluster"
    return False


@register
class CrossSiteReachThroughRule(Rule):
    id = "REP003"
    title = "protocol code reaching through to another site's state"
    scope = PROTOCOL
    exclude = ("repro/core/system.py",)

    def check(self, ctx: FileContext) -> typing.Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr == "sites":
                yield self.finding(
                    ctx,
                    node,
                    "access to the cluster site map from protocol code; "
                    "remote state may only be reached via the net RPC "
                    "layer (rpc.call/broadcast)",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "site"
                and _mentions_cluster(node.func.value)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "cluster.site(...) hands out another site's live "
                    "object; protocol code must go through the net RPC "
                    "layer instead",
                )

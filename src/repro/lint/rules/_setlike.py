"""Lightweight set-likeness inference shared by REP002.

Purely syntactic + local-flow: an expression is *set-like* when it is a
set display/comprehension, a ``set()``/``frozenset()`` call, a set
operator over set-like operands, a set-producing method call on a
set-like receiver, or a name/attribute whose every visible binding in
the enclosing scope is set-like (assignments in textual order, ``set``
annotations on variables, parameters, and ``self.*`` attributes).

This is deliberately conservative in both directions: a name assigned
both set-like and non-set-like values is treated as *not* set-like (no
false positives from ambiguous flow), and values smuggled through
containers or returned from helpers are invisible (acceptable misses —
the dynamic auditor still covers the runtime behaviour).
"""

from __future__ import annotations

import ast

#: Methods on a set that yield another set.
SET_PRODUCING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Builtins whose result does not depend on argument iteration order.
ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "set", "frozenset", "sum", "min", "max", "any", "all", "len"}
)

#: Set method names whose *argument* order does not matter either.
ORDER_INSENSITIVE_METHODS = frozenset(
    {
        "update",
        "union",
        "intersection",
        "difference",
        "symmetric_difference",
        "intersection_update",
        "difference_update",
        "symmetric_difference_update",
        "issubset",
        "issuperset",
        "isdisjoint",
    }
)

_TYPING_SET_NAMES = frozenset({"Set", "FrozenSet", "AbstractSet", "MutableSet"})


def annotation_is_set(node: ast.expr | None) -> bool:
    """Whether a type annotation denotes a set/frozenset."""
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in {"set", "frozenset"} or node.id in _TYPING_SET_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _TYPING_SET_NAMES
    if isinstance(node, ast.Subscript):
        return annotation_is_set(node.value)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # Optional[set[...]] spelled as ``set[X] | None``: iterating it
        # (after a None check) is still hash-ordered.
        return annotation_is_set(node.left) or annotation_is_set(node.right)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return text.startswith(("set[", "frozenset[", "set ", "frozenset "))
    return False


class Env:
    """Name → set-likeness for one analysis scope."""

    def __init__(self, attrs: dict[str, bool] | None = None) -> None:
        #: Local variable / parameter states. True = set-like,
        #: False = known non-set-like (or ambiguous).
        self.names: dict[str, bool] = {}
        #: ``self.<attr>`` states, shared across a class's methods.
        self.attrs: dict[str, bool] = attrs if attrs is not None else {}

    def lookup(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return self.names.get(node.id, False)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return self.attrs.get(node.attr, False)
        return False


def expr_is_setlike(node: ast.expr, env: Env) -> bool:
    """Whether ``node`` evaluates to a set, as far as local flow shows."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in SET_PRODUCING_METHODS
            and expr_is_setlike(func.value, env)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return expr_is_setlike(node.left, env) or expr_is_setlike(node.right, env)
    if isinstance(node, ast.IfExp):
        return expr_is_setlike(node.body, env) or expr_is_setlike(node.orelse, env)
    if isinstance(node, ast.NamedExpr):
        return expr_is_setlike(node.value, env)
    return env.lookup(node)


def _record(state: dict[str, bool], key: str, setlike: bool) -> None:
    # A name is set-like only if every binding seen so far agrees.
    if key in state and state[key] != setlike:
        state[key] = False
    else:
        state[key] = setlike


def scan_scope_statements(
    statements: list[ast.stmt], env: Env, *, into_attrs: bool = False
) -> None:
    """Populate ``env`` from assignments in one scope, textual order.

    Does not descend into nested function/class definitions (separate
    scopes). With ``into_attrs`` the target map is ``env.attrs``
    (used when pre-scanning a class's methods for ``self.*`` state).
    """
    for stmt in statements:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Assign):
                setlike = expr_is_setlike(node.value, env)
                for target in node.targets:
                    _record_target(env, target, setlike, into_attrs)
            elif isinstance(node, ast.AnnAssign):
                setlike = annotation_is_set(node.annotation) or (
                    node.value is not None and expr_is_setlike(node.value, env)
                )
                _record_target(env, node.target, setlike, into_attrs)


def _record_target(
    env: Env, target: ast.expr, setlike: bool, into_attrs: bool
) -> None:
    if isinstance(target, ast.Name) and not into_attrs:
        _record(env.names, target.id, setlike)
    elif (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        _record(env.attrs, target.attr, setlike)


def env_for_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef, attrs: dict[str, bool]
) -> Env:
    """Build the analysis environment for one function body."""
    env = Env(attrs=attrs)
    args = func.args
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *( [args.vararg] if args.vararg else [] ),
        *( [args.kwarg] if args.kwarg else [] ),
    ]:
        if annotation_is_set(arg.annotation):
            env.names[arg.arg] = True
    scan_scope_statements(func.body, env)
    return env


def class_attr_env(cls: ast.ClassDef) -> dict[str, bool]:
    """``self.<attr>`` set-likeness aggregated over all of a class's methods."""
    env = Env(attrs={})
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method_env = Env(attrs=env.attrs)
            # Parameters participate so ``self._x = some_set_param`` works.
            for arg in stmt.args.args:
                if annotation_is_set(arg.annotation):
                    method_env.names[arg.arg] = True
            scan_scope_statements(stmt.body, method_env)
    return env.attrs

"""REP001 — nondeterminism sources outside RngRegistry / virtual time.

Every run of a scenario must be a pure function of its seed: the
``repro.wal.determinism`` CI gate replays a traced recovery twice and
requires byte-identical durable state, and every experiment table is
reproduced from ``--seed``. Two things break that silently:

* randomness not drawn from a named
  :class:`~repro.sim.rng.RngRegistry` stream (module-level ``random.*``
  functions share one hidden global state; ``os.urandom``/``uuid`` are
  nondeterministic by design). Constructing an explicitly seeded
  ``random.Random(seed)`` is allowed — that is exactly what the
  registry hands out.
* wall-clock reads inside simulated time (``time.time()``,
  ``datetime.now()``, …): the kernel's virtual clock is the only clock
  protocol code may observe. The harness/obs/cli layers legitimately
  time walls and stamp artifacts, so the wall-clock check is scoped to
  the SIM_TIME packages.
"""

from __future__ import annotations

import ast
import typing

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules._scopes import SIM_TIME

_WALL_CLOCK_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)
_DATETIME_FACTORIES = frozenset({"now", "utcnow", "today", "fromtimestamp"})
_DATETIME_RECEIVERS = frozenset({"datetime", "date"})


@register
class NondeterminismRule(Rule):
    id = "REP001"
    title = "randomness or wall-clock reads outside RngRegistry/virtual time"
    # The registry itself wraps random.Random; latency models and
    # workload generators *receive* seeded streams and only name the
    # random.Random type in annotations, which is allowed anyway.
    exclude = ("repro/sim/rng.py",)

    def check(self, ctx: FileContext) -> typing.Iterator[Finding]:
        random_aliases: set[str] = set()
        time_aliases: set[str] = set()
        bare_clock_names: set[str] = set()
        in_sim_time = ctx.in_scope(SIM_TIME)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
                    elif alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name != "Random":
                            yield self.finding(
                                ctx,
                                node,
                                f"'from random import {alias.name}' uses the "
                                "hidden global RNG; draw from a named "
                                "RngRegistry stream instead",
                            )
                elif node.module == "time" and in_sim_time:
                    for alias in node.names:
                        if alias.name in _WALL_CLOCK_TIME_FUNCS:
                            bare_clock_names.add(alias.asname or alias.name)
                            yield self.finding(
                                ctx,
                                node,
                                f"'from time import {alias.name}' reads the "
                                "wall clock inside simulated time; use "
                                "kernel.now",
                            )

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                if (
                    in_sim_time
                    and isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in bare_clock_names
                ):
                    yield self.finding(
                        ctx, node, "wall-clock read inside simulated time; "
                        "use kernel.now"
                    )
                continue
            value = node.value
            if isinstance(value, ast.Name):
                if value.id in random_aliases and node.attr != "Random":
                    yield self.finding(
                        ctx,
                        node,
                        f"random.{node.attr} uses the hidden global RNG; "
                        "draw from a named RngRegistry stream "
                        "(kernel.rng.stream(...)) instead",
                    )
                elif (
                    in_sim_time
                    and value.id in time_aliases
                    and node.attr in _WALL_CLOCK_TIME_FUNCS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"time.{node.attr}() reads the wall clock inside "
                        "simulated time; use kernel.now",
                    )
                elif value.id == "os" and node.attr == "urandom":
                    yield self.finding(
                        ctx, node, "os.urandom is nondeterministic; use an "
                        "RngRegistry stream"
                    )
                elif value.id == "uuid" and node.attr in {"uuid1", "uuid4"}:
                    yield self.finding(
                        ctx,
                        node,
                        f"uuid.{node.attr} is nondeterministic; derive ids "
                        "from seeded counters or RngRegistry streams",
                    )
                elif (
                    in_sim_time
                    and value.id in _DATETIME_RECEIVERS
                    and node.attr in _DATETIME_FACTORIES
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{value.id}.{node.attr}() reads the wall clock "
                        "inside simulated time; use kernel.now",
                    )
            elif (
                in_sim_time
                and isinstance(value, ast.Attribute)
                and value.attr in _DATETIME_RECEIVERS
                and node.attr in _DATETIME_FACTORIES
            ):
                # datetime.datetime.now(), datetime.date.today()
                yield self.finding(
                    ctx,
                    node,
                    f"{value.attr}.{node.attr}() reads the wall clock inside "
                    "simulated time; use kernel.now",
                )

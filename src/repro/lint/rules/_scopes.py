"""Shared path scopes for the rule set.

Paths are relative to the lint root (``src/``), so entries read
``repro/<package>``. The groupings mirror the architecture layers in
DESIGN.md §4:

* ``SIM_TIME`` — code that runs *inside* simulated time: everything a
  scenario executes between ``kernel.run()`` entering and returning.
  Wall-clock reads or hash-order iteration here is run-to-run
  nondeterminism, which breaks the ``repro.wal.determinism`` CI gate
  and seed-reproducibility of every experiment table.
* ``PROTOCOL`` — the replication protocol proper (session/ROWAA/copier
  machinery, TM/DM, baselines, workload drivers). These may touch a
  remote site's state only through the net RPC layer.
* ``DURABLE`` — layers where *all* durable state must flow through the
  StableStorage/WAL API (direct file I/O would dodge crash semantics
  and the byte-accounting model).
* ``HOT_PATH_FILES`` — kernel-inner-loop modules where per-instance
  ``__dict__`` costs measurable throughput (see BENCH_kernel.json).

The harness/obs/cli layers are deliberately outside SIM_TIME/DURABLE:
they run in real time around the simulation (timing walls, exporting
artifacts) and may legitimately read clocks and write files.
"""

from __future__ import annotations

SIM_TIME: tuple[str, ...] = (
    "repro/sim",
    "repro/net",
    "repro/txn",
    "repro/wal",
    "repro/core",
    "repro/site",
    "repro/storage",
    "repro/workload",
    "repro/baselines",
    "repro/histories",
    "repro/audit",
)

PROTOCOL: tuple[str, ...] = (
    "repro/core",
    "repro/txn",
    "repro/baselines",
    "repro/workload",
)

DURABLE: tuple[str, ...] = (
    "repro/sim",
    "repro/net",
    "repro/txn",
    "repro/wal",
    "repro/core",
    "repro/site",
    "repro/storage",
    "repro/workload",
    "repro/baselines",
    "repro/histories",
)

HOT_PATH_FILES: tuple[str, ...] = (
    "repro/net/rpc.py",
    "repro/sim/events.py",
    "repro/sim/kernel.py",
    "repro/sim/process.py",
    "repro/sim/queue.py",
)

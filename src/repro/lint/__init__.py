"""replint — AST-based static analysis for the reproduction's invariants.

The protocol's correctness rests on properties the interpreter cannot
check: runs must be deterministic under a seed, all randomness must flow
through :class:`~repro.sim.rng.RngRegistry`, simulated sites may touch
remote state only through the network layer, and durable state must go
through the :class:`~repro.storage.stable.StableStorage`/WAL API. The
online auditor (:mod:`repro.audit`) verifies these dynamically, per run;
replint verifies them statically, over *all* code paths, at PR time.

Pieces:

* :mod:`repro.lint.engine` — file walker + per-file analysis driver.
* :mod:`repro.lint.registry` — the rule base class and rule registry.
* :mod:`repro.lint.rules` — the REP001–REP006 rule implementations.
* :mod:`repro.lint.suppress` — ``# replint: disable=RULE`` comments.
* :mod:`repro.lint.baseline` — grandfathering of pre-existing findings.
* :mod:`repro.lint.report` — human-readable and JSON reporters.
* :mod:`repro.lint.cli` — the ``repro lint`` subcommand.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalog and workflow.
"""

from repro.lint.engine import LintEngine, lint_paths
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules, get_rule, rule_ids

__all__ = [
    "Finding",
    "LintEngine",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "lint_paths",
    "rule_ids",
]

"""The ``repro lint`` subcommand.

Usage (mirrors the trace/metrics/audit exit-code contract)::

    python -m repro lint                      # lint src/repro, human report
    python -m repro lint --json [--out f.json]
    python -m repro lint --path src/repro/core --rules REP001,REP002
    python -m repro lint --update-baseline    # grandfather current findings
    python -m repro lint --changed            # only files differing from HEAD
    python -m repro lint --changed=origin/main

Exit status: 0 clean (or baseline-only), 1 on any new error-severity
finding, 2 on a usage error (unknown rule id — including inside a
suppression directive — bad path, malformed baseline file, git failure
under ``--changed``).

``--changed [REF]`` intersects the lint targets with the files that
differ from the git ref (default ``HEAD``), plus untracked files — the
fast pre-commit loop. The exit-code contract and the ``--json`` schema
are unchanged; an empty intersection lints nothing and exits 0.
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys

from repro.lint import baseline as baseline_mod
from repro.lint.engine import LintEngine, LintUsageError
from repro.lint.findings import Severity
from repro.lint.registry import get_rule, rule_ids
from repro.lint.report import render_human, render_json

#: Default lint root and target: the package sources.
_DEFAULT_ROOT = pathlib.Path(__file__).resolve().parents[2]  # .../src
_DEFAULT_BASELINE = "replint_baseline.json"


class ChangedFilesError(Exception):
    """git could not produce the changed-file list (usage error)."""


def changed_files(
    ref: str, cwd: pathlib.Path | None = None
) -> list[pathlib.Path]:
    """Absolute paths of files differing from ``ref``, plus untracked.

    Raises :exc:`ChangedFilesError` when ``cwd`` is not inside a git
    work tree or the ref does not resolve.
    """
    def _git(*argv: str) -> str:
        try:
            proc = subprocess.run(
                ["git", *argv], cwd=cwd, capture_output=True, text=True,
            )
        except OSError as exc:
            raise ChangedFilesError(f"cannot run git: {exc}") from exc
        if proc.returncode != 0:
            detail = proc.stderr.strip().splitlines()
            raise ChangedFilesError(
                f"git {' '.join(argv)} failed: "
                f"{detail[0] if detail else proc.returncode}"
            )
        return proc.stdout
    top = pathlib.Path(_git("rev-parse", "--show-toplevel").strip())
    names = _git("diff", "--name-only", ref).splitlines()
    names += _git("ls-files", "--others", "--exclude-standard").splitlines()
    return sorted({top / name for name in names if name})


def restrict_to_changed(
    paths: list[pathlib.Path], changed: list[pathlib.Path]
) -> list[pathlib.Path]:
    """The changed ``.py`` files that fall under one of ``paths``."""
    roots = [p.resolve() for p in paths]
    selected = []
    for candidate in changed:
        if candidate.suffix != ".py" or not candidate.is_file():
            continue
        resolved = candidate.resolve()
        if any(resolved == root or root in resolved.parents for root in roots):
            selected.append(candidate)
    return selected


def run_lint(args: argparse.Namespace) -> int:
    """Entry point called from :func:`repro.cli.main`."""
    root = _DEFAULT_ROOT
    if args.path:
        paths = [pathlib.Path(p) for p in args.path]
    else:
        paths = [root / "repro"]

    if getattr(args, "changed", None) is not None:
        try:
            changed = changed_files(args.changed)
        except ChangedFilesError as exc:
            print(f"lint: --changed: {exc}", file=sys.stderr)
            return 2
        # Lint the (possibly empty) intersection: the report/stats shape
        # and the exit-code contract stay exactly as without --changed.
        paths = restrict_to_changed(paths, changed)

    try:
        rules = None
        if args.rules:
            wanted = [part.strip() for part in args.rules.split(",") if part.strip()]
            rules = [get_rule(rule_id) for rule_id in wanted]
    except KeyError as exc:
        print(
            f"lint: unknown rule {exc.args[0]!r}; known: {', '.join(rule_ids())}",
            file=sys.stderr,
        )
        return 2

    baseline_path = pathlib.Path(args.baseline or _DEFAULT_BASELINE)
    engine = LintEngine(root, rules=rules)
    try:
        findings, stats = engine.lint(paths)
    except (LintUsageError, SyntaxError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    unknown = stats["unknown_suppressions"]
    if unknown:
        for problem in unknown:  # type: ignore[union-attr]
            print(f"lint: {problem}", file=sys.stderr)
        return 2

    if args.update_baseline:
        count = baseline_mod.save(baseline_path, findings)
        print(
            f"lint: baselined {len(findings)} finding(s) "
            f"({count} distinct entries) into {baseline_path}"
        )
        return 0

    try:
        known = baseline_mod.load(baseline_path)
    except baseline_mod.BaselineError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    new, grandfathered = baseline_mod.partition(findings, known)

    report = (
        render_json(new, grandfathered, stats)
        if args.json
        else render_human(new, grandfathered, stats)
    )
    if args.out:
        pathlib.Path(args.out).write_text(report + "\n", encoding="utf-8")
        print(f"lint: wrote report to {args.out}")
    else:
        print(report)

    has_new_errors = any(f.severity is Severity.ERROR for f in new)
    if has_new_errors:
        n_errors = sum(1 for f in new if f.severity is Severity.ERROR)
        print(
            f"lint: {n_errors} new error finding(s)  << VIOLATION",
            file=sys.stderr,
        )
        return 1
    return 0

"""Rule base class and the global rule registry.

A rule is a class with a unique ``id`` (``REPnnn``), a one-line
``title`` (pinned to the docs catalog by a drift test), a path
``scope`` restricting where it applies, and a ``check`` method that
yields findings for one file. Registration happens at import time via
the :func:`register` decorator; :mod:`repro.lint.rules` imports every
rule module for its side effect.
"""

from __future__ import annotations

import re
import typing

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity

_RULE_ID = re.compile(r"^REP\d{3}$")


class Rule:
    """Base class for replint rules."""

    #: Unique rule identifier, e.g. ``"REP001"``.
    id: str = ""
    #: One-line summary shown in reports and the docs catalog.
    title: str = ""
    #: Severity of every finding this rule emits.
    severity: Severity = Severity.ERROR
    #: Root-relative path prefixes the rule applies to. ``()`` = everywhere.
    scope: tuple[str, ...] = ()
    #: Root-relative paths exempted from the rule (trusted implementations,
    #: e.g. the RngRegistry itself for REP001).
    exclude: tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule should run on ``ctx``'s file at all."""
        if self.exclude and ctx.in_scope(self.exclude):
            return False
        if not self.scope:
            return True
        return ctx.in_scope(self.scope)

    def check(self, ctx: FileContext) -> typing.Iterator[Finding]:
        """Yield findings for one file. Subclasses must override."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for typing

    def finding(
        self, ctx: FileContext, node: object, message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` (any AST node)."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.rel,
            line=line,
            col=col + 1,  # 1-based columns, like every other linter
            message=message,
            snippet=ctx.line_text(line).strip(),
        )


_REGISTRY: dict[str, Rule] = {}

_RuleT = typing.TypeVar("_RuleT", bound=type)


def register(cls: _RuleT) -> _RuleT:
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()  # type: ignore[operator]
    if not _RULE_ID.match(rule.id):
        raise ValueError(f"invalid rule id {rule.id!r} on {cls.__name__}")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    if not rule.title:
        raise ValueError(f"rule {rule.id} has no title")
    _REGISTRY[rule.id] = rule
    return cls


def _ensure_loaded() -> None:
    # Imported lazily to avoid a registry<->rules import cycle.
    import repro.lint.rules  # noqa: F401


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    _ensure_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    """Sorted registered rule ids."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    """Look up one rule; raises KeyError for unknown ids."""
    _ensure_loaded()
    return _REGISTRY[rule_id]

"""Per-file analysis context shared by all rules.

One :class:`FileContext` is built per linted file: the parsed AST, the
source lines, a child→parent node map (rules use it to ask "is this
comprehension feeding ``sorted()``?"), and the root-relative POSIX path
that rule scopes match against.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib


@dataclasses.dataclass
class FileContext:
    """Everything a rule needs to analyse one file."""

    path: pathlib.Path
    rel: str  # POSIX path relative to the lint root, e.g. "repro/core/rowaa.py"
    source: str
    tree: ast.Module
    lines: list[str]
    _parents: dict[int, ast.AST] = dataclasses.field(default_factory=dict)

    @classmethod
    def build(cls, root: pathlib.Path, path: pathlib.Path) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        rel = path.relative_to(root).as_posix()
        ctx = cls(
            path=path,
            rel=rel,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                ctx._parents[id(child)] = parent
        return ctx

    # -- navigation ---------------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node``, or None for the module."""
        return self._parents.get(id(node))

    def line_text(self, lineno: int) -> str:
        """Source text of 1-based ``lineno`` (empty if out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    # -- scope matching -----------------------------------------------------

    def in_scope(self, prefixes: tuple[str, ...]) -> bool:
        """True when this file lives under any of the given prefixes.

        A prefix is either a package directory ("repro/core") or an
        exact file ("repro/core/system.py"), relative to the lint root.
        """
        for prefix in prefixes:
            if self.rel == prefix or self.rel.startswith(prefix.rstrip("/") + "/"):
                return True
        return False

"""Human-readable and JSON renderings of a lint run."""

from __future__ import annotations

import collections
import json

from repro.lint.findings import Finding, Severity
from repro.lint.registry import all_rules


def render_human(
    new: list[Finding],
    baselined: list[Finding],
    stats: dict[str, object],
) -> str:
    """The terminal report: findings, then a one-paragraph summary."""
    lines: list[str] = []
    for finding in new:
        lines.append(finding.render())
    if new:
        lines.append("")
    by_rule = collections.Counter(f.rule for f in new)
    rule_part = ", ".join(f"{rule}×{count}" for rule, count in sorted(by_rule.items()))
    errors = sum(1 for f in new if f.severity is Severity.ERROR)
    advice = len(new) - errors
    lines.append(
        f"replint: {stats['files']} files, {errors} error(s), "
        f"{advice} advisory, {len(baselined)} baselined, "
        f"{stats['suppressed']} suppressed"
        + (f"  [{rule_part}]" if rule_part else "")
    )
    return "\n".join(lines)


def render_json(
    new: list[Finding],
    baselined: list[Finding],
    stats: dict[str, object],
) -> str:
    """The ``--json`` report (schema documented in STATIC_ANALYSIS.md).

    ``findings`` holds only non-baselined findings — the ones that
    drive the exit code; grandfathered ones appear as a count, keeping
    CI output focused on what a PR introduced.
    """
    errors = sum(1 for f in new if f.severity is Severity.ERROR)
    payload = {
        "version": 1,
        "rules": {rule.id: rule.title for rule in all_rules()},
        "counts": {
            "files": stats["files"],
            "errors": errors,
            "advice": len(new) - errors,
            "baselined": len(baselined),
            "suppressed": stats["suppressed"],
        },
        "findings": [finding.to_json() for finding in new],
    }
    return json.dumps(payload, indent=2)

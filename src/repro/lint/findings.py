"""The finding record produced by every replint rule."""

from __future__ import annotations

import dataclasses
import enum
import hashlib


class Severity(enum.Enum):
    """How a finding affects the exit code.

    ``ERROR`` findings fail the gate (exit 1) unless baselined or
    suppressed; ``ADVICE`` findings are reported and baselineable but
    never fail the gate on their own (REP006 is advisory: ``__slots__``
    is a perf nicety, not a correctness invariant).
    """

    ERROR = "error"
    ADVICE = "advice"


@dataclasses.dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the file's path relative to the lint root, in POSIX
    form, so findings (and the baseline file) are stable across
    machines and operating systems.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    @property
    def baseline_key(self) -> str:
        """Identity used for grandfathering.

        Keyed on the *content* of the offending line (hashed), not its
        number, so unrelated edits that shift lines do not un-baseline
        old findings — but any change to the flagged line itself makes
        the finding count as new.
        """
        digest = hashlib.sha256(self.snippet.strip().encode()).hexdigest()[:12]
        return f"{self.path}::{self.rule}::{digest}"

    def render(self) -> str:
        """One-line human-readable form (path:line:col style)."""
        tag = "" if self.severity is Severity.ERROR else " (advice)"
        return f"{self.path}:{self.line}:{self.col}: {self.rule}{tag} {self.message}"

    def to_json(self) -> dict:
        """JSON-serializable form (documented in STATIC_ANALYSIS.md)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

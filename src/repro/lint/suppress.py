"""Per-line and per-file suppression comments.

Two forms, mirroring the usual linter conventions:

* ``# replint: disable=REP001`` (or ``=REP001,REP004``) at the end of a
  line suppresses those rules on **that line only**. For a multi-line
  statement, put the comment on the line the finding is reported at
  (the first line of the offending expression).
* ``# replint: disable-file=REP003`` on a line of its own in the file
  header — before the first statement after the module docstring (or
  within the first 20 lines, whichever reaches further) — suppresses
  the rules for the whole file: the escape hatch for declared
  exceptions (e.g. a module that *is* the sanctioned implementation of
  an invariant). Keeping it in the header keeps waivers greppable and
  next to the docstring that should justify them.

Unknown rule ids inside a directive are reported by the engine as a
usage problem rather than silently ignored, so typos cannot quietly
disable nothing.
"""

from __future__ import annotations

import dataclasses
import re

_LINE = re.compile(r"#\s*replint:\s*disable=([A-Z0-9,\s]+?)\s*(?:#|$)")
_FILE = re.compile(r"#\s*replint:\s*disable-file=([A-Z0-9,\s]+?)\s*(?:#|$)")

#: File-level directives must appear in this many leading lines (the
#: engine extends the window past a long module docstring).
_FILE_DIRECTIVE_WINDOW = 20


@dataclasses.dataclass
class Suppressions:
    """Parsed suppression directives of one file."""

    by_line: dict[int, frozenset[str]]
    file_wide: frozenset[str]
    #: Rule ids referenced by directives (for unknown-id validation).
    referenced: frozenset[str]

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is disabled at ``line``."""
        if rule_id in self.file_wide:
            return True
        return rule_id in self.by_line.get(line, ())


def _split_ids(raw: str) -> list[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def scan(lines: list[str], header_end: int = 0) -> Suppressions:
    """Extract suppression directives from raw source lines.

    ``header_end`` is the last line still counting as the file header
    (the engine passes the first code statement's line, so a directive
    right under a long module docstring is honoured).
    """
    by_line: dict[int, frozenset[str]] = {}
    file_wide: set[str] = set()
    referenced: set[str] = set()
    window = max(_FILE_DIRECTIVE_WINDOW, header_end)
    for lineno, text in enumerate(lines, start=1):
        if "replint" not in text:
            continue
        match = _FILE.search(text)
        if match and lineno <= window:
            ids = _split_ids(match.group(1))
            file_wide.update(ids)
            referenced.update(ids)
            continue
        match = _LINE.search(text)
        if match:
            ids = _split_ids(match.group(1))
            by_line[lineno] = frozenset(ids)
            referenced.update(ids)
    return Suppressions(
        by_line=by_line,
        file_wide=frozenset(file_wide),
        referenced=frozenset(referenced),
    )

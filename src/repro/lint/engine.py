"""The replint analysis driver.

Walks the requested paths, parses each ``.py`` file once, runs every
in-scope rule over the shared :class:`~repro.lint.context.FileContext`,
then filters the raw findings through suppression comments. Baseline
filtering is the caller's business (:mod:`repro.lint.cli`), so library
users (tests, the baseline gate) always see the full picture.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import typing

from repro.lint import suppress
from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules


class LintUsageError(ValueError):
    """Bad invocation (unknown rule, missing path): exit code 2."""


@dataclasses.dataclass
class FileResult:
    """Per-file outcome: kept findings plus suppression accounting."""

    rel: str
    findings: list[Finding]
    suppressed: int
    unknown_suppressions: list[str]


def iter_python_files(paths: typing.Sequence[pathlib.Path]) -> list[pathlib.Path]:
    """All ``.py`` files under ``paths`` (files or directories), sorted."""
    seen: dict[pathlib.Path, None] = {}
    for path in paths:
        if not path.exists():
            raise LintUsageError(f"no such path: {path}")
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                seen[child.resolve()] = None
        elif path.suffix == ".py":
            seen[path.resolve()] = None
        else:
            raise LintUsageError(f"not a python file: {path}")
    return list(seen)


def _header_end(tree: ast.Module) -> int:
    """Line of the first statement after the module docstring.

    File-level suppression directives are honoured up to here (or the
    fixed 20-line window if that is larger), so a waiver can sit right
    under an arbitrarily long module docstring.
    """
    body = tree.body
    start = 0
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        start = 1
    if len(body) > start:
        return body[start].lineno
    return 0


class LintEngine:
    """Run a rule set over files rooted at ``root``.

    ``root`` anchors the relative paths that rule scopes, reports, and
    baseline keys use — for this repository it is ``src/`` (so paths
    read ``repro/core/rowaa.py``).
    """

    def __init__(
        self, root: pathlib.Path, rules: typing.Sequence[Rule] | None = None
    ) -> None:
        self.root = root.resolve()
        self.rules: list[Rule] = list(rules) if rules is not None else all_rules()

    def lint_file(self, path: pathlib.Path) -> FileResult:
        """Analyse one file: parse, run rules, apply suppressions."""
        try:
            ctx = FileContext.build(self.root, path.resolve())
        except ValueError as exc:
            raise LintUsageError(
                f"{path} is outside the lint root {self.root}"
            ) from exc
        raw: list[Finding] = []
        for rule in self.rules:
            if rule.applies_to(ctx):
                raw.extend(rule.check(ctx))
        directives = suppress.scan(ctx.lines, header_end=_header_end(ctx.tree))
        known = {rule.id for rule in all_rules()}
        unknown = sorted(directives.referenced - known)
        kept: list[Finding] = []
        suppressed = 0
        for finding in sorted(raw, key=lambda f: (f.line, f.col, f.rule)):
            if directives.is_suppressed(finding.rule, finding.line):
                suppressed += 1
            else:
                kept.append(finding)
        return FileResult(
            rel=ctx.rel,
            findings=kept,
            suppressed=suppressed,
            unknown_suppressions=unknown,
        )

    def lint(
        self, paths: typing.Sequence[pathlib.Path]
    ) -> tuple[list[Finding], dict[str, object]]:
        """Analyse all files under ``paths``.

        Returns (findings, stats) where stats carries the file count,
        suppression count, and any unknown-rule suppression directives
        (a usage error surfaced by the CLI).
        """
        findings: list[Finding] = []
        suppressed = 0
        unknown: list[str] = []
        files = iter_python_files(paths)
        for path in files:
            result = self.lint_file(path)
            findings.extend(result.findings)
            suppressed += result.suppressed
            for rule_id in result.unknown_suppressions:
                unknown.append(f"{result.rel}: unknown rule {rule_id} in "
                               "replint directive")
        stats: dict[str, object] = {
            "files": len(files),
            "suppressed": suppressed,
            "unknown_suppressions": unknown,
        }
        return findings, stats


def lint_paths(
    root: pathlib.Path,
    paths: typing.Sequence[pathlib.Path],
    rules: typing.Sequence[Rule] | None = None,
) -> list[Finding]:
    """Convenience wrapper used by tests and the baseline gate."""
    engine = LintEngine(root, rules=rules)
    findings, _stats = engine.lint(paths)
    return findings

"""Grandfathering baseline: pre-existing findings that do not fail CI.

The baseline file maps :attr:`Finding.baseline_key` → count, so a rule
can be introduced before the codebase is clean: existing violations are
recorded once (``repro lint --update-baseline``) and only *new*
findings fail the gate. Keys hash the offending line's content, so the
baseline survives unrelated line-number churn but any edit to a flagged
line re-surfaces it.

The companion regression test (``tests/lint/test_baseline_gate.py``)
pins the entry count so the baseline can only shrink over time.
"""

from __future__ import annotations

import collections
import json
import pathlib

from repro.lint.findings import Finding

_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be parsed."""


def load(path: pathlib.Path) -> dict[str, int]:
    """Load a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return {}
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
        entries = raw["entries"]
        if not isinstance(entries, dict):
            raise TypeError("entries must be an object")
        return {str(key): int(count) for key, count in entries.items()}
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise BaselineError(f"malformed baseline file {path}: {exc}") from exc


def save(path: pathlib.Path, findings: list[Finding]) -> int:
    """Write the baseline covering ``findings``; returns the entry count."""
    counts = collections.Counter(finding.baseline_key for finding in findings)
    payload = {
        "version": _VERSION,
        "comment": (
            "Grandfathered replint findings (see docs/STATIC_ANALYSIS.md). "
            "This file may only shrink: tests/lint/test_baseline_gate.py "
            "pins its size."
        ),
        "entries": {key: counts[key] for key in sorted(counts)},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(counts)


def partition(
    findings: list[Finding], baseline: dict[str, int]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, grandfathered).

    A baseline entry with count N absorbs the first N findings sharing
    that key (several identical lines in one file hash identically);
    any excess is new.
    """
    remaining = dict(baseline)
    new: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        key = finding.baseline_key
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            old.append(finding)
        else:
            new.append(finding)
    return new, old

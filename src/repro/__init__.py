"""repro — reproduction of Bhargava & Ruan (1986) site recovery.

A complete replicated distributed database system with the paper's
session-number recovery protocol, built on a deterministic discrete-
event simulator. See README.md for the package map and DESIGN.md for
the paper-to-module correspondence.

The most common entry points are re-exported here::

    from repro import Kernel, RowaaSystem

    kernel = Kernel(seed=7)
    system = RowaaSystem(kernel, n_sites=3, items={"X": 0})
    system.boot()
"""

from repro.core.config import RowaaConfig
from repro.core.system import RowaaSystem
from repro.errors import ReproError, TransactionAborted
from repro.sim.kernel import Kernel
from repro.storage.catalog import Catalog
from repro.system import DatabaseSystem
from repro.txn.config import TxnConfig

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "DatabaseSystem",
    "Kernel",
    "ReproError",
    "RowaaConfig",
    "RowaaSystem",
    "TransactionAborted",
    "TxnConfig",
    "__version__",
]

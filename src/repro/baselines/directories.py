"""Directory-oriented available copies (Bernstein & Goodman [2]).

Each data item X has a *directory* DIR[X] — itself a replicated data
item — listing the sites whose copy of X is currently available. User
transactions read the local directory copy to interpret their logical
operations; directories are changed only by *status transactions*:
EXCLUDE removes a crashed site from one item's directory, INCLUDE brings
one recovered copy back (refreshing it from an available copy first).
Everything is synchronized by ordinary 2PL, which is how user
transactions get a consistent per-item view.

Contrast with the paper (its §1 discussion and our E2/E7):

* status is tracked per *item*, so a crash triggers one EXCLUDE per
  affected item and a recovery runs one INCLUDE per resident copy — the
  control traffic and the resume latency scale with the database size,
  versus O(#sites) nominal session numbers;
* the recovering site accepts user transactions only after *all* its
  INCLUDEs commit, versus immediately after the single type-1.

Simplifications vs the full [2] machinery (documented): directories are
fully replicated and status transactions write the copies at sites the
initiator's failure detector believes up; the INCLUDE pass also
refreshes the recovering site's directory copies.

This baseline is written as a centralized driver class that spawns the
per-site EXCLUDE/INCLUDE reactions *at* the owning site (``site.spawn``
ties them to that site's crash lifecycle) and reads only that site's
local copies — code organization, not protocol reach-through, hence the
file-level REP003 waiver below.
"""
# replint: disable-file=REP003

from __future__ import annotations

import dataclasses
import typing

from repro.errors import NetworkError, TotalFailure, TransactionAborted, TransactionError
from repro.txn.transaction import TxnKind

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.system import DatabaseSystem
    from repro.txn.context import TxnContext


def dir_item(item: str) -> str:
    """The directory item name for ``item``."""
    return f"DIR[{item}]"


def is_dir_item(item: str) -> bool:
    return item.startswith("DIR[") and item.endswith("]")


class DirectoryAvailableCopies:
    """User-transaction interpretation: consult DIR[X] for each item."""

    name = "directories"

    def begin(self, ctx: "TxnContext") -> typing.Generator:
        yield from ()

    def _members(self, ctx: "TxnContext", item: str) -> typing.Generator:
        home = ctx.tm.site_id
        value, _version = yield from ctx.dm_read(home, dir_item(item), expected=None)
        return tuple(value)  # type: ignore[arg-type]

    def read(self, ctx: "TxnContext", item: str) -> typing.Generator:
        members = yield from self._members(ctx, item)
        if not members:
            raise TotalFailure(item)
        home = ctx.tm.site_id
        ordered = sorted(members, key=lambda site: (site != home, site))
        last_error: Exception | None = None
        for site in ordered[: ctx.tm.config.max_read_attempts]:
            try:
                value, _version = yield from ctx.dm_read(site, item, expected=None)
                return value
            except (NetworkError, TransactionError) as exc:
                last_error = exc
        assert last_error is not None
        raise last_error

    def write(self, ctx: "TxnContext", item: str, value: object) -> typing.Generator:
        members = yield from self._members(ctx, item)
        if not members:
            raise TotalFailure(item)
        yield from ctx.dm_write_all([(site, None) for site in members], item, value)
        return None


@dataclasses.dataclass
class DirectoryRecoveryRecord:
    """Timeline of one directory-scheme recovery (E2 metrics)."""

    site_id: int
    power_on_at: float
    operational_at: float | None = None
    includes_committed: int = 0
    include_attempts: int = 0

    @property
    def time_to_operational(self) -> float | None:
        if self.operational_at is None:
            return None
        return self.operational_at - self.power_on_at


class DirectoryService:
    """Status transactions (EXCLUDE/INCLUDE) and recovery for one system."""

    def __init__(self, system: "DatabaseSystem", retry_delay: float = 10.0) -> None:
        self.system = system
        self.retry_delay = retry_delay
        self.exclude_committed = 0
        self.exclude_aborted = 0
        self.records: list[DirectoryRecoveryRecord] = []
        for site_id in system.cluster.site_ids:
            system.cluster.detector(site_id).on_down(
                lambda crashed, me=site_id: self._on_down(me, crashed)
            )

    # -- EXCLUDE ----------------------------------------------------------------

    def _on_down(self, observer: int, crashed: int) -> None:
        site = self.system.cluster.site(observer)
        if not site.is_operational:
            return
        for item in self.system.catalog.items_at(crashed):
            site.spawn(
                self._exclude_loop(observer, item, crashed),
                name=f"exclude:{item}:{crashed}",
            )

    def _exclude_loop(self, observer: int, item: str, crashed: int) -> typing.Generator:
        system = self.system
        site = system.cluster.site(observer)
        for _attempt in range(10):
            if not site.is_operational:
                return
            members = site.copies.get(dir_item(item)).value
            if crashed not in members:  # type: ignore[operator]
                return
            if system.cluster.detector(observer).believes_up(crashed):
                return  # recovered meanwhile
            program = self._exclude_program(observer, item, crashed)
            try:
                yield from system.tms[observer].run(program, kind=TxnKind.CONTROL)
                self.exclude_committed += 1
                return
            except TransactionAborted:
                self.exclude_aborted += 1
                yield system.kernel.timeout(self.retry_delay)

    def _exclude_program(self, home: int, item: str, crashed: int):
        system = self.system

        def program(ctx: "TxnContext") -> typing.Generator:
            value, _version = yield from ctx.dm_read(
                home, dir_item(item), privileged=True
            )
            members = tuple(value)  # type: ignore[arg-type]
            if crashed not in members:
                return False
            new_members = tuple(site for site in members if site != crashed)
            detector = system.cluster.detector(home)
            targets = [
                (site, None)
                for site in system.cluster.site_ids
                if detector.believes_up(site) and site != crashed
            ]
            yield from ctx.dm_write_all(
                targets, dir_item(item), new_members, privileged=True
            )
            return True

        return program

    # -- INCLUDE / recovery ---------------------------------------------------------

    def recover(self, site_id: int):
        """Power the site on and run the INCLUDE pass; returns the process."""
        system = self.system
        system.cluster.power_on_site(site_id)
        record = DirectoryRecoveryRecord(
            site_id=site_id, power_on_at=system.kernel.now
        )
        self.records.append(record)
        return system.cluster.site(site_id).spawn(
            self._recover_body(site_id, record), name="dir-recovery"
        )

    def _recover_body(
        self, site_id: int, record: DirectoryRecoveryRecord
    ) -> typing.Generator:
        system = self.system
        # One INCLUDE per resident item; each also refreshes the local
        # directory copy. Non-resident items' directories are refreshed
        # too so local reads route correctly.
        for item in sorted(system.catalog.items()):
            if is_dir_item(item):
                continue
            resident = site_id in system.catalog.sites_of(item)
            while True:
                record.include_attempts += 1
                program = self._include_program(site_id, item, resident)
                try:
                    yield from system.tms[site_id].run(program, kind=TxnKind.CONTROL)
                except TransactionAborted:
                    yield system.kernel.timeout(self.retry_delay)
                    continue
                record.includes_committed += 1
                break
        system.cluster.site(site_id).become_operational()
        system.cluster.notify_recovered(site_id)
        record.operational_at = system.kernel.now
        return record

    def _include_program(self, me: int, item: str, resident: bool):
        system = self.system

        def program(ctx: "TxnContext") -> typing.Generator:
            source = yield from self._find_live_peer(ctx, me)
            value, dir_version = yield from ctx.dm_read(
                source, dir_item(item), privileged=True
            )
            members = tuple(value)  # type: ignore[arg-type]
            if not resident:
                # Just refresh our directory copy (copier-style write).
                yield from ctx.dm_write(
                    me, dir_item(item), members, privileged=True,
                    version_override=dir_version,  # type: ignore[arg-type]
                )
                return members
            # Refresh the data copy from an available member.
            copy_value = copy_version = None
            for peer in sorted(members):
                if peer == me:
                    continue
                try:
                    copy_value, copy_version = yield from ctx.dm_read(
                        peer, item, privileged=True
                    )
                    break
                except (NetworkError, TransactionError):
                    continue
            if copy_version is not None:
                yield from ctx.dm_write(
                    me, item, copy_value, privileged=True,
                    version_override=copy_version,  # type: ignore[arg-type]
                )
            elif members and set(members) - {me}:
                raise TotalFailure(item)
            # Announce availability: me joins the directory everywhere up.
            new_members = tuple(sorted(set(members) | {me}))
            detector = system.cluster.detector(me)
            targets = [
                (site, None)
                for site in system.cluster.site_ids
                if detector.believes_up(site) or site == me
            ]
            yield from ctx.dm_write_all(
                targets, dir_item(item), new_members, privileged=True
            )
            return new_members

        return program

    def _find_live_peer(self, ctx: "TxnContext", me: int) -> typing.Generator:
        yield from ()
        detector = self.system.cluster.detector(me)
        for site_id in self.system.cluster.site_ids:
            if site_id != me and detector.believes_up(site_id):
                return site_id
        raise TotalFailure("no live peer for directory recovery")


def build_directory_items(
    items: dict[str, object], catalog_sites: dict[str, tuple[int, ...]]
) -> dict[str, object]:
    """Initial values for DIR items: every copy available at boot."""
    return {dir_item(name): tuple(catalog_sites[name]) for name in items}

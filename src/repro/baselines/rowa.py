"""Strict read-one/write-all (§2 of the paper).

WRITE(X) must reach *every* copy of X, available or not, so "site
failures never result in inconsistent data" and database recovery is
unnecessary — at the price that a single down replica blocks all writers
of the item. This is the correctness-without-availability endpoint of
the design space that experiment E1 contrasts ROWAA against.
"""

from __future__ import annotations

import typing

from repro.errors import NetworkError, TotalFailure, TransactionError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.txn.context import TxnContext


class StrictROWA:
    """READ = any one copy; WRITE = all copies, no exceptions."""

    name = "strict-rowa"

    def begin(self, ctx: "TxnContext") -> typing.Generator:
        yield from ()

    def read(self, ctx: "TxnContext", item: str) -> typing.Generator:
        home = ctx.tm.site_id
        sites = sorted(
            ctx.tm.catalog.sites_of(item), key=lambda site: (site != home, site)
        )
        last_error: Exception | None = None
        for site in sites[: ctx.tm.config.max_read_attempts]:
            try:
                value, _version = yield from ctx.dm_read(site, item, expected=None)
                return value
            except (NetworkError, TransactionError) as exc:
                last_error = exc
        raise last_error if last_error is not None else TotalFailure(item)

    def write(self, ctx: "TxnContext", item: str, value: object) -> typing.Generator:
        targets = [(site, None) for site in ctx.tm.catalog.sites_of(item)]
        yield from ctx.dm_write_all(targets, item, value)
        return None

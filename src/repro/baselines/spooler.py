"""Spooled-redo recovery (Hammer & Shipman's SDD-1 mechanism [6]).

The first of the two §1 approaches: "all update messages addressed to an
unavailable site are saved reliably in multiple spoolers, and the
recovering site processes all of its missed messages before resuming
normal operations". Here every site that applies a write also spools it
(stably) for the missed sites, giving the multi-spooler redundancy; the
recovering site drains the spools and replays them *before* announcing
itself up.

This is the E2 counterpoint: time-to-operational grows with the number
of updates missed (∝ outage length × write rate), where the paper's
scheme is a constant few round trips. We charge a configurable per-update
replay cost, standing in for the log I/O and re-scheduling work the
paper calls "a nontrivial problem".

Keeping only the newest spooled version per (site, item) is the standard
last-writer-wins compression of a redo log — replaying every
intermediate version would only make this baseline look worse.
"""

from __future__ import annotations

import typing

from repro.core.config import RowaaConfig
from repro.core.recovery import RecoveryManager, RecoveryRecord
from repro.core.system import RowaaSystem
from repro.errors import NetworkError
from repro.site.site import Site
from repro.storage.copies import Version

_STABLE_KEY = "spool"


class SpoolTracker:
    """Per-site stable spool of updates missed by down sites."""

    def __init__(self, site: Site) -> None:
        self.site = site
        site.rpc.register("spool.collect", self._handle_collect)
        site.rpc.register("spool.clear", self._handle_clear)

    def _spool(self) -> dict[int, dict[str, tuple[object, Version]]]:
        spool = self.site.stable.get(_STABLE_KEY)
        if spool is None:
            spool = {}
            self.site.stable.put(_STABLE_KEY, spool)
        return spool  # type: ignore[return-value]

    def spooled_for(self, site_id: int) -> dict[str, tuple[object, Version]]:
        return dict(self._spool().get(site_id, {}))

    # -- tracker half ----------------------------------------------------------

    def on_commit_write(
        self,
        item: str,
        applied_sites: tuple[int, ...],
        missed_sites: tuple[int, ...],
        value: object = None,
        version: Version | None = None,
    ) -> None:
        assert version is not None
        spool = self._spool()
        for missed in missed_sites:
            per_site = spool.setdefault(missed, {})
            existing = per_site.get(item)
            if existing is None or existing[1] < version:
                per_site[item] = (value, version)
        for applied in applied_sites:
            per_site = spool.get(applied)
            if per_site is not None:
                per_site.pop(item, None)
        self.site.stable.put(_STABLE_KEY, spool)

    # -- RPC handlers ----------------------------------------------------------------

    def _handle_collect(self, recovering: int, src: int) -> dict:
        return self.spooled_for(recovering)

    def _handle_clear(self, recovering: int, src: int) -> bool:
        spool = self._spool()
        spool.pop(recovering, None)
        self.site.stable.put(_STABLE_KEY, spool)
        return True


class SpoolerRecoveryManager(RecoveryManager):
    """Recovery that replays spooled updates *before* rejoining."""

    replay_cost_per_update = 0.5

    def _prepare_database(self, record: RecoveryRecord) -> typing.Generator:
        me = self.site.site_id
        merged: dict[str, tuple[object, Version]] = {}
        reached: list[int] = []
        for peer in self.operational_peers():
            try:
                entries = yield self.rpc.call(
                    peer, "spool.collect", me,
                    timeout=self.config.recovery_probe_timeout,
                )
            except NetworkError:
                continue
            reached.append(peer)
            for item, (value, version) in entries.items():  # type: ignore[union-attr]
                existing = merged.get(item)
                if existing is None or existing[1] < version:
                    merged[item] = (value, version)
        # Redo: replay in version order, paying the per-update cost.
        for item, (value, version) in sorted(
            merged.items(), key=lambda entry: entry[1][1]
        ):
            yield self.kernel.timeout(self.replay_cost_per_update)
            if not self.site.copies.has(item):
                continue
            copy = self.site.copies.get(item)
            if copy.version < version:
                self.site.copies.apply_write(item, value, version)
        if self.site.wal is not None:
            self.site.wal.flush()  # replayed updates become durable together
        record.marked_items = len(merged)  # here: #updates replayed
        record.identified_at = self.kernel.now
        for peer in reached:
            self.rpc.call(peer, "spool.clear", me)
        return None


class SpoolerSystem(RowaaSystem):
    """ROWAA session machinery with spooled-redo instead of copiers.

    Shares the session-number/control-transaction substrate so the E2
    comparison isolates exactly the database-recovery approach: replay
    before rejoining vs mark-and-copy after rejoining.
    """

    def __init__(self, *args, replay_cost_per_update: float = 0.5, **kwargs) -> None:
        kwargs.setdefault(
            "rowaa_config", RowaaConfig(copier_mode="none", identify_mode="mark-all")
        )
        super().__init__(*args, **kwargs)
        self.spools: dict[int, SpoolTracker] = {}
        for site_id in self.cluster.site_ids:
            # Construction-time wiring by the System subclass (the same
            # sanctioned layer as core/system.py), not protocol logic.
            site = self.cluster.site(site_id)  # replint: disable=REP003
            tracker = SpoolTracker(site)
            self.spools[site_id] = tracker
            self.dms[site_id].stale_tracker = tracker
            manager = SpoolerRecoveryManager(
                self.kernel,
                site,
                self.tms[site_id],
                self.sessions[site_id],
                self.catalog,
                self.cluster,
                self.copiers[site_id],
                self.policies[site_id],
                self.rowaa_config,
                register_probe=False,  # the replaced manager's probe handler serves
            )
            manager.replay_cost_per_update = replay_cost_per_update
            self.recoveries[site_id] = manager

"""The broken scheme of the paper's §1 example.

"Write operations are interpreted as writing to all currently available
copies and transactions can be committed as long as all write operations
succeed" — with availability judged per-operation from the local failure
detector and **no** session numbers, directories, or other conventions.

This is intentionally unsound: two transactions can each miss the other's
writes across a crash and still commit, producing a non-one-serializable
execution. Experiment E8 regenerates exactly the paper's counter-example
with it. It is also the *overhead floor* used by E3: any correct scheme's
extra cost is measured against this one.
"""

from __future__ import annotations

import typing

from repro.errors import NetworkError, TotalFailure, TransactionError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.site.cluster import Cluster
    from repro.txn.context import TxnContext


class NaiveAvailableCopies:
    """Per-operation available-copies with no recovery conventions."""

    name = "naive-available-copies"

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster

    def begin(self, ctx: "TxnContext") -> typing.Generator:
        """No view to establish — availability is judged per operation."""
        yield from ()

    def _believed_up(self, ctx: "TxnContext", item: str) -> list[int]:
        detector = self.cluster.detector(ctx.tm.site_id)
        home = ctx.tm.site_id
        sites = [
            site for site in ctx.tm.catalog.sites_of(item) if detector.believes_up(site)
        ]
        # Prefer the local copy, then lowest site id: deterministic and cheap.
        return sorted(sites, key=lambda site: (site != home, site))

    def read(self, ctx: "TxnContext", item: str) -> typing.Generator:
        last_error: Exception | None = None
        candidates = self._believed_up(ctx, item)
        for site in candidates[: ctx.tm.config.max_read_attempts]:
            try:
                value, _version = yield from ctx.dm_read(site, item, expected=None)
                return value
            except (NetworkError, TransactionError) as exc:
                last_error = exc
        raise last_error if last_error is not None else TotalFailure(item)

    def write(self, ctx: "TxnContext", item: str, value: object) -> typing.Generator:
        targets = self._believed_up(ctx, item)
        if not targets:
            raise TotalFailure(item)
        yield from ctx.dm_write_all([(site, None) for site in targets], item, value)
        return None

"""Quorum consensus (weighted majority voting, Gifford-style).

The classic availability yardstick for experiment E1: both reads and
writes need a majority of an item's copies, so each operation tolerates
⌈n/2⌉−1 copy failures — symmetric, but strictly worse write availability
than ROWAA (one live copy suffices there) and strictly worse read
availability than both ROWA variants.

No recovery machinery is needed: a rejoining site's stale copies are
out-voted by version comparison inside every read quorum, and the next
write through the site refreshes them. That simplicity is the scheme's
selling point; the cost is paid on every single operation instead.
"""

from __future__ import annotations

import typing

from repro.errors import NetworkError, TotalFailure, TransactionError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.txn.context import TxnContext


def majority(n: int) -> int:
    return n // 2 + 1


class QuorumConsensus:
    """Read-quorum/write-quorum interpretation of logical operations.

    Parameters
    ----------
    read_quorum_of, write_quorum_of:
        Optional functions from replication degree to quorum size;
        default simple majority for both (r + w > n and w + w > n).
    """

    name = "quorum"

    def __init__(
        self,
        read_quorum_of: typing.Callable[[int], int] = majority,
        write_quorum_of: typing.Callable[[int], int] = majority,
    ) -> None:
        self.read_quorum_of = read_quorum_of
        self.write_quorum_of = write_quorum_of

    def begin(self, ctx: "TxnContext") -> typing.Generator:
        yield from ()

    def read(self, ctx: "TxnContext", item: str) -> typing.Generator:
        """Collect a read quorum; return the highest-version value."""
        home = ctx.tm.site_id
        resident = sorted(
            ctx.tm.catalog.sites_of(item), key=lambda site: (site != home, site)
        )
        needed = self.read_quorum_of(len(resident))
        votes: list[tuple[object, object]] = []
        for site in resident:
            try:
                value, version = yield from ctx.dm_read(site, item, expected=None)
            except (NetworkError, TransactionError):
                continue
            votes.append((version, value))
            if len(votes) >= needed:
                break
        if len(votes) < needed:
            raise TotalFailure(item)
        _best_version, best_value = max(votes, key=lambda vote: vote[0])  # type: ignore[arg-type]
        return best_value

    def write(self, ctx: "TxnContext", item: str, value: object) -> typing.Generator:
        """Buffer the write at a write quorum of copies."""
        home = ctx.tm.site_id
        resident = sorted(
            ctx.tm.catalog.sites_of(item), key=lambda site: (site != home, site)
        )
        needed = self.write_quorum_of(len(resident))
        acked = 0
        futures = [
            (site, ctx.tm.rpc.call(
                site,
                "dm.write",
                self._write_request(ctx, site, item, value),
                timeout=ctx.tm.config.rpc_timeout,
            ))
            for site in resident
        ]
        for site, future in futures:
            ctx.txn.touched_sites.add(site)
        failures = 0
        for site, future in futures:
            try:
                yield future
            except (NetworkError, TransactionError):
                failures += 1
                if failures > len(resident) - needed:
                    raise TotalFailure(item)
                continue
            ctx.txn.wrote_sites.add(site)
            acked += 1
        if acked < needed:
            raise TotalFailure(item)
        return None

    @staticmethod
    def _write_request(ctx: "TxnContext", site: int, item: str, value: object):
        from repro.txn.payloads import WriteRequest

        return WriteRequest(
            txn_id=ctx.txn.txn_id,
            txn_seq=ctx.txn.seq,
            kind=ctx.txn.kind.value,
            item=item,
            value=value,
            expected=None,
        )

"""Baseline replication/recovery schemes the paper argues against.

* :class:`~repro.baselines.naive.NaiveAvailableCopies` — "write to all
  currently available copies, no further conventions": the scheme of the
  paper's §1 counter-example. Fast and wrong: it commits executions that
  are not one-serializable (reproduced by experiment E8).
* :class:`~repro.baselines.rowa.StrictROWA` — read-one/write-*all* (§2):
  always correct, never needs database recovery, but write availability
  collapses as soon as any replica site is down (experiment E1).
* :class:`~repro.baselines.quorum.QuorumConsensus` — weighted-majority
  reads and writes; the classic availability yardstick (experiment E1).
* :class:`~repro.baselines.directories.DirectoryAvailableCopies` — the
  Bernstein–Goodman directory-oriented scheme [2]: per-item status
  directories maintained by status transactions (INCLUDE/EXCLUDE);
  contrast in control-overhead and resume latency (E2, E7).
* :class:`~repro.baselines.spooler.SpoolerRecovery` — the Hammer–Shipman
  reliable-spooler approach [6]: missed updates are queued and replayed
  before the recovering site resumes (experiment E2).
"""

from repro.baselines.directories import DirectoryAvailableCopies, DirectoryService
from repro.baselines.naive import NaiveAvailableCopies
from repro.baselines.quorum import QuorumConsensus
from repro.baselines.rowa import StrictROWA
from repro.baselines.spooler import SpoolerSystem, SpoolTracker
from repro.baselines.systems import (
    DirectorySystem,
    build_directory_system,
    build_naive_system,
    build_quorum_system,
    build_rowa_system,
    build_rowaa_system,
    build_spooler_system,
)

__all__ = [
    "DirectoryAvailableCopies",
    "DirectoryService",
    "DirectorySystem",
    "NaiveAvailableCopies",
    "QuorumConsensus",
    "SpoolTracker",
    "SpoolerSystem",
    "StrictROWA",
    "build_directory_system",
    "build_naive_system",
    "build_quorum_system",
    "build_rowa_system",
    "build_rowaa_system",
    "build_spooler_system",
]

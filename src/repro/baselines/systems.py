"""Uniform constructors for every system variant under comparison.

Each builder returns a booted system with the same knobs, so
experiments sweep *schemes* as data::

    SCHEMES = {"rowaa": build_rowaa_system, "rowa": build_rowa_system, ...}
"""

from __future__ import annotations

import typing

from repro.baselines.directories import (
    DirectoryAvailableCopies,
    DirectoryService,
    build_directory_items,
    dir_item,
)
from repro.baselines.naive import NaiveAvailableCopies
from repro.baselines.quorum import QuorumConsensus
from repro.baselines.rowa import StrictROWA
from repro.baselines.spooler import SpoolerSystem
from repro.core.config import RowaaConfig
from repro.core.system import RowaaSystem
from repro.sim.kernel import Kernel
from repro.storage.catalog import Catalog
from repro.system import DatabaseSystem


class DirectorySystem(DatabaseSystem):
    """Available copies with per-item directories (+ status service)."""

    def __init__(
        self,
        kernel: Kernel,
        n_sites: int,
        items: dict[str, object],
        catalog: Catalog | None = None,
        **kwargs: typing.Any,
    ) -> None:
        site_ids = list(range(1, n_sites + 1))
        if catalog is None:
            catalog = Catalog(site_ids)
            for item in items:
                catalog.add_item(item, site_ids)
        placement = {item: catalog.sites_of(item) for item in items}
        all_items = dict(items)
        all_items.update(build_directory_items(items, placement))
        for item in items:
            catalog.add_item(dir_item(item), site_ids)  # directories everywhere
        super().__init__(
            kernel,
            n_sites,
            all_items,
            strategy_factory=lambda _system: DirectoryAvailableCopies(),
            catalog=catalog,
            **kwargs,
        )
        self.directory_service = DirectoryService(self)

    def power_on(self, site_id: int):
        """Recover via the per-item INCLUDE pass."""
        return self.directory_service.recover(site_id)


def build_rowaa_system(
    kernel: Kernel,
    n_sites: int,
    items: dict[str, object],
    catalog: Catalog | None = None,
    rowaa_config: RowaaConfig | None = None,
    **kwargs: typing.Any,
) -> RowaaSystem:
    """The paper's protocol."""
    system = RowaaSystem(
        kernel, n_sites, items, catalog=catalog, rowaa_config=rowaa_config, **kwargs
    )
    system.boot()
    return system


def build_spooler_system(
    kernel: Kernel,
    n_sites: int,
    items: dict[str, object],
    catalog: Catalog | None = None,
    replay_cost_per_update: float = 0.5,
    **kwargs: typing.Any,
) -> SpoolerSystem:
    """Session machinery + spooled-redo recovery (approach 1 of §1)."""
    system = SpoolerSystem(
        kernel,
        n_sites,
        items,
        catalog=catalog,
        replay_cost_per_update=replay_cost_per_update,
        **kwargs,
    )
    system.boot()
    return system


def build_rowa_system(
    kernel: Kernel,
    n_sites: int,
    items: dict[str, object],
    catalog: Catalog | None = None,
    **kwargs: typing.Any,
) -> DatabaseSystem:
    """Strict read-one/write-all (§2)."""
    system = DatabaseSystem(
        kernel,
        n_sites,
        items,
        strategy_factory=lambda _system: StrictROWA(),
        catalog=catalog,
        **kwargs,
    )
    system.boot()
    return system


def build_quorum_system(
    kernel: Kernel,
    n_sites: int,
    items: dict[str, object],
    catalog: Catalog | None = None,
    **kwargs: typing.Any,
) -> DatabaseSystem:
    """Majority quorum consensus."""
    system = DatabaseSystem(
        kernel,
        n_sites,
        items,
        strategy_factory=lambda _system: QuorumConsensus(),
        catalog=catalog,
        **kwargs,
    )
    system.boot()
    return system


def build_naive_system(
    kernel: Kernel,
    n_sites: int,
    items: dict[str, object],
    catalog: Catalog | None = None,
    **kwargs: typing.Any,
) -> DatabaseSystem:
    """The unsound §1 scheme (correctness foil, overhead floor)."""
    system = DatabaseSystem(
        kernel,
        n_sites,
        items,
        strategy_factory=lambda system: NaiveAvailableCopies(system.cluster),
        catalog=catalog,
        **kwargs,
    )
    system.boot()
    return system


def build_directory_system(
    kernel: Kernel,
    n_sites: int,
    items: dict[str, object],
    catalog: Catalog | None = None,
    **kwargs: typing.Any,
) -> DirectorySystem:
    """Directory-oriented available copies (Bernstein–Goodman [2])."""
    system = DirectorySystem(kernel, n_sites, items, catalog=catalog, **kwargs)
    system.boot()
    return system

"""Experiment harness: metrics, tables, and the E1–E8 experiments.

The paper (ICDCS 1986) contains no measured tables or figures — its
evaluation is a set of qualitative claims. Each experiment module
regenerates one claim as a table (see DESIGN.md §3 for the index):

* :mod:`~repro.harness.experiments.e1_availability`
* :mod:`~repro.harness.experiments.e2_resume`
* :mod:`~repro.harness.experiments.e3_overhead`
* :mod:`~repro.harness.experiments.e4_copiers`
* :mod:`~repro.harness.experiments.e5_identification`
* :mod:`~repro.harness.experiments.e6_multifailure`
* :mod:`~repro.harness.experiments.e7_control_cost`
* :mod:`~repro.harness.experiments.e8_serializability`

Every experiment exposes ``run(seed=0, **params) -> Table``; benchmarks
call them with scaled-down parameters and print the table.
"""

from repro.harness.tables import Table

__all__ = ["Table"]

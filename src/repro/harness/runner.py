"""Shared plumbing for the experiment modules."""

from __future__ import annotations

import hashlib
import typing

from repro.baselines import (
    build_directory_system,
    build_naive_system,
    build_quorum_system,
    build_rowa_system,
    build_rowaa_system,
    build_spooler_system,
)
from repro.net.latency import ConstantLatency
from repro.obs import Observability
from repro.sim.kernel import Kernel
from repro.sim.rng import RngRegistry
from repro.storage.catalog import Catalog
from repro.system import DatabaseSystem
from repro.txn.config import TxnConfig

SCHEME_BUILDERS: dict[str, typing.Callable[..., DatabaseSystem]] = {
    "rowaa": build_rowaa_system,
    "rowa": build_rowa_system,
    "quorum": build_quorum_system,
    "naive": build_naive_system,
    "directories": build_directory_system,
    "spooler": build_spooler_system,
}

DEFAULT_LATENCY = 1.0
DEFAULT_DETECTION = 5.0


def build_scheme(
    scheme: str,
    seed: int,
    n_sites: int,
    items: dict[str, object],
    catalog: Catalog | None = None,
    txn_config: TxnConfig | None = None,
    **kwargs: typing.Any,
) -> tuple[Kernel, DatabaseSystem]:
    """One booted system of the named scheme on a fresh kernel."""
    kernel = Kernel(seed=seed)
    builder = SCHEME_BUILDERS[scheme]
    system = builder(
        kernel,
        n_sites,
        items,
        catalog=catalog,
        latency=ConstantLatency(DEFAULT_LATENCY),
        detection_delay=DEFAULT_DETECTION,
        config=txn_config if txn_config is not None else TxnConfig(rpc_timeout=25.0),
        **kwargs,
    )
    return kernel, system


def build_traced_scheme(
    scheme: str,
    seed: int,
    n_sites: int,
    items: dict[str, object],
    catalog: Catalog | None = None,
    txn_config: TxnConfig | None = None,
    audit: bool = False,
    sample_period: float | None = None,
    profile: bool = False,
    schedule: typing.Any = None,
    races: bool = False,
    **kwargs: typing.Any,
) -> tuple[Kernel, DatabaseSystem, Observability]:
    """Like :func:`build_scheme`, but with spans + timeline recording on.

    Used by ``repro trace`` / ``repro metrics``: the returned
    :class:`~repro.obs.Observability` carries the span tree, timeline
    instants, and metrics registry for export after the scenario runs.
    With ``audit=True`` (``repro audit``) a
    :class:`~repro.audit.ProtocolAuditor` is attached before any load
    runs; its alert log rides on ``obs.audit``. With ``sample_period``
    set, a windowed time-series sampler
    (:func:`repro.obs.timeseries.attach_sampler`) ticks at that period
    from boot; it rides on ``obs.sampler``. With ``profile=True``
    (``repro profile``) a host-CPU profiler
    (:func:`repro.obs.profiler.attach_profiler`) instruments the kernel
    dispatch loop from here on; it rides on ``obs.profiler``.

    With ``schedule`` set to a
    :class:`~repro.sanitize.policy.ScheduleSpec`, the kernel's
    same-timestamp tie-breaks are resolved by the spec's policy
    (``repro schedfuzz``); the policy is attached *before* the system is
    built so boot-time ties are perturbed too. With ``races=True`` a
    happens-before race detector
    (:func:`repro.sanitize.hb.attach_detector`) rides on
    ``obs.sanitizer`` — the caller owns tearing the global access seam
    down (:func:`repro.sanitize.hooks.clear`) when the run finishes.
    """
    kernel = Kernel(seed=seed)
    if schedule is not None:
        from repro.sanitize.policy import attach_policy

        attach_policy(kernel, schedule)
    obs = Observability(kernel, spans=True, timeline=True)
    if races:
        from repro.sanitize.hb import attach_detector

        obs.sanitizer = attach_detector(kernel)
    builder = SCHEME_BUILDERS[scheme]
    system = builder(
        kernel,
        n_sites,
        items,
        catalog=catalog,
        latency=ConstantLatency(DEFAULT_LATENCY),
        detection_delay=DEFAULT_DETECTION,
        config=txn_config if txn_config is not None else TxnConfig(rpc_timeout=25.0),
        obs=obs,
        **kwargs,
    )
    if audit:
        from repro.audit import attach_auditor

        attach_auditor(system)
    if sample_period is not None:
        from repro.obs.timeseries import attach_sampler

        attach_sampler(system, sample_period)
    if profile:
        from repro.obs.profiler import attach_profiler

        attach_profiler(system)
    return kernel, system, obs


def replicated_catalog(
    n_sites: int, items: typing.Iterable[str], replication: int, seed: int
) -> Catalog:
    """Random ``replication``-way placement over ``n_sites``.

    The placement draws from a dedicated :class:`RngRegistry` stream, so
    it is independent of every other consumer of randomness: the same
    seed yields the same catalog no matter what else an experiment draws
    before or after building it.
    """
    rng = RngRegistry(seed).stream("harness.placement")
    return Catalog.random_placement(
        list(range(1, n_sites + 1)), items, replication, rng
    )


def cell_seed(*parts: object) -> int:
    """Deterministic seed for one experiment cell.

    Unlike ``hash()``, whose value for strings is salted per interpreter
    (``PYTHONHASHSEED``), this is stable across processes and runs — a
    cell gets the same seed whether it executes serially, inside a
    worker pool, or in a fresh interpreter tomorrow.
    """
    text = ":".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:4], "big")


def settle(kernel: Kernel, system: DatabaseSystem, duration: float) -> None:
    """Advance the clock (detector, control transactions, copiers)."""
    kernel.run(until=kernel.now + duration)


def quiesce(kernel: Kernel, system: DatabaseSystem, grace: float = 500.0) -> None:
    """Power every down site back on and let everything drain."""
    for site_id in system.cluster.site_ids:
        if system.cluster.site(site_id).is_down:
            system.power_on(site_id)
    kernel.run(until=kernel.now + grace)
    system.stop()
    kernel.run(until=kernel.now + 10)
    # Span hygiene: anything still open at the horizon (an in-flight
    # drain, a 2PC blocked past the grace window) is closed and tagged
    # truncated=True rather than dropped from the exports.
    system.obs.spans.finish_open()

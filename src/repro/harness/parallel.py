"""Parallel execution of the experiment grid.

Every experiment module describes its work as a flat list of
:class:`Cell` objects via ``plan()`` and folds the results back into
its table via ``assemble()``; ``run()`` is just plan → execute →
assemble. A cell is a *pure function of its arguments*: it builds its
own kernel and system from scratch, and ``DatabaseSystem.__init__``
resets the global message/transaction counters. Serial and pooled
execution therefore produce identical tables — a property the test
suite asserts — and the (scheme × seed × parameter) grid can fan out
across a process pool with no coordination beyond the final merge.

Cells are dispatched with ``chunksize=1`` and merged in plan order, so
result order never depends on worker scheduling. Per-cell wall times
are collected alongside the results and can be persisted as a
machine-readable perf trajectory (``BENCH_grid.json``) — see
:func:`write_grid_trajectory`.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import typing

from repro.obs import hostclock


@dataclasses.dataclass(frozen=True)
class Cell:
    """One independently executable unit of an experiment grid.

    ``fn`` must be a module-level function (pickled by reference) and
    ``kwargs`` picklable values; ``tag`` carries the row-identifying
    labels (scheme, failure count, …) used by ``assemble`` and by the
    perf trajectory.
    """

    experiment: str
    fn: typing.Callable[..., object]
    kwargs: dict
    tag: dict


@dataclasses.dataclass
class CellTiming:
    """Wall-clock cost of one executed cell."""

    experiment: str
    tag: dict
    wall: float


def execute_cell(cell: Cell) -> tuple[object, float]:
    """Run one cell; returns (result, wall seconds). Pool-worker entry."""
    start = hostclock.now()
    result = cell.fn(**cell.kwargs)
    return result, hostclock.now() - start


def run_cells(
    cells: typing.Sequence[Cell], jobs: int | None = None
) -> tuple[list, list[CellTiming]]:
    """Execute ``cells``, serially or in a pool of ``jobs`` processes.

    Results and timings come back in cell order either way.
    """
    if jobs is None or jobs <= 1 or len(cells) <= 1:
        outcomes = [execute_cell(cell) for cell in cells]
    else:
        # Fork (where available) shares the already-imported modules;
        # cells never depend on inherited mutable state (see module doc).
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        with context.Pool(min(jobs, len(cells))) as pool:
            outcomes = pool.map(execute_cell, cells, chunksize=1)
    results = [result for result, _wall in outcomes]
    timings = [
        CellTiming(cell.experiment, cell.tag, wall)
        for cell, (_result, wall) in zip(cells, outcomes)
    ]
    return results, timings


def run_experiment(
    module, params: dict, jobs: int | None = None
) -> tuple[typing.Any, list[CellTiming]]:
    """Plan, execute (optionally pooled), and assemble one experiment."""
    cells = module.plan(**params)
    results, timings = run_cells(cells, jobs=jobs)
    return module.assemble(cells, results, **params), timings


def run_grid(
    specs: typing.Sequence[tuple[str, typing.Any, dict]],
    jobs: int | None = None,
) -> tuple[dict, list[CellTiming]]:
    """Execute several experiments' cells through one shared pool.

    ``specs`` is ``[(name, module, params), ...]``; returns
    ``({name: table}, timings)``. Pooling the union of all cells keeps
    the workers busy across experiment boundaries (the last long cell of
    e3 overlaps the first cells of e4 instead of serialising on a
    per-experiment barrier).
    """
    all_cells: list[Cell] = []
    spans: list[tuple[str, typing.Any, dict, int]] = []
    for name, module, params in specs:
        cells = module.plan(**params)
        spans.append((name, module, params, len(cells)))
        all_cells.extend(cells)
    results, timings = run_cells(all_cells, jobs=jobs)
    tables: dict[str, typing.Any] = {}
    index = 0
    for name, module, params, count in spans:
        tables[name] = module.assemble(
            all_cells[index : index + count],
            results[index : index + count],
            **params,
        )
        index += count
    return tables, timings


def write_grid_trajectory(
    path: str,
    timings: typing.Sequence[CellTiming],
    label: str,
    jobs: int | None,
    extra: dict | None = None,
) -> dict:
    """Append one grid-run entry to the ``BENCH_grid.json`` trajectory.

    Schema: ``{"benchmark": "grid", "entries": [entry, ...]}`` where an
    entry holds the label, the job count, total and per-experiment wall
    seconds, and the per-cell breakdown (experiment, tag, wall).
    """
    per_experiment: dict[str, float] = {}
    for timing in timings:
        per_experiment[timing.experiment] = (
            per_experiment.get(timing.experiment, 0.0) + timing.wall
        )
    entry = {
        "label": label,
        "jobs": jobs,
        "cells": len(timings),
        "cell_wall_total_s": round(sum(t.wall for t in timings), 4),
        "wall_by_experiment_s": {
            name: round(wall, 4) for name, wall in sorted(per_experiment.items())
        },
        "cell_walls": [
            {"experiment": t.experiment, "tag": t.tag, "wall_s": round(t.wall, 4)}
            for t in timings
        ],
    }
    if extra:
        entry.update(extra)
    try:
        with open(path) as handle:
            trajectory = json.load(handle)
    except (OSError, ValueError):
        trajectory = {"benchmark": "grid", "entries": []}
    trajectory.setdefault("entries", []).append(entry)
    with open(path, "w") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    return entry

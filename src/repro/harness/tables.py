"""Plain-text result tables (what the paper would have printed)."""

from __future__ import annotations

import typing


class Table:
    """A titled, column-ordered result table.

    Rows are dicts; values are formatted with sensible defaults
    (floats to 3 significant decimals). The table renders as aligned
    monospace text and is also queryable for assertions.
    """

    def __init__(self, title: str, columns: typing.Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[dict] = []

    def add_row(self, **values: object) -> None:
        """Append a row; every key must be a declared column."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ValueError(f"unknown columns {sorted(unknown)}")
        self.rows.append({column: values.get(column) for column in self.columns})

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        return [row[name] for row in self.rows]

    def where(self, **match: object) -> list[dict]:
        """Rows whose listed columns equal the given values."""
        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in match.items())
        ]

    @staticmethod
    def _format(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
        return str(value)

    def render(self) -> str:
        """The table as aligned monospace text (title + header + rows)."""
        header = [column for column in self.columns]
        body = [[self._format(row[column]) for column in self.columns] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title]
        lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

"""Structured event tracing for a running system.

`SystemTracer` subscribes to the hook points a
:class:`~repro.system.DatabaseSystem` already exposes (site lifecycle,
cluster recovery announcements, transaction completion) and records a
timeline of structured events — the kind of operational log an operator
would tail. Used by examples and debugging; cheap enough to leave on.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.system import DatabaseSystem
from repro.txn.transaction import Transaction, TxnStatus


@dataclasses.dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timeline entry."""

    time: float
    category: str  # "site" | "txn" | "recovery"
    site_id: int
    what: str
    detail: str = ""


class SystemTracer:
    """Collects a structured timeline from a live system."""

    def __init__(self, system: DatabaseSystem, keep_user_txns: bool = True) -> None:
        self.system = system
        self.keep_user_txns = keep_user_txns
        self.events: list[TraceEvent] = []
        for site_id in system.cluster.site_ids:
            site = system.cluster.site(site_id)
            site.crash_hooks.append(lambda sid=site_id: self._site_event(sid, "crash"))
            site.power_on_hooks.append(
                lambda sid=site_id: self._site_event(sid, "power-on")
            )
        system.cluster.recovered_hooks.append(
            lambda sid: self._site_event(sid, "operational")
        )
        for site_id, tm in system.tms.items():
            tm.finish_hooks.append(self._txn_event)

    def _site_event(self, site_id: int, what: str) -> None:
        self.events.append(
            TraceEvent(
                time=self.system.kernel.now,
                category="site",
                site_id=site_id,
                what=what,
            )
        )

    def _txn_event(self, txn: Transaction) -> None:
        if txn.kind.value == "user" and not self.keep_user_txns:
            return
        what = "commit" if txn.status is TxnStatus.COMMITTED else "abort"
        self.events.append(
            TraceEvent(
                time=self.system.kernel.now,
                category="txn" if txn.kind.value == "user" else txn.kind.value,
                site_id=txn.home_site,
                what=what,
                detail=(
                    f"{txn.txn_id}"
                    + (f" ({txn.abort_reason})" if txn.abort_reason else "")
                ),
            )
        )

    # -- queries ----------------------------------------------------------------

    def of_category(self, category: str) -> list[TraceEvent]:
        """Events of one category (site / txn / control / copier)."""
        return [event for event in self.events if event.category == category]

    def between(self, start: float, end: float) -> list[TraceEvent]:
        """Events with start <= time <= end."""
        return [event for event in self.events if start <= event.time <= end]

    def render(self, limit: int | None = None) -> str:
        """Human-readable timeline (most recent ``limit`` events)."""
        chosen = self.events if limit is None else self.events[-limit:]
        lines = []
        for event in chosen:
            detail = f"  {event.detail}" if event.detail else ""
            lines.append(
                f"[t={event.time:9.1f}] site {event.site_id}: "
                f"{event.category}/{event.what}{detail}"
            )
        return "\n".join(lines)

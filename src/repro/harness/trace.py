"""Structured event tracing for a running system (compatibility shim).

`SystemTracer` predates the observability layer (:mod:`repro.obs`); it is
now a thin *view* over the instant timeline that
:func:`repro.obs.instrument.instrument_system` records for every system.
Constructing a tracer enables timeline recording on the system's
:class:`~repro.obs.Observability` bundle and remembers where the stream
stood, so each tracer sees only events from its own lifetime — matching
the old hook-attachment semantics. The public API (``events``,
``of_category``, ``between``, ``render``) is unchanged.

Categories are normalised here, fixing the old ``_txn_event`` bug where
the user-transaction filter compared against ``txn.kind.value`` while
categories were emitted inconsistently with the ``of_category``
docstring: site lifecycle events are ``"site"``, user transactions
``"txn"``, and control/copier transactions their kind name (``"control"``
/ ``"copier"``), exactly as documented.
"""

from __future__ import annotations

import dataclasses

from repro.system import DatabaseSystem


@dataclasses.dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timeline entry."""

    time: float
    category: str  # "site" | "txn" | "control" | "copier"
    site_id: int
    what: str
    detail: str = ""


class SystemTracer:
    """Collects a structured timeline from a live system."""

    def __init__(self, system: DatabaseSystem, keep_user_txns: bool = True) -> None:
        self.system = system
        self.keep_user_txns = keep_user_txns
        system.obs.enable_timeline()
        self._recorder = system.obs.spans
        self._start_index = len(self._recorder.instants)

    @property
    def events(self) -> list[TraceEvent]:
        """The timeline recorded since this tracer was constructed."""
        out = []
        for instant in self._recorder.instants[self._start_index:]:
            if instant.category == "txn" and not self.keep_user_txns:
                continue
            out.append(
                TraceEvent(
                    time=instant.time,
                    category=instant.category,
                    site_id=instant.site_id,
                    what=instant.name,
                    detail=instant.detail,
                )
            )
        return out

    # -- queries ----------------------------------------------------------------

    def of_category(self, category: str) -> list[TraceEvent]:
        """Events of one category (site / txn / control / copier)."""
        return [event for event in self.events if event.category == category]

    def between(self, start: float, end: float) -> list[TraceEvent]:
        """Events with start <= time <= end."""
        return [event for event in self.events if start <= event.time <= end]

    def render(self, limit: int | None = None) -> str:
        """Human-readable timeline (most recent ``limit`` events)."""
        events = self.events
        chosen = events if limit is None else events[-limit:]
        lines = []
        for event in chosen:
            detail = f"  {event.detail}" if event.detail else ""
            lines.append(
                f"[t={event.time:9.1f}] site {event.site_id}: "
                f"{event.category}/{event.what}{detail}"
            )
        return "\n".join(lines)

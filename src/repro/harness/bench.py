"""Self-timed microbench suite with a persisted perf trajectory.

``python -m repro bench`` runs a handful of kernel/protocol
microbenchmarks (best-of-N wall timing, no external dependencies) and
records the results as one entry in a trajectory file
(``BENCH_kernel.json`` by default). The trajectory is the project's
performance memory: each entry is a labelled snapshot of the same
metrics on some machine, so a regression shows up as a ratio between
the last committed entry and a fresh run — which is exactly what the
CI gate checks (``--check`` fails on a >30% drop in kernel event
throughput by default).

Trajectory schema::

    {
      "benchmark": "kernel",
      "entries": [
        {
          "label": "fast-path",
          "timestamp": "2026-08-06T12:00:00Z",
          "quick": false,
          "metrics": {
            "kernel_events_per_s": 650000.0,
            "kernel_events_obs_off_per_s": 645000.0,
            "kernel_events_sampled_per_s": 640000.0,
            "kernel_events_profiled_per_s": 638000.0,
            "timeout_churn_per_s": 800000.0,
            "copier_refresh_per_s": 12.5,
            "copier_refresh_audited_per_s": 12.0,
            "txn_throughput_per_s": 1.6,
            "txn_throughput_async_per_s": 4.9,
            "txn_commit_p50": 9.0,
            "txn_commit_p99": 9.0,
            "txn_commit_p50_async": 3.0,
            "txn_commit_p99_async": 3.0,
            "ro_read_throughput_per_s": 95000.0,
            "txn_wall_per_s": 2600.0,
            "txn_wall_mvcc_off_per_s": 2650.0
          },
          "obs": {
            "copier_refresh": {"...": "global metrics snapshot"},
            "profile": {"copier_refresh": {"net": 0.6, "...": "..."}}
          }
        }
      ]
    }

Metrics are throughputs (bigger is better) except the ``txn_commit_*``
latency percentiles (sim-time units, smaller is better); machines
differ, so only ratios between wall-clock entries produced on the same
machine are meaningful. The ``txn_throughput*`` and ``txn_commit*``
family is measured in *simulated* time (see
:func:`bench_txn_throughput`) and is therefore deterministic and
comparable across machines — the sync/async pair is the headline
commit-mode comparison. The
``obs`` field carries the global metrics-registry snapshot of the
system-level benches (``repro.obs``), and the gap between
``kernel_events_per_s`` and its ``_obs_off`` twin is the instrumentation
overhead with tracing disabled — ``--check`` bounds it at 5%. The
``txn_wall_per_s`` / ``txn_wall_mvcc_off_per_s`` pair plays the same
role for the multiversion store's write hooks (``repro.mvcc``): the
wall-clock RMW bench with snapshot support on vs off, gated under the
same 5% bound; ``ro_read_throughput_per_s`` tracks the snapshot-read
service rate itself. ``kernel_events_profiled_per_s`` is the host-CPU
profiler's twin (``repro profile``'s attribution view, run-length
batched clock reads), gated under the same 5% bound, and the
``obs.profile`` map records where the system-level benches actually
spend CPU per subsystem — compared advisorily across entries by
``--check`` (see :func:`share_drift`).
"""

from __future__ import annotations

import json
import time
import typing

from repro.obs import hostclock
from repro.sim.kernel import Kernel

#: The metric the regression gate checks by default: the kernel's raw
#: schedule-and-drain event throughput, the denominator of every
#: simulated second in the repository.
GATE_METRIC = "kernel_events_per_s"


def _best_of(fn: typing.Callable[[], int], repeats: int) -> float:
    """Best (events/second) over ``repeats`` runs of ``fn``.

    ``fn`` returns the number of units it processed; best-of-N is the
    standard way to suppress scheduler noise on busy machines. Wall
    time comes from :mod:`repro.obs.hostclock`, the sanctioned
    monotonic-clock seam (``time`` here is only for trajectory
    timestamps).
    """
    best = 0.0
    for _ in range(repeats):
        start = hostclock.now()
        units = fn()
        wall = hostclock.now() - start
        if wall > 0:
            best = max(best, units / wall)
    return best


def bench_kernel_events(n: int = 10_000, repeats: int = 10) -> float:
    """Schedule-and-drain throughput: ``n`` staggered timeouts."""

    def run() -> int:
        kernel = Kernel(seed=0)
        for index in range(n):
            kernel.timeout(index % 97)
        kernel.run()
        return kernel.events_processed

    return _best_of(run, repeats)


def bench_kernel_events_obs_off(n: int = 10_000, repeats: int = 10) -> float:
    """The kernel-events workload with a (disabled) observability bundle.

    The metrics registry is pull-based and spans are off, so the drain
    loop must be doing byte-for-byte the same work as in
    :func:`bench_kernel_events`. The ratio of the two metrics is the
    instrumentation overhead that ``bench --check`` bounds (<5% by
    default) — it guards against someone ever putting a per-event hook
    into the hot loop.
    """
    from repro.obs import Observability

    def run() -> int:
        kernel = Kernel(seed=0)
        obs = Observability(kernel)  # spans/timeline disabled

        def collect_kernel() -> dict:
            return {
                ("kernel.events_processed", None): float(kernel.events_processed)
            }

        obs.registry.add_collector(collect_kernel)
        for index in range(n):
            kernel.timeout(index % 97)
        kernel.run()
        assert obs.registry.snapshot()["global"]["kernel.events_processed"] > 0
        return kernel.events_processed

    return _best_of(run, repeats)


def bench_kernel_events_sampled(n: int = 10_000, repeats: int = 10) -> float:
    """The kernel-events workload with a *live* windowed sampler attached.

    The time-series twin of :func:`bench_kernel_events_obs_off`: here the
    sampler's periodic timer is actually running (one callback per period
    reading a probe), which is everything the ``repro latency`` tooling
    adds to a simulation — critical-path attribution itself is pure
    post-processing over already-recorded spans. The gap against
    :func:`bench_kernel_events` is the ``latency_attribution_overhead``
    that ``--check`` bounds under the same <5% gate as the rest of the
    observability layer.
    """
    from repro.obs.timeseries import WindowedSampler

    def run() -> int:
        kernel = Kernel(seed=0)
        sampler = WindowedSampler(kernel, period=5.0)
        sampler.add_delta("ts.events", lambda: float(kernel.events_processed))
        for index in range(n):
            kernel.timeout(index % 97)
        sampler.start()
        kernel.run(until=97.0)  # the last staggered timeout fires at 96
        sampler.stop()
        kernel.run()
        assert sampler.windows >= 19  # the timer genuinely ticked
        return kernel.events_processed

    return _best_of(run, repeats)


def bench_kernel_events_profiled(n: int = 10_000, repeats: int = 10) -> float:
    """The kernel-events workload with the host-CPU profiler attached.

    The profiled twin of :func:`bench_kernel_events`: the drain loop
    runs through ``Kernel._run_profiled``, reading the host clock at
    *run boundaries* (signature changes) rather than per event. The gap
    against the plain number is the ``profiler_overhead`` that
    ``--check`` bounds under the same <5% gate as the rest of the
    observability layer — it guards the run-length batching that makes
    ``repro profile`` affordable (a naive per-event clock read costs
    ~16% on this workload).
    """
    from repro.obs.profiler import HostProfiler

    def run() -> int:
        kernel = Kernel(seed=0)
        profiler = HostProfiler()
        profiler.attach(kernel)
        for index in range(n):
            kernel.timeout(index % 97)
        kernel.run()
        assert profiler.total_events == kernel.events_processed
        return kernel.events_processed

    # One discarded warmup run (see bench_txn_wall): the profiled loop
    # is separate bytecode from the plain one and pays the adaptive
    # interpreter's specialization cost on its first execution —
    # measured at ~10% on a cold first run vs ~2% warm, enough to
    # randomly trip the overhead gate.
    run()
    return _best_of(run, repeats)


def bench_kernel_events_sanitize_off(n: int = 10_000, repeats: int = 10) -> float:
    """The kernel-events workload after attach/detach of the sanitizer.

    The schedsan twin of :func:`bench_kernel_events_obs_off`: a
    tie-break policy and a happens-before race detector are attached
    and then *detached* before the drain, so the loop must fall back to
    the plain inlined path in :meth:`Kernel.run`. The sanitized loop is
    a diagnostic mode — on this tie-heavy workload (batches of ~100
    same-instant timeouts) its per-event batch collection costs ~40x,
    so it must never engage by default. The gap against
    :func:`bench_kernel_events` is the ``sanitize_overhead`` that
    ``--check`` bounds under the same <5% gate: it guards that "off
    means off" — detaching restores the byte-identical dispatch path
    and no residual hook survives on the hot loop.
    """
    from repro.sanitize.hb import attach_detector, detach_detector
    from repro.sanitize.policy import ScheduleSpec, attach_policy

    def run() -> int:
        kernel = Kernel(seed=0)
        attach_policy(kernel, ScheduleSpec(mode="canonical"))
        attach_detector(kernel)
        detach_detector(kernel)
        kernel.set_tiebreak(None)
        for index in range(n):
            kernel.timeout(index % 97)
        kernel.run()
        assert kernel._tiebreak is None and kernel._sanitize is None
        return kernel.events_processed

    return _best_of(run, repeats)


def bench_timeout_churn(n: int = 10_000, repeats: int = 10) -> float:
    """RPC-style timeout churn: schedule ``n`` timers, cancel 90%.

    This is the hot pattern of the RPC layer: nearly every call's
    timeout timer is cancelled when the reply lands first. Lazy
    cancellation makes the cancel O(1) and the drain skip dead entries.
    """

    def run() -> int:
        kernel = Kernel(seed=0)
        timers = [
            kernel.schedule_callback(5.0 + (index % 13), _noop)
            for index in range(n)
        ]
        for index, timer in enumerate(timers):
            if index % 10 != 0:
                timer.cancel()
        kernel.run()
        return n  # n schedule ops + n/10 live fires is the unit of work

    return _best_of(run, repeats)


def _noop() -> None:
    return None


def bench_copier_refresh(
    n_items: int = 16, repeats: int = 3, snapshots: dict | None = None,
    audit: bool = False, profile_shares: dict | None = None,
) -> float:
    """Copier renovation throughput: stale copies refreshed per second.

    End-to-end: crash a site, commit ``n_items`` updates it misses,
    power it back on, and drain the eager copiers. When ``snapshots`` is
    given, the last run's global metrics snapshot is stored under
    ``"copier_refresh"`` — the trajectory keeps it so a throughput shift
    can be traced to a behaviour shift (more aborts, more messages)
    rather than guessed at.

    ``audit=True`` runs the same scenario with the online protocol
    auditor attached (``copier_refresh_audited_per_s`` in the suite):
    the gap against the plain number is the price of live invariant
    checking, recorded in the trajectory but not gated — the <5%
    ``--max-overhead`` gate covers the auditor-*off* path, which stays
    hook-free.

    ``profile_shares``, if given, attaches a host-CPU profiler and
    fills the dict with the run's per-subsystem CPU shares (see
    :func:`profile_shares`); such runs are for attribution, not timing.
    """
    from repro.baselines import build_rowaa_system
    from repro.net.latency import ConstantLatency
    from repro.txn.config import TxnConfig

    def run() -> int:
        kernel = Kernel(seed=0)
        system = build_rowaa_system(
            kernel, 3, {f"X{i}": 0 for i in range(n_items)},
            latency=ConstantLatency(1.0), config=TxnConfig(),
        )
        profiler = None
        if profile_shares is not None:
            from repro.obs.profiler import HostProfiler

            profiler = HostProfiler()
            profiler.attach(kernel)
        if audit:
            from repro.audit import attach_auditor

            attach_auditor(system)
        system.crash(3)
        kernel.run(until=kernel.now + 40)

        def write_program(item, value):
            def program(ctx):
                yield from ctx.write(item, value)
            return program

        for index in range(n_items):
            kernel.run(
                system.submit_with_retry(1, write_program(f"X{index}", index),
                                         attempts=4)
            )
        kernel.run(system.power_on(3))
        kernel.run(until=kernel.now + 2000)
        system.stop()
        copied = system.copiers[3].stats.copies_performed
        assert copied >= n_items
        if snapshots is not None:
            snapshots["copier_refresh"] = system.obs.registry.snapshot()["global"]
        if profiler is not None and profile_shares is not None:
            profile_shares.clear()
            profile_shares.update(
                {label: round(share, 4) for label, share in profiler.shares().items()}
            )
        return copied

    return _best_of(run, repeats)


def bench_txn_throughput(
    n_txns: int = 200,
    n_clients: int = 4,
    commit_mode: str = "sync_2pc",
    snapshots: dict | None = None,
) -> dict:
    """Closed-loop replicated read-modify-write load, one commit mode.

    ``n_clients`` concurrent clients (homes round-robined over the
    sites) each run ``n_txns // n_clients`` RMW transactions on a
    private item, back to back: the moment one transaction is acked the
    next begins. Throughput is measured in *simulated* seconds — client
    transactions completed per sim-time unit from boot to the last
    client ack — so the number is deterministic and machine-independent:
    it isolates exactly what the commit path costs in network rounds
    (2PC batching, pipelined prepares, quorum ack-early), not how fast
    the host interpreter is. Disjoint write sets keep the comparison
    free of abort/retry noise.

    Returns ``{"throughput": txns per sim second, "p50": ..., "p99":
    ...}`` where the percentiles are over begin-to-client-ack latency
    (``TmStats.ack_latencies``) in sim-time units. With ``snapshots``,
    the run's global metrics snapshot lands under
    ``"txn_throughput[_<mode>]"`` — it carries the ``rpc.batches`` /
    ``rpc.decisions_piggybacked`` counters that explain a throughput
    shift.
    """
    from repro.baselines import StrictROWA
    from repro.harness.metrics import percentile
    from repro.net.latency import ConstantLatency
    from repro.system import DatabaseSystem
    from repro.txn.config import TxnConfig

    per_client = max(1, n_txns // n_clients)
    kernel = Kernel(seed=0)
    system = DatabaseSystem(
        kernel, 3, {f"X{c}": 0 for c in range(n_clients)},
        strategy_factory=lambda _s: StrictROWA(),
        latency=ConstantLatency(1.0),
        config=TxnConfig(commit_mode=commit_mode),
    )
    system.boot()

    def client(c: int):
        item = f"X{c}"
        home = 1 + c % len(system.tms)

        def increment(ctx):
            value = yield from ctx.read(item)
            yield from ctx.write(item, value + 1)

        for _ in range(per_client):
            yield from system.tms[home].run(increment)

    procs = [
        kernel.process(client(c), name=f"bench-client{c}")
        for c in range(n_clients)
    ]
    for proc in procs:
        kernel.run(proc)
    elapsed = kernel.now  # last client ack; drains may still be open
    kernel.run(until=kernel.now + 200.0)  # let async drains finish
    system.stop()
    for c in range(n_clients):
        assert system.copy_value(1, f"X{c}") == per_client
    latencies = [
        latency
        for tm in system.tms.values()
        for latency in tm.stats.ack_latencies
    ]
    if snapshots is not None:
        key = "txn_throughput" + (
            "" if commit_mode == "sync_2pc" else f"_{commit_mode}"
        )
        snapshots[key] = system.obs.registry.snapshot()["global"]
    return {
        "throughput": per_client * n_clients / elapsed,
        "p50": percentile(latencies, 50),
        "p99": percentile(latencies, 99),
    }


def bench_ro_read_throughput(
    n_txns: int = 300, batch: int = 8, repeats: int = 3
) -> float:
    """Snapshot-read service rate: RO item reads served per wall second.

    Closed loop of ``beginRO`` transactions at one site, each reading a
    ``batch`` of items at its pinned cut. The whole path is lock-free
    and local (one ``dm.read_snapshot`` round against the multiversion
    store), so this measures exactly the per-read cost of the version
    chains — binary-search floor lookup plus the audit/stats hooks.
    Wall-clock: sim-time throughput is meaningless here because local
    serves complete without advancing the clock.
    """
    from repro.baselines import StrictROWA
    from repro.net.latency import ConstantLatency
    from repro.system import DatabaseSystem
    from repro.txn.config import TxnConfig

    def run() -> int:
        kernel = Kernel(seed=0)
        items = {f"X{i}": 0 for i in range(batch)}
        system = DatabaseSystem(
            kernel, 3, items,
            strategy_factory=lambda _s: StrictROWA(),
            latency=ConstantLatency(1.0), config=TxnConfig(),
        )
        system.boot()

        def write_all(ctx):
            for item in items:
                yield from ctx.write(item, 1)

        kernel.run(system.submit(1, write_all))
        names = tuple(items)

        def ro_loop():
            for _ in range(n_txns):
                def ro_program(ctx):
                    values = yield from ctx.read_many(names)
                    return values
                yield from system.tms[1].run_ro(ro_program)

        kernel.run(kernel.process(ro_loop(), name="bench-ro"))
        system.stop()
        served = system.mvcc[1].stats.ro_served
        assert served >= n_txns * batch
        return served

    return _best_of(run, repeats)


def bench_txn_wall(
    n_txns: int = 200, n_clients: int = 4, mvcc: bool = True,
    repeats: int = 3, profile_shares: dict | None = None,
) -> float:
    """Wall-clock RMW commit rate with the mvcc write hooks on or off.

    The same closed-loop load as :func:`bench_txn_throughput`, timed in
    *wall* seconds: the sim-time twin cannot see the version-chain
    observe hook's cost because it runs between events. The on/off pair
    is the writer-overhead gate (:func:`ro_overhead_fraction`): snapshot
    reads must not tax the RW write path by more than ``--max-overhead``.
    ``profile_shares`` works as in :func:`bench_copier_refresh`.
    """
    from repro.baselines import StrictROWA
    from repro.net.latency import ConstantLatency
    from repro.system import DatabaseSystem
    from repro.txn.config import TxnConfig

    per_client = max(1, n_txns // n_clients)

    def run() -> int:
        kernel = Kernel(seed=0)
        system = DatabaseSystem(
            kernel, 3, {f"X{c}": 0 for c in range(n_clients)},
            strategy_factory=lambda _s: StrictROWA(),
            latency=ConstantLatency(1.0),
            config=TxnConfig(mvcc=mvcc),
        )
        profiler = None
        if profile_shares is not None:
            from repro.obs.profiler import HostProfiler

            profiler = HostProfiler()
            profiler.attach(kernel)
        system.boot()

        def client(c: int):
            item = f"X{c}"
            home = 1 + c % len(system.tms)

            def increment(ctx):
                value = yield from ctx.read(item)
                yield from ctx.write(item, value + 1)

            for _ in range(per_client):
                yield from system.tms[home].run(increment)

        procs = [
            kernel.process(client(c), name=f"bench-wall{c}")
            for c in range(n_clients)
        ]
        for proc in procs:
            kernel.run(proc)
        system.stop()
        if profiler is not None and profile_shares is not None:
            profile_shares.clear()
            profile_shares.update(
                {label: round(share, 4) for label, share in profiler.shares().items()}
            )
        return per_client * n_clients

    # One discarded warmup run: the on/off twins are compared as a
    # ratio, and the first time this code path executes in a process it
    # pays the adaptive-interpreter specialization cost — measured at
    # up to ~20% on the first twin, ~0 once warm. Self-warming keeps
    # the gate honest regardless of which twin the suite times first.
    run()
    return _best_of(run, repeats)


def ro_overhead_fraction(metrics: dict) -> float | None:
    """Writer-side cost of the mvcc subsystem on the RMW commit bench.

    ``1 - on/off``: the fraction of wall-clock transaction throughput
    lost to maintaining version chains on every committed write
    (``txn_wall_per_s`` vs its ``_mvcc_off`` twin). Clamped at 0;
    ``None`` when either metric is missing.
    """
    with_mvcc = metrics.get("txn_wall_per_s")
    without = metrics.get("txn_wall_mvcc_off_per_s")
    if not with_mvcc or not without:
        return None
    return max(0.0, 1.0 - with_mvcc / without)


def overhead_fraction(metrics: dict) -> float | None:
    """Instrumentation overhead on the kernel-events bench.

    ``1 - obs_off/plain``: the fraction of kernel event throughput lost
    to carrying a disabled observability bundle. Negative values (noise
    in the bundle's favour) are clamped to 0. ``None`` when either
    metric is missing.
    """
    plain = metrics.get("kernel_events_per_s")
    with_obs = metrics.get("kernel_events_obs_off_per_s")
    if not plain or not with_obs:
        return None
    return max(0.0, 1.0 - with_obs / plain)


def attribution_overhead_fraction(metrics: dict) -> float | None:
    """Live-sampler overhead on the kernel-events bench.

    ``1 - sampled/plain``: the fraction of kernel event throughput lost
    to a running :class:`~repro.obs.timeseries.WindowedSampler` timer —
    the cost of the ``repro latency`` telemetry when it is switched on.
    Clamped at 0; ``None`` when either metric is missing.
    """
    plain = metrics.get("kernel_events_per_s")
    sampled = metrics.get("kernel_events_sampled_per_s")
    if not plain or not sampled:
        return None
    return max(0.0, 1.0 - sampled / plain)


def profiler_overhead_fraction(metrics: dict) -> float | None:
    """Host-CPU-profiler overhead on the kernel-events bench.

    ``1 - profiled/plain``: the fraction of kernel event throughput
    lost to running the drain loop through ``Kernel._run_profiled``
    with its run-length-batched clock reads — the cost of
    ``repro profile``'s attribution view when it is switched on.
    Clamped at 0; ``None`` when either metric is missing.
    """
    plain = metrics.get("kernel_events_per_s")
    profiled = metrics.get("kernel_events_profiled_per_s")
    if not plain or not profiled:
        return None
    return max(0.0, 1.0 - profiled / plain)


def sanitize_overhead_fraction(metrics: dict) -> float | None:
    """Sanitizer-off overhead on the kernel-events bench.

    ``1 - sanitize_off/plain``: the fraction of kernel event throughput
    lost after a schedule sanitizer has been attached and detached —
    which must be nothing, since the default (off) path is required to
    be byte-identical to the unperturbed kernel. A breach means a
    residual policy/detector or a hook left on the hot loop. Clamped at
    0; ``None`` when either metric is missing.
    """
    plain = metrics.get("kernel_events_per_s")
    sanitize_off = metrics.get("kernel_events_sanitize_off_per_s")
    if not plain or not sanitize_off:
        return None
    return max(0.0, 1.0 - sanitize_off / plain)


def profile_shares(quick: bool = False) -> dict:
    """Per-subsystem host-CPU shares of the two system-level workloads.

    Runs a small copier-refresh recovery and a short RMW commit loop
    with a :class:`~repro.obs.profiler.HostProfiler` attached and
    records where the interpreter actually spends its time (shares
    rounded to 4 decimals). Stored under the trajectory entry's
    ``obs.profile`` key; ``bench --check`` compares it against the
    baseline entry and prints *advisory* drift lines (see
    :func:`share_drift`) — shares move with interpreter version and
    workload tuning, so they inform rather than gate. Untimed: these
    runs exist for attribution, not throughput.
    """
    copier: dict = {}
    bench_copier_refresh(
        n_items=4 if quick else 8, repeats=1, profile_shares=copier
    )
    txn: dict = {}
    bench_txn_wall(
        n_txns=20 if quick else 60, repeats=1, profile_shares=txn
    )
    return {"copier_refresh": copier, "txn_rmw": txn}


def share_drift(
    baseline: dict, current: dict, threshold: float = 0.10
) -> list[str]:
    """Advisory CPU-share drift lines between two ``obs.profile`` maps.

    Reports every subsystem whose share of a common workload moved by
    more than ``threshold`` (10 points by default) in either direction.
    Advisory only: the lines are printed by ``bench --check`` but never
    fail the gate.
    """
    lines = []
    for workload in sorted(set(baseline) & set(current)):
        old_map = baseline[workload] or {}
        new_map = current[workload] or {}
        for label in sorted(set(old_map) | set(new_map)):
            old = float(old_map.get(label, 0.0))
            new = float(new_map.get(label, 0.0))
            if abs(new - old) > threshold:
                lines.append(
                    f"profile share drift {workload}/{label}: "
                    f"{old:.1%} -> {new:.1%}  (advisory)"
                )
    return lines


def run_suite(quick: bool = False, snapshots: dict | None = None) -> dict:
    """Run every microbench; returns ``{metric: value}``.

    ``snapshots``, if given, is filled with the global metrics snapshot
    of the system-level benches (see :func:`bench_copier_refresh`) plus
    the per-subsystem host-CPU shares under ``"profile"`` (see
    :func:`profile_shares`).
    """
    n_txns = 60 if quick else 200
    sync = bench_txn_throughput(
        n_txns=n_txns, commit_mode="sync_2pc", snapshots=snapshots
    )
    async_q = bench_txn_throughput(
        n_txns=n_txns, commit_mode="async_quorum", snapshots=snapshots
    )
    commit_metrics = {
        "txn_throughput_per_s": sync["throughput"],
        "txn_throughput_async_per_s": async_q["throughput"],
        "txn_commit_p50": sync["p50"],
        "txn_commit_p99": sync["p99"],
        "txn_commit_p50_async": async_q["p50"],
        "txn_commit_p99_async": async_q["p99"],
    }
    mvcc_metrics = {
        "ro_read_throughput_per_s": bench_ro_read_throughput(
            n_txns=100 if quick else 300, repeats=2 if quick else 3
        ),
        "txn_wall_per_s": bench_txn_wall(
            n_txns=n_txns, mvcc=True, repeats=2 if quick else 3
        ),
        "txn_wall_mvcc_off_per_s": bench_txn_wall(
            n_txns=n_txns, mvcc=False, repeats=2 if quick else 3
        ),
    }
    if snapshots is not None:
        snapshots["profile"] = profile_shares(quick=quick)
    if quick:
        return {
            "kernel_events_per_s": bench_kernel_events(n=4_000, repeats=3),
            "kernel_events_obs_off_per_s": bench_kernel_events_obs_off(
                n=4_000, repeats=3
            ),
            "kernel_events_sampled_per_s": bench_kernel_events_sampled(
                n=4_000, repeats=3
            ),
            "kernel_events_profiled_per_s": bench_kernel_events_profiled(
                n=4_000, repeats=3
            ),
            "kernel_events_sanitize_off_per_s": bench_kernel_events_sanitize_off(
                n=4_000, repeats=3
            ),
            "timeout_churn_per_s": bench_timeout_churn(n=4_000, repeats=3),
            "copier_refresh_per_s": bench_copier_refresh(
                n_items=8, repeats=1, snapshots=snapshots
            ),
            "copier_refresh_audited_per_s": bench_copier_refresh(
                n_items=8, repeats=1, audit=True
            ),
            **commit_metrics,
            **mvcc_metrics,
        }
    return {
        "kernel_events_per_s": bench_kernel_events(),
        "kernel_events_obs_off_per_s": bench_kernel_events_obs_off(),
        "kernel_events_sampled_per_s": bench_kernel_events_sampled(),
        "kernel_events_profiled_per_s": bench_kernel_events_profiled(),
        "kernel_events_sanitize_off_per_s": bench_kernel_events_sanitize_off(),
        "timeout_churn_per_s": bench_timeout_churn(),
        "copier_refresh_per_s": bench_copier_refresh(snapshots=snapshots),
        "copier_refresh_audited_per_s": bench_copier_refresh(audit=True),
        **commit_metrics,
        **mvcc_metrics,
    }


# -- trajectory persistence ----------------------------------------------------


def load_trajectory(path: str) -> dict:
    """Read a trajectory file; an empty skeleton if absent/corrupt."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return {"benchmark": "kernel", "entries": []}
    data.setdefault("entries", [])
    return data


def append_entry(
    path: str,
    metrics: dict,
    label: str,
    quick: bool = False,
    snapshots: dict | None = None,
) -> dict:
    """Append one labelled run to the trajectory at ``path``."""
    trajectory = load_trajectory(path)
    entry = {
        "label": label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": quick,
        "metrics": {key: round(value, 1) for key, value in metrics.items()},
    }
    if snapshots:
        entry["obs"] = snapshots
    trajectory["entries"].append(entry)
    with open(path, "w") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    return entry


def compare(
    baseline_metrics: dict,
    metrics: dict,
    max_regression: float = 0.30,
    gate_metric: str = GATE_METRIC,
) -> tuple[bool, str]:
    """Regression verdict of ``metrics`` against ``baseline_metrics``.

    Returns ``(ok, report)``; ``ok`` is False when the gate metric lost
    more than ``max_regression`` of its baseline value. Other metrics
    are reported but advisory (end-to-end benches are noisier).
    """
    lines = []
    ok = True
    for key in sorted(set(baseline_metrics) | set(metrics)):
        old = baseline_metrics.get(key)
        new = metrics.get(key)
        if not old or new is None:
            lines.append(f"{key}: baseline n/a, now {new}")
            continue
        ratio = new / old
        marker = ""
        if key == gate_metric and ratio < 1.0 - max_regression:
            ok = False
            marker = f"  << REGRESSION (>{max_regression:.0%} drop)"
        lines.append(f"{key}: {old:.1f} -> {new:.1f}  ({ratio:.2f}x){marker}")
    return ok, "\n".join(lines)


def latest_entry(trajectory: dict, quick: bool | None = None) -> dict | None:
    """The most recent entry, optionally filtered by quick/full mode."""
    for entry in reversed(trajectory.get("entries", [])):
        if quick is None or bool(entry.get("quick")) == quick:
            return entry
    entries = trajectory.get("entries", [])
    return entries[-1] if entries else None

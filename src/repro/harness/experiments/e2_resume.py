"""E2 — time to resume normal operation after a reboot.

Paper claim (§1, §3.4): "as soon as the recovering site has successfully
informed the other operational sites of its new status, it becomes fully
operational. The recovery of the data items proceeds concurrently with
user transactions."

Design: crash one site, commit U updates that miss it, reboot it, and
measure (a) time from power-on to accepting user transactions and
(b) time until its data is fully caught up. Compare:

* ``rowaa``  — §3.4 + copiers: (a) is a constant few round trips,
  (b) grows with U but runs in the background;
* ``spooler`` — Hammer–Shipman redo: (a) itself grows with U because the
  replay happens *before* rejoining;
* ``directories`` — Bernstein–Goodman INCLUDE: (a) grows with the number
  of resident items (one status transaction each), independent of U.

Expected shape: rowaa's time-to-operational is flat in U and the
smallest; spooler's grows linearly with U; directories' is flat but
sits at the per-item INCLUDE cost ∝ #items.
"""

from __future__ import annotations

from repro.harness.parallel import Cell, run_cells
from repro.harness.runner import build_scheme, build_traced_scheme, settle
from repro.harness.tables import Table
from repro.workload import WorkloadSpec

SCHEMES = ("rowaa", "spooler", "directories")


def plan(
    seed: int = 0,
    n_sites: int = 3,
    n_items: int = 24,
    missed_updates: tuple[int, ...] = (0, 8, 24, 48),
    schemes: tuple[str, ...] = SCHEMES,
    replay_cost: float = 0.5,
) -> list[Cell]:
    """One cell per (scheme × missed-update count)."""
    return [
        Cell(
            "e2",
            _one_cell,
            dict(
                scheme=scheme, seed=seed, n_sites=n_sites, n_items=n_items,
                missed=missed, replay_cost=replay_cost,
            ),
            dict(scheme=scheme, missed_updates=missed),
        )
        for scheme in schemes
        for missed in missed_updates
    ]


def assemble(
    cells: list[Cell], results: list, n_sites: int = 3, n_items: int = 24,
    **_params,
) -> Table:
    table = Table(
        f"E2: recovery latency vs updates missed (n={n_sites}, items={n_items})",
        ["scheme", "missed_updates", "t_operational", "t_caught_up"],
    )
    for cell, (t_op, t_caught) in zip(cells, results):
        table.add_row(
            scheme=cell.tag["scheme"],
            missed_updates=cell.tag["missed_updates"],
            t_operational=t_op,
            t_caught_up=t_caught,
        )
    return table


def run(
    seed: int = 0,
    n_sites: int = 3,
    n_items: int = 24,
    missed_updates: tuple[int, ...] = (0, 8, 24, 48),
    schemes: tuple[str, ...] = SCHEMES,
    replay_cost: float = 0.5,
    jobs: int | None = None,
) -> Table:
    """Resume/caught-up latency over (scheme × missed updates)."""
    params = dict(
        seed=seed, n_sites=n_sites, n_items=n_items,
        missed_updates=missed_updates, schemes=schemes, replay_cost=replay_cost,
    )
    cells = plan(**params)
    results, _timings = run_cells(cells, jobs=jobs)
    return assemble(cells, results, **params)


def _write_program(item, value):
    def program(ctx):
        yield from ctx.write(item, value)

    return program


def _one_cell(scheme, seed, n_sites, n_items, missed, replay_cost):
    spec = WorkloadSpec(n_items=n_items)
    kwargs = {}
    if scheme == "spooler":
        kwargs["replay_cost_per_update"] = replay_cost
    kernel, system = build_scheme(
        scheme, seed * 37 + missed, n_sites, spec.initial_items(), **kwargs
    )
    victim = n_sites
    system.crash(victim)
    settle(kernel, system, 80.0)
    for index in range(missed):
        item = f"X{index % n_items}"
        proc = system.submit_with_retry(1, _write_program(item, index), attempts=4)
        kernel.run(proc)

    power_at = kernel.now
    recovery = system.power_on(victim)
    kernel.run(recovery)
    t_operational = kernel.now - power_at
    t_caught_up = _caught_up_time(kernel, system, scheme, victim, power_at)
    system.stop()
    return t_operational, t_caught_up


def _caught_up_time(kernel, system, scheme, victim, power_at):
    if scheme == "rowaa":
        kernel.run(until=kernel.now + 2000)
        drained = system.copiers[victim].drained_at
        return (drained - power_at) if drained is not None else None
    # Spooler replays before rejoining; directories refresh during the
    # INCLUDE pass: caught-up coincides with operational.
    return kernel.now - power_at


def traced_scenario(
    seed: int = 0, audit: bool = False,
    sample_period: float | None = None, profile: bool = False,
    schedule: object = None, races: bool = False,
):
    """One traced rowaa cell for ``repro trace``: crash, miss, reboot, drain.

    The canonical observability scenario: its span tree contains user
    transactions with remote RPC children (the missed updates), the
    type-1 control transaction of the §3.4 recovery, and the copier
    refreshes that drain the missing list afterwards.
    """
    n_sites, n_items, missed = 3, 8, 6
    spec = WorkloadSpec(n_items=n_items)
    kernel, system, obs = build_traced_scheme(
        "rowaa", seed * 37 + missed, n_sites, spec.initial_items(),
        audit=audit, sample_period=sample_period, profile=profile,
        schedule=schedule, races=races,
    )
    victim = n_sites
    system.crash(victim)
    settle(kernel, system, 80.0)
    for index in range(missed):
        item = f"X{index % n_items}"
        kernel.run(system.submit_with_retry(1, _write_program(item, index), attempts=4))

    power_at = kernel.now
    kernel.run(system.power_on(victim))
    t_operational = kernel.now - power_at
    kernel.run(until=kernel.now + 1500)  # let copiers drain
    system.stop()
    kernel.run(until=kernel.now + 10)
    drained = system.copiers[victim].drained_at
    return kernel, system, obs, {
        "missed_updates": missed,
        "t_operational": t_operational,
        "t_caught_up": (drained - power_at) if drained is not None else None,
    }

"""E11 — multiversion snapshot reads under a read-heavy mix + outages.

The repro.mvcc headline experiment: the same 95/5 read-heavy closed-loop
workload with random mid-run outages, run once per read path — snapshot
(``beginRO`` via the per-site multiversion store: no locks, no 2PC, no
deadlock participation, and a RECOVERING home still answers from its
durable stale cut) against the lock-based baseline (the identical
read-only programs replayed through ordinary strict-2PL transactions on
draw-for-draw identical schedules; ``ClientPool(force_locking=True)``).

What the paper's recovery story gains: under the locking baseline a
recovering site refuses every read until the §3.4 procedure completes
and `become_operational` fires, and even on UP sites read-only work
queues behind writer X locks. The snapshot path answers with an explicit
staleness bound instead — ``ro_recovering`` counts item reads served
while the serving site was *provably behind* (RECOVERING or holding
unreadable copies), which the baseline can only score as refusals.

Expected shape: ``ro_recovering`` strictly positive for the mvcc variant
and structurally zero for locking; RO p50/p99 lower for mvcc (no lock
waits, single local round) and ``lock_waits`` much lower system-wide
(the 95% read share stops contending); ``one_sr_ok`` / ``theorem3_ok``
stay at 100% for both variants — snapshot reads never enter the RW
history, so the §4 guarantees are untouched by construction, and the
traced variants additionally run the ``mvcc.snapshot_consistency`` /
``mvcc.gc_pinned`` auditor rules over every served version.
"""

from __future__ import annotations

from repro.core.nominal import db_item_filter
from repro.harness.metrics import percentile
from repro.harness.parallel import Cell, run_cells
from repro.harness.runner import build_scheme, build_traced_scheme, quiesce
from repro.harness.tables import Table
from repro.histories import check_one_sr, check_theorem3
from repro.sim.rng import RngRegistry
from repro.txn.config import TxnConfig
from repro.workload import ClientPool, FailureSchedule, WorkloadGenerator, WorkloadSpec

VARIANTS = ("locking", "mvcc")


def plan(
    seed: int = 0,
    trials: int = 4,
    n_sites: int = 4,
    n_items: int = 32,
    duration: float = 600.0,
    variants: tuple[str, ...] = VARIANTS,
) -> list[Cell]:
    """``trials`` cells per read path, same seeds across variants — the
    workloads and failure schedules are draw-for-draw identical, so
    every row difference is the read path."""
    return [
        Cell(
            "e11",
            _one_trial,
            dict(
                variant=variant, seed=seed * 6971 + trial,
                n_sites=n_sites, n_items=n_items, duration=duration,
            ),
            dict(variant=variant, trial=trial),
        )
        for variant in variants
        for trial in range(trials)
    ]


def assemble(
    cells: list[Cell], results: list, trials: int = 4, **_params
) -> Table:
    table = Table(
        f"E11: snapshot reads vs lock-based reads, 95/5 mix + failures "
        f"({trials} random runs each)",
        [
            "variant", "runs", "ro_committed", "ro_refused",
            "ro_recovering", "ro_p50", "ro_p99",
            "rw_committed", "lock_waits", "one_sr_ok", "theorem3_ok",
        ],
    )
    groups: dict[str, list[dict]] = {}
    for cell, verdict in zip(cells, results):
        groups.setdefault(cell.tag["variant"], []).append(verdict)
    for variant in sorted(groups):  # locking baseline first
        verdicts = groups[variant]
        ro_latencies = [x for v in verdicts for x in v["ro_latencies"]]
        table.add_row(
            variant=variant,
            runs=len(verdicts),
            ro_committed=sum(v["ro_committed"] for v in verdicts),
            ro_refused=sum(v["ro_refused"] for v in verdicts),
            ro_recovering=sum(v["ro_recovering"] for v in verdicts),
            ro_p50=percentile(ro_latencies, 50),
            ro_p99=percentile(ro_latencies, 99),
            rw_committed=sum(v["rw_committed"] for v in verdicts),
            lock_waits=sum(v["lock_waits"] for v in verdicts),
            one_sr_ok=sum(1 for v in verdicts if v["one_sr"]),
            theorem3_ok=sum(1 for v in verdicts if v["theorem3"]),
        )
    return table


def run(
    seed: int = 0,
    trials: int = 4,
    n_sites: int = 4,
    n_items: int = 32,
    duration: float = 600.0,
    variants: tuple[str, ...] = VARIANTS,
    jobs: int | None = None,
) -> Table:
    """Read-path comparison over (variant × random trials)."""
    params = dict(
        seed=seed, trials=trials, n_sites=n_sites, n_items=n_items,
        duration=duration, variants=variants,
    )
    cells = plan(**params)
    results, _timings = run_cells(cells, jobs=jobs)
    return assemble(cells, results, **params)


def _spec(n_items: int) -> WorkloadSpec:
    """Read-heavy 95/5: 90% of transactions are pure snapshot reads and
    the RW remainder writes half its operations, so roughly one logical
    operation in twenty is a WRITE — the replicated-OLTP shape where
    lock-based read availability hurts the most."""
    return WorkloadSpec(
        n_items=n_items, ops_per_txn=4, write_fraction=0.5, zipf_s=0.0,
        ro_fraction=0.9,
    )


def _one_trial(variant, seed, n_sites, n_items, duration):
    spec = _spec(n_items)
    kernel, system = build_scheme(
        "rowaa", seed, n_sites, spec.initial_items(),
        txn_config=TxnConfig(rpc_timeout=10.0),
    )
    rngs = RngRegistry(seed)
    # Denser outages than E10: the headline is reads served *during*
    # recovery windows, so the schedule must actually open them.
    failures = FailureSchedule.random_failures(
        system.cluster.site_ids, rngs.stream(FailureSchedule.RNG_STREAM),
        horizon=duration * 0.8, mtbf=500, mttr=60,
    )
    failures.apply(system)
    pool = ClientPool(
        system, WorkloadGenerator(spec, rngs.stream("workload.generator")),
        n_clients=6, think_time=0.5, retries=2,
        force_locking=(variant == "locking"),
    )
    pool.start(duration)
    kernel.run(until=duration)
    quiesce(kernel, system, grace=800.0)
    return _verdict(variant, system, pool)


def _verdict(variant, system, pool):
    dms = list(system.dms.values())
    return {
        "variant": variant,
        "ro_committed": pool.stats.ro_committed,
        "ro_refused": pool.stats.ro_refused,
        "ro_latencies": pool.stats.ro_latencies,
        # Item reads answered while the serving site was provably behind
        # (RECOVERING or holding unreadable copies) — zero by
        # construction for the locking baseline, which refuses instead.
        "ro_recovering": sum(
            store.stats.ro_served_stale for store in system.mvcc.values()
        ),
        "rw_committed": pool.stats.committed - pool.stats.ro_committed,
        "lock_waits": sum(dm.lock_manager.stats_waits for dm in dms),
        "one_sr": check_one_sr(
            system.recorder, item_filter=db_item_filter
        ).ok,
        "theorem3": check_theorem3(system.recorder).ok,
    }


def _traced(
    seed: int, variant: str, audit: bool,
    sample_period: float | None = None, profile: bool = False,
    schedule: object = None, races: bool = False,
):
    """One traced run of ``variant`` for ``repro trace/metrics/audit/latency``."""
    n_sites, n_items, duration = 4, 32, 400.0
    spec = _spec(n_items)
    kernel, system, obs = build_traced_scheme(
        "rowaa", seed, n_sites, spec.initial_items(), audit=audit,
        sample_period=sample_period, profile=profile,
        schedule=schedule, races=races,
        txn_config=TxnConfig(rpc_timeout=10.0),
    )
    rngs = RngRegistry(seed)
    failures = FailureSchedule.random_failures(
        system.cluster.site_ids, rngs.stream(FailureSchedule.RNG_STREAM),
        horizon=duration * 0.8, mtbf=400, mttr=60,
    )
    failures.apply(system)
    pool = ClientPool(
        system, WorkloadGenerator(spec, rngs.stream("workload.generator")),
        n_clients=4, think_time=0.5, retries=2,
        force_locking=(variant == "locking"),
        per_client_streams=True,
    )
    pool.start(duration)
    kernel.run(until=duration)
    quiesce(kernel, system, grace=800.0)
    verdict = _verdict(variant, system, pool)
    ro_latencies = verdict.pop("ro_latencies")
    verdict["ro_p50"] = percentile(ro_latencies, 50)
    verdict["ro_p99"] = percentile(ro_latencies, 99)
    return kernel, system, obs, verdict


def traced_scenario(
    seed: int = 0, audit: bool = False,
    sample_period: float | None = None, profile: bool = False,
    schedule: object = None, races: bool = False,
):
    """The snapshot-read path under outages (``repro audit e11``)."""
    return _traced(seed, "mvcc", audit, sample_period, profile,
                   schedule=schedule, races=races)


def traced_scenario_sync(
    seed: int = 0, audit: bool = False,
    sample_period: float | None = None, profile: bool = False,
    schedule: object = None, races: bool = False,
):
    """The lock-based baseline on the identical schedule (``e11sync``)."""
    return _traced(seed, "locking", audit, sample_period, profile,
                   schedule=schedule, races=races)

"""E6 — resilience to multiple and cascading failures.

Paper claim (§1, §3.4): the algorithm "is resilient to multiple site
failures, even if a site crashes while another site is recovering. A
failed site can recover as long as there is at least one operational
site in the system"; a crash during the type-1 transaction is handled
by a type-2 exclusion and a retry.

Design: randomized trials per scenario; report the recovery success
rate, mean type-1 attempts, and type-2 exclusions run by the recovery
procedure itself.

Scenarios:
* ``single``            — one crash, quiet recovery (baseline: 1 attempt);
* ``crash-during-t1``   — a second site crashes inside the recovery
                          window, forcing the §3.4 step-4 path;
* ``last-survivor``     — all sites but one are down; recover one against
                          the single survivor;
* ``cascade``           — sites crash and recover in a rolling wave.

Expected shape: 100% success everywhere; attempts > 1 only in the
disturbed scenarios.
"""

from __future__ import annotations

import random

from repro.harness.metrics import mean
from repro.harness.parallel import Cell, run_cells
from repro.harness.runner import build_scheme, build_traced_scheme, settle
from repro.harness.tables import Table
from repro.workload import WorkloadSpec

SCENARIOS = ("single", "crash-during-t1", "last-survivor", "cascade")


def plan(
    seed: int = 0,
    trials: int = 5,
    n_sites: int = 4,
    n_items: int = 8,
    scenarios: tuple[str, ...] = SCENARIOS,
) -> list[Cell]:
    """``trials`` cells per scenario; a cell returns recovery records."""
    return [
        Cell(
            "e6",
            _one_trial,
            dict(
                scenario=scenario, seed=seed * 1000 + trial,
                n_sites=n_sites, n_items=n_items,
            ),
            dict(scenario=scenario, trial=trial),
        )
        for scenario in scenarios
        for trial in range(trials)
    ]


def assemble(
    cells: list[Cell], results: list, trials: int = 5, **_params
) -> Table:
    table = Table(
        f"E6: recovery under multiple failures ({trials} trials each)",
        [
            "scenario",
            "trials",
            "recoveries",
            "succeeded",
            "mean_type1_attempts",
            "type2_by_recoverer",
        ],
    )
    groups: dict[str, list] = {}
    for cell, trial_records in zip(cells, results):
        groups.setdefault(cell.tag["scenario"], []).extend(trial_records)
    for scenario, records in groups.items():
        table.add_row(
            scenario=scenario,
            trials=trials,
            recoveries=len(records),
            succeeded=sum(1 for record in records if record.succeeded),
            mean_type1_attempts=mean([record.type1_attempts for record in records]),
            type2_by_recoverer=sum(record.type2_runs for record in records),
        )
    return table


def run(
    seed: int = 0,
    trials: int = 5,
    n_sites: int = 4,
    n_items: int = 8,
    scenarios: tuple[str, ...] = SCENARIOS,
    jobs: int | None = None,
) -> Table:
    """Resilience table over scenarios."""
    params = dict(
        seed=seed, trials=trials, n_sites=n_sites, n_items=n_items,
        scenarios=scenarios,
    )
    cells = plan(**params)
    results, _timings = run_cells(cells, jobs=jobs)
    return assemble(cells, results, **params)


def _one_trial(scenario, seed, n_sites, n_items):
    spec = WorkloadSpec(n_items=n_items)
    kernel, system = build_scheme("rowaa", seed, n_sites, spec.initial_items())
    rng = random.Random(seed)

    if scenario == "single":
        system.crash(n_sites)
        settle(kernel, system, 60.0)
        kernel.run(system.power_on(n_sites))

    elif scenario == "crash-during-t1":
        system.crash(n_sites)
        settle(kernel, system, 60.0)
        recovery = system.power_on(n_sites)
        saboteur_site = 1 + rng.randrange(n_sites - 1)

        def saboteur():
            yield kernel.timeout(0.5 + rng.random() * 4.0)
            if not system.cluster.site(saboteur_site).is_down:
                system.crash(saboteur_site)

        kernel.process(saboteur())
        kernel.run(recovery)
        settle(kernel, system, 100.0)
        if system.cluster.site(saboteur_site).is_down:
            kernel.run(system.power_on(saboteur_site))

    elif scenario == "last-survivor":
        for site_id in range(2, n_sites + 1):
            system.crash(site_id)
            settle(kernel, system, 40.0)
        kernel.run(system.power_on(n_sites))
        for site_id in range(2, n_sites):
            kernel.run(system.power_on(site_id))

    elif scenario == "cascade":
        for wave in range(3):
            victim = 1 + (wave % n_sites)
            system.crash(victim)
            settle(kernel, system, 30.0 + rng.random() * 30.0)
            kernel.run(system.power_on(victim))
            settle(kernel, system, 20.0)

    else:  # pragma: no cover - guarded by SCENARIOS
        raise ValueError(scenario)

    settle(kernel, system, 200.0)
    system.stop()
    return system.recovery_records()


def traced_scenario(
    seed: int = 0, audit: bool = False,
    sample_period: float | None = None, profile: bool = False,
    schedule: object = None, races: bool = False,
):
    """One traced crash-during-t1 trial for ``repro trace``.

    A second site crashes inside the recovery window, forcing the §3.4
    step-4 path: the trace shows the recovery span containing a failed
    type-1 attempt, the type-2 exclusion, and the retry.
    """
    n_sites, n_items = 4, 8
    spec = WorkloadSpec(n_items=n_items)
    kernel, system, obs = build_traced_scheme(
        "rowaa", seed, n_sites, spec.initial_items(),
        audit=audit, sample_period=sample_period, profile=profile,
        schedule=schedule, races=races,
    )
    rng = random.Random(seed)
    system.crash(n_sites)
    settle(kernel, system, 60.0)
    recovery = system.power_on(n_sites)
    saboteur_site = 1 + rng.randrange(n_sites - 1)

    def saboteur():
        yield kernel.timeout(0.5 + rng.random() * 4.0)
        if not system.cluster.site(saboteur_site).is_down:
            system.crash(saboteur_site)

    kernel.process(saboteur())
    kernel.run(recovery)
    settle(kernel, system, 100.0)
    if system.cluster.site(saboteur_site).is_down:
        kernel.run(system.power_on(saboteur_site))
    settle(kernel, system, 200.0)
    system.stop()
    kernel.run(until=kernel.now + 10)
    records = system.recovery_records()
    return kernel, system, obs, {
        "recoveries": len(records),
        "succeeded": sum(1 for record in records if record.succeeded),
        "type1_attempts": sum(record.type1_attempts for record in records),
        "type2_runs": sum(record.type2_runs for record in records),
    }

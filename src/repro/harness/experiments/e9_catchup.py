"""E9 — catch-up transports: log-shipping vs per-item copy.

The paper's copiers (§3.2) move one item per transaction, reading a full
remote copy even when the recovering site missed a single update. With a
per-site redo log (``repro.wal``) the recovering site can instead stream
exactly the log suffix it missed from one nominally-up peer.

Design: crash a site, land ``missed`` committed updates elsewhere,
reboot, and measure the network bytes the catch-up phase moves under
each ``catchup_mode`` until the site is fully current. A third cell
variant aggressively truncates the peers' logs (``retain_records=0``)
so the stream is refused and log-shipping must fall back to per-item
copy — correctness is preserved, the byte advantage is not.

Expected shape: for short outages log-shipping moves strictly fewer
bytes (records touched, not items held) and never falls back; after
truncation it degrades to exactly the item-copy behaviour. Both modes
end fully current with identical values.
"""

from __future__ import annotations

from repro.core.config import RowaaConfig
from repro.harness.parallel import Cell, run_cells
from repro.harness.runner import build_scheme, build_traced_scheme, cell_seed, settle
from repro.harness.tables import Table
from repro.wal import WalConfig

MODES = ("log_ship", "item_copy")


def plan(
    seed: int = 0,
    n_sites: int = 3,
    n_items: int = 24,
    missed_updates: tuple[int, ...] = (4, 16),
    modes: tuple[str, ...] = MODES,
    truncated_cell: bool = True,
) -> list[Cell]:
    """mode x missed grid, plus one truncated-peer cell per mode."""
    cells = [
        Cell(
            "e9",
            _one_cell,
            dict(
                seed=seed, n_sites=n_sites, n_items=n_items,
                missed=missed, mode=mode, truncate=False,
            ),
            dict(mode=mode, missed=missed, truncated=False),
        )
        for mode in modes
        for missed in missed_updates
    ]
    if truncated_cell:
        for mode in modes:
            cells.append(
                Cell(
                    "e9",
                    _one_cell,
                    dict(
                        seed=seed, n_sites=n_sites, n_items=n_items,
                        missed=max(missed_updates), mode=mode, truncate=True,
                    ),
                    dict(mode=mode, missed=max(missed_updates), truncated=True),
                )
            )
    return cells


def assemble(
    cells: list[Cell], results: list, n_items: int = 24, **_params
) -> Table:
    table = Table(
        f"E9: catch-up transport (items={n_items})",
        [
            "mode",
            "missed",
            "truncated",
            "net_bytes",
            "shipped",
            "applied",
            "validated",
            "copied",
            "skips",
            "fell_back",
            "t_fully_current",
            "state",
        ],
    )
    for cell, result in zip(cells, results):
        table.add_row(
            mode=cell.tag["mode"],
            missed=cell.tag["missed"],
            truncated=cell.tag["truncated"],
            **result,
        )
    return table


def run(
    seed: int = 0,
    n_sites: int = 3,
    n_items: int = 24,
    missed_updates: tuple[int, ...] = (4, 16),
    modes: tuple[str, ...] = MODES,
    truncated_cell: bool = True,
    jobs: int | None = None,
) -> Table:
    """Catch-up transport comparison table."""
    params = dict(
        seed=seed, n_sites=n_sites, n_items=n_items,
        missed_updates=missed_updates, modes=modes,
        truncated_cell=truncated_cell,
    )
    cells = plan(**params)
    results, _timings = run_cells(cells, jobs=jobs)
    return assemble(cells, results, **params)


def _write_program(item, value):
    def program(ctx):
        yield from ctx.write(item, value)

    return program


def _state_fingerprint(system, site_id, n_items):
    """Order-independent digest of the site's user-item values."""
    import hashlib

    text = ";".join(
        f"X{i}={system.copy_value(site_id, f'X{i}')!r}" for i in range(n_items)
    )
    return hashlib.sha256(text.encode()).hexdigest()[:12]


def _run_outage(seed, n_sites, n_items, missed, mode, truncate):
    items = {f"X{i}": 0 for i in range(n_items)}
    rowaa_config = RowaaConfig(
        copier_mode="eager", catchup_mode=mode, log_ship_batch=8
    )
    wal_config = (
        WalConfig(checkpoint_every=4, retain_records=0) if truncate else WalConfig()
    )
    kernel, system = build_scheme(
        "rowaa", cell_seed("e9", seed, mode, missed, truncate), n_sites, items,
        rowaa_config=rowaa_config, wal_config=wal_config,
    )
    victim = n_sites
    system.crash(victim)
    settle(kernel, system, 80.0)
    for index in range(missed):
        kernel.run(
            system.submit_with_retry(
                1, _write_program(f"X{index % n_items}", 100 + index), attempts=4
            )
        )
    bytes_before = system.cluster.network.stats.bytes_sent
    power_at = kernel.now
    kernel.run(system.power_on(victim))
    kernel.run(until=kernel.now + 600.0)
    system.stop()
    kernel.run(until=kernel.now + 10)
    net_bytes = system.cluster.network.stats.bytes_sent - bytes_before
    return kernel, system, victim, power_at, net_bytes


def _summarise(kernel, system, victim, power_at, net_bytes, n_items):
    copiers = system.copiers[victim]
    stats = copiers.stats
    drained = copiers.drained_at
    return {
        "net_bytes": net_bytes,
        "shipped": stats.records_shipped,
        "applied": stats.ship_applied,
        "validated": stats.ship_validated,
        "copied": stats.copies_performed,
        "skips": stats.copies_skipped_version,
        "fell_back": int(
            stats.ship_fallback_truncated > 0 or stats.ship_fallback_items > 0
        ),
        "t_fully_current": (drained - power_at) if drained is not None else None,
        "state": _state_fingerprint(system, victim, n_items),
    }


def _one_cell(seed, n_sites, n_items, missed, mode, truncate):
    kernel, system, victim, power_at, net_bytes = _run_outage(
        seed, n_sites, n_items, missed, mode, truncate
    )
    return _summarise(kernel, system, victim, power_at, net_bytes, n_items)


def traced_scenario(
    seed: int = 0, audit: bool = False,
    sample_period: float | None = None, profile: bool = False,
    schedule: object = None, races: bool = False,
):
    """One traced log-shipping recovery for ``repro trace``.

    The trace shows the wal.ship RPC pages, the copier-kind apply
    transactions, and the wal.checkpoint/restore spans around them.
    """
    n_sites, n_items, missed = 3, 12, 6
    items = {f"X{i}": 0 for i in range(n_items)}
    kernel, system, obs = build_traced_scheme(
        "rowaa", cell_seed("e9-trace", seed), n_sites, items,
        rowaa_config=RowaaConfig(
            copier_mode="eager", catchup_mode="log_ship", log_ship_batch=4
        ),
        audit=audit, sample_period=sample_period, profile=profile,
        schedule=schedule, races=races,
    )
    victim = n_sites
    system.crash(victim)
    settle(kernel, system, 80.0)
    for index in range(missed):
        kernel.run(
            system.submit_with_retry(
                1, _write_program(f"X{index}", 100 + index), attempts=4
            )
        )
    bytes_before = system.cluster.network.stats.bytes_sent
    power_at = kernel.now
    kernel.run(system.power_on(victim))
    kernel.run(until=kernel.now + 400.0)
    system.stop()
    kernel.run(until=kernel.now + 10)
    net_bytes = system.cluster.network.stats.bytes_sent - bytes_before
    summary = _summarise(kernel, system, victim, power_at, net_bytes, n_items)
    return kernel, system, obs, summary

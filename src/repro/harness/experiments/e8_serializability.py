"""E8 — one-serializability under failures (Theorem 3, §1 example).

Paper claims: (a) the §1 example shows that naive available-copies
commits executions that cannot be made consistent by any recovery;
(b) Theorem 3: under the protocol, the conflict graph w.r.t. DB ∪ NS is
a 1-STG w.r.t. DB, so every execution is one-serializable.

Design: randomized runs with crashes and recoveries under ``rowaa`` and
``naive``; record the physical history; check (i) the Theorem-3
invariant (CG over DB ∪ NS acyclic) and (ii) one-serializability of the
DB projection. Plus the §1 scenario replayed verbatim (it is also a
unit test).

Expected shape: rowaa passes 100% of runs on both checks; naive fails a
substantial fraction of the 1-SR checks (every failure is a genuine
consistency violation a user could observe).
"""

from __future__ import annotations

from repro.core.nominal import db_item_filter
from repro.harness.parallel import Cell, run_cells
from repro.harness.runner import build_scheme, build_traced_scheme, quiesce
from repro.harness.tables import Table
from repro.histories import check_one_sr, check_theorem3
from repro.sim.rng import RngRegistry
from repro.workload import ClientPool, FailureSchedule, WorkloadGenerator, WorkloadSpec

SCHEMES = ("rowaa", "rowaa-to", "naive")
"""``rowaa-to`` is the protocol on the timestamp-ordering scheduler —
Theorem 3 is stated for a *class* of concurrency controls, so it must
hold there too."""


def plan(
    seed: int = 0,
    trials: int = 4,
    n_sites: int = 3,
    n_items: int = 8,
    duration: float = 800.0,
    schemes: tuple[str, ...] = SCHEMES,
) -> list[Cell]:
    """``trials`` cells per scheme; checks run inside the cell so the
    result is a small verdict dict, not a whole history recorder."""
    return [
        Cell(
            "e8",
            _one_trial,
            dict(
                scheme=scheme, seed=seed * 7919 + trial,
                n_sites=n_sites, n_items=n_items, duration=duration,
            ),
            dict(scheme=scheme, trial=trial),
        )
        for scheme in schemes
        for trial in range(trials)
    ]


def assemble(
    cells: list[Cell], results: list, trials: int = 4, **_params
) -> Table:
    table = Table(
        f"E8: one-serializability under failures ({trials} random runs each)",
        ["scheme", "runs", "committed_txns", "one_sr_ok", "theorem3_ok"],
    )
    groups: dict[str, list[dict]] = {}
    for cell, verdict in zip(cells, results):
        groups.setdefault(cell.tag["scheme"], []).append(verdict)
    for scheme, verdicts in groups.items():
        table.add_row(
            scheme=scheme,
            runs=len(verdicts),
            committed_txns=sum(v["committed"] for v in verdicts),
            one_sr_ok=sum(1 for v in verdicts if v["one_sr"]),
            theorem3_ok=sum(1 for v in verdicts if v["theorem3"]),
        )
    return table


def run(
    seed: int = 0,
    trials: int = 4,
    n_sites: int = 3,
    n_items: int = 8,
    duration: float = 800.0,
    schemes: tuple[str, ...] = SCHEMES,
    jobs: int | None = None,
) -> Table:
    """Serializability verdicts over (scheme × random trials)."""
    params = dict(
        seed=seed, trials=trials, n_sites=n_sites, n_items=n_items,
        duration=duration, schemes=schemes,
    )
    cells = plan(**params)
    results, _timings = run_cells(cells, jobs=jobs)
    return assemble(cells, results, **params)


def _one_trial(scheme, seed, n_sites, n_items, duration):
    recorder, committed = _one_run(scheme, seed, n_sites, n_items, duration)
    return {
        "committed": committed,
        "one_sr": check_one_sr(recorder, item_filter=db_item_filter).ok,
        "theorem3": check_theorem3(recorder).ok,
    }


def _one_run(scheme, seed, n_sites, n_items, duration):
    spec = WorkloadSpec(
        n_items=n_items, ops_per_txn=3, write_fraction=0.5, zipf_s=0.5
    )
    kwargs = {}
    if scheme == "rowaa-to":
        scheme = "rowaa"
        kwargs["concurrency"] = "to"
    kernel, system = build_scheme(scheme, seed, n_sites, spec.initial_items(),
                                  **kwargs)
    # Dedicated registry streams: crash times and workload draws are
    # independent — changing one never perturbs the other at equal seed.
    rngs = RngRegistry(seed)
    schedule = FailureSchedule.random_failures(
        system.cluster.site_ids, rngs.stream(FailureSchedule.RNG_STREAM),
        horizon=duration * 0.8, mtbf=250, mttr=80,
    )
    schedule.apply(system)
    # Home clients on every site; reads may thus hit rejoined stale
    # copies under the naive scheme — exactly its failure mode.
    pool = ClientPool(
        system, WorkloadGenerator(spec, rngs.stream("workload.generator")),
        n_clients=5, think_time=4.0, retries=2,
    )
    pool.start(duration)
    kernel.run(until=duration)
    quiesce(kernel, system, grace=800.0)
    return system.recorder, pool.stats.committed


def traced_scenario(
    seed: int = 0, audit: bool = False,
    sample_period: float | None = None, profile: bool = False,
    schedule: object = None, races: bool = False,
):
    """One traced randomized crash/recovery run for ``repro trace``.

    The full Theorem-3 setting in miniature: clients on every site,
    random outages, then quiesce and run both history checks — the trace
    shows user, control, and copier spans interleaving across failures.
    """
    n_sites, n_items, duration = 3, 8, 300.0
    spec = WorkloadSpec(
        n_items=n_items, ops_per_txn=3, write_fraction=0.5, zipf_s=0.5
    )
    kernel, system, obs = build_traced_scheme(
        "rowaa", seed, n_sites, spec.initial_items(),
        audit=audit, sample_period=sample_period, profile=profile,
        schedule=schedule, races=races,
    )
    rngs = RngRegistry(seed)
    failures = FailureSchedule.random_failures(
        system.cluster.site_ids, rngs.stream(FailureSchedule.RNG_STREAM),
        horizon=duration * 0.8, mtbf=150, mttr=60,
    )
    failures.apply(system)
    pool = ClientPool(
        system, WorkloadGenerator(spec, rngs.stream("workload.generator")),
        n_clients=4, think_time=4.0, retries=2,
        per_client_streams=True,
    )
    pool.start(duration)
    kernel.run(until=duration)
    quiesce(kernel, system, grace=600.0)
    return kernel, system, obs, {
        "committed": pool.stats.committed,
        "one_sr": check_one_sr(system.recorder, item_filter=db_item_filter).ok,
        "theorem3": check_theorem3(system.recorder).ok,
    }

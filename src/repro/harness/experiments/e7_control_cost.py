"""E7 — the cost of status maintenance.

Paper claim (§6): "The control transactions which update the nominal
session numbers are only necessary when sites fail or recover" — and
they are per-*site*, not per-*item*. The directory scheme of [2] pays
one status transaction per item on every failure and recovery.

Design: no user load at all; crash one site, let exclusion happen,
recover it, and count status transactions and remote messages — all
traffic in the run is failure-handling traffic. Sweep the database
size.

Expected shape: rowaa's costs are flat in the number of items (one
type-2, one type-1); the directory scheme's grow linearly (one EXCLUDE
and one INCLUDE per item).
"""

from __future__ import annotations

from repro.harness.parallel import Cell, run_cells
from repro.harness.runner import build_scheme, build_traced_scheme, settle
from repro.harness.tables import Table
from repro.workload import WorkloadSpec

SCHEMES = ("rowaa", "rowaa-faillocks", "directories")


def plan(
    seed: int = 0,
    n_sites: int = 3,
    item_counts: tuple[int, ...] = (4, 16, 48),
    schemes: tuple[str, ...] = SCHEMES,
) -> list[Cell]:
    """One cell per (scheme × database size)."""
    return [
        Cell(
            "e7",
            _one_cell,
            dict(scheme=scheme, seed=seed, n_sites=n_sites, n_items=n_items),
            dict(scheme=scheme, items=n_items),
        )
        for scheme in schemes
        for n_items in item_counts
    ]


def assemble(cells: list[Cell], results: list, **_params) -> Table:
    table = Table(
        "E7: control cost of one crash + one recovery (no user load)",
        ["scheme", "items", "status_txns", "remote_messages"],
    )
    for cell, result in zip(cells, results):
        table.add_row(scheme=cell.tag["scheme"], items=cell.tag["items"], **result)
    return table


def run(
    seed: int = 0,
    n_sites: int = 3,
    item_counts: tuple[int, ...] = (4, 16, 48),
    schemes: tuple[str, ...] = SCHEMES,
    jobs: int | None = None,
) -> Table:
    """Status-maintenance cost over (scheme × database size)."""
    params = dict(
        seed=seed, n_sites=n_sites, item_counts=item_counts, schemes=schemes,
    )
    cells = plan(**params)
    results, _timings = run_cells(cells, jobs=jobs)
    return assemble(cells, results, **params)


def _one_cell(scheme, seed, n_sites, n_items):
    spec = WorkloadSpec(n_items=n_items)
    kwargs = {}
    build_as = scheme
    if scheme == "rowaa-faillocks":
        # Nothing was updated during the outage, so precise
        # identification marks nothing: isolates pure control traffic
        # from mark-all's copier sweep.
        from repro.core.config import RowaaConfig

        build_as = "rowaa"
        kwargs["rowaa_config"] = RowaaConfig(identify_mode="fail-locks")
    kernel, system = build_scheme(
        build_as, seed * 53 + n_items, n_sites, spec.initial_items(), **kwargs
    )
    baseline_msgs = system.cluster.network.stats.sent
    victim = n_sites
    system.crash(victim)
    settle(kernel, system, 120.0)
    kernel.run(system.power_on(victim))
    settle(kernel, system, 2500.0)  # drain copiers/includes fully
    system.stop()
    kernel.run(until=kernel.now + 10)

    messages = system.cluster.network.stats.sent - baseline_msgs
    if scheme in ("rowaa", "rowaa-faillocks"):
        status_txns = (
            sum(service.type2_committed for service in system.controls.values())
            + sum(1 for record in system.recovery_records() if record.succeeded)
        )
    else:
        service = system.directory_service
        status_txns = service.exclude_committed + sum(
            record.includes_committed for record in service.records
        )
    return {"status_txns": status_txns, "remote_messages": messages}


def traced_scenario(
    seed: int = 0, audit: bool = False,
    sample_period: float | None = None, profile: bool = False,
    schedule: object = None, races: bool = False,
):
    """One traced quiet crash/reboot cycle for ``repro trace``.

    Nothing is updated during the outage, so the trace isolates the pure
    control cost: the type-2 exclusion after detection and the type-1
    inclusion at recovery, with no copier data transfers riding along.
    """
    n_sites, n_items = 3, 8
    spec = WorkloadSpec(n_items=n_items)
    kernel, system, obs = build_traced_scheme(
        "rowaa", seed * 53 + n_items, n_sites, spec.initial_items(),
        audit=audit, sample_period=sample_period, profile=profile,
        schedule=schedule, races=races,
    )
    baseline_msgs = system.cluster.network.stats.sent
    victim = n_sites
    system.crash(victim)
    settle(kernel, system, 120.0)
    kernel.run(system.power_on(victim))
    settle(kernel, system, 500.0)
    system.stop()
    kernel.run(until=kernel.now + 10)
    status_txns = (
        sum(service.type2_committed for service in system.controls.values())
        + sum(1 for record in system.recovery_records() if record.succeeded)
    )
    return kernel, system, obs, {
        "status_txns": status_txns,
        "remote_messages": system.cluster.network.stats.sent - baseline_msgs,
    }

"""E3 — failure-free overhead of the recovery machinery.

Paper claim (§6): "the extra cost to user transactions is negligible.
Although all user transactions are required to read the local copies of
the nominal states, there is little overhead because these reads do not
conflict with each other" — and they are local (no network traffic).

Design: identical failure-free workloads on ``rowaa`` vs the
machinery-free ``naive`` floor (same read-one/write-all fan-out, no NS
reads, no session tags), sweeping the site count. Report throughput,
mean commit latency, and remote messages per committed transaction.

Expected shape: rowaa within a few percent of the floor on every metric
(the NS reads are intra-site procedure calls; the session tag rides on
messages that are sent anyway).
"""

from __future__ import annotations

import random

from repro.harness.metrics import mean, network_totals, tm_totals
from repro.harness.parallel import Cell, run_cells
from repro.harness.runner import build_scheme, build_traced_scheme
from repro.harness.tables import Table
from repro.workload import ClientPool, WorkloadGenerator, WorkloadSpec

SCHEMES = ("rowaa", "naive")


def plan(
    seed: int = 0,
    site_counts: tuple[int, ...] = (3, 5, 7),
    n_items: int = 24,
    load_duration: float = 600.0,
    n_clients: int = 6,
    repeats: int = 3,
    schemes: tuple[str, ...] = SCHEMES,
) -> list[Cell]:
    """``repeats`` cells per (scheme × site count) row."""
    return [
        Cell(
            "e3",
            _one_cell,
            dict(
                scheme=scheme, seed=seed + 1000 * rep, n_sites=n_sites,
                n_items=n_items, load_duration=load_duration,
                n_clients=n_clients,
            ),
            dict(scheme=scheme, sites=n_sites, rep=rep),
        )
        for scheme in schemes
        for n_sites in site_counts
        for rep in range(repeats)
    ]


def assemble(cells: list[Cell], results: list, **_params) -> Table:
    table = Table(
        "E3: failure-free overhead of the session-number machinery",
        [
            "scheme",
            "sites",
            "throughput",
            "mean_latency",
            "msgs_per_commit",
            "committed",
        ],
    )
    # Average the repeat cells of each (scheme, sites) row, in plan order.
    groups: dict[tuple, list[dict]] = {}
    for cell, result in zip(cells, results):
        key = (cell.tag["scheme"], cell.tag["sites"])
        groups.setdefault(key, []).append(result)
    for (scheme, n_sites), reps in groups.items():
        table.add_row(
            scheme=scheme,
            sites=n_sites,
            throughput=mean([rep["throughput"] for rep in reps]),
            mean_latency=mean([rep["mean_latency"] for rep in reps]),
            msgs_per_commit=mean([rep["msgs_per_commit"] or 0.0 for rep in reps]),
            committed=sum(rep["committed"] for rep in reps),
        )
    return table


def run(
    seed: int = 0,
    site_counts: tuple[int, ...] = (3, 5, 7),
    n_items: int = 24,
    load_duration: float = 600.0,
    n_clients: int = 6,
    repeats: int = 3,
    schemes: tuple[str, ...] = SCHEMES,
    jobs: int | None = None,
) -> Table:
    """Overhead table over (scheme × site count), no failures.

    Each row averages ``repeats`` seeds: under contention, scheduling
    noise (a few extra zero-latency local events shift lock-grant
    interleavings) swings single runs by ~10%, drowning the effect being
    measured.
    """
    params = dict(
        seed=seed, site_counts=site_counts, n_items=n_items,
        load_duration=load_duration, n_clients=n_clients, repeats=repeats,
        schemes=schemes,
    )
    cells = plan(**params)
    results, _timings = run_cells(cells, jobs=jobs)
    return assemble(cells, results, **params)


def _one_cell(scheme, seed, n_sites, n_items, load_duration, n_clients):
    spec = WorkloadSpec(n_items=n_items, ops_per_txn=3, write_fraction=0.3)
    kernel, system = build_scheme(
        scheme, seed * 13 + n_sites, n_sites, spec.initial_items()
    )
    rng = random.Random(seed + n_sites)
    pool = ClientPool(
        system, WorkloadGenerator(spec, rng), n_clients=n_clients, think_time=2.0
    )
    pool.start(load_duration)
    kernel.run(until=load_duration + 50)
    system.stop()
    kernel.run(until=kernel.now + 10)
    totals = tm_totals(system)
    network = network_totals(system)
    committed = totals["committed"]
    return {
        "throughput": committed / load_duration,
        "mean_latency": mean(pool.stats.latencies),
        "msgs_per_commit": (network["sent"] / committed) if committed else None,
        "committed": committed,
    }


def traced_scenario(
    seed: int = 0, audit: bool = False,
    sample_period: float | None = None, profile: bool = False,
    schedule: object = None, races: bool = False,
):
    """One traced failure-free cell for ``repro trace``.

    No crashes: the trace shows the steady-state shape of the protocol —
    user transaction spans whose RPC children carry the read-one /
    write-all fan-out and the 2PC rounds.
    """
    n_sites, n_items = 3, 12
    spec = WorkloadSpec(n_items=n_items, ops_per_txn=3, write_fraction=0.3)
    kernel, system, obs = build_traced_scheme(
        "rowaa", seed * 13 + n_sites, n_sites, spec.initial_items(),
        audit=audit, sample_period=sample_period, profile=profile,
        schedule=schedule, races=races,
    )
    rng = random.Random(seed + n_sites)
    pool = ClientPool(
        system, WorkloadGenerator(spec, rng), n_clients=4, think_time=2.0,
        per_client_streams=True,
    )
    pool.start(150.0)
    kernel.run(until=kernel.now + 200)
    system.stop()
    kernel.run(until=kernel.now + 10)
    committed = pool.stats.committed
    return kernel, system, obs, {
        "committed": committed,
        "throughput": committed / 150.0,
        "mean_latency": mean(pool.stats.latencies),
    }

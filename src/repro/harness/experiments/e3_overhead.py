"""E3 — failure-free overhead of the recovery machinery.

Paper claim (§6): "the extra cost to user transactions is negligible.
Although all user transactions are required to read the local copies of
the nominal states, there is little overhead because these reads do not
conflict with each other" — and they are local (no network traffic).

Design: identical failure-free workloads on ``rowaa`` vs the
machinery-free ``naive`` floor (same read-one/write-all fan-out, no NS
reads, no session tags), sweeping the site count. Report throughput,
mean commit latency, and remote messages per committed transaction.

Expected shape: rowaa within a few percent of the floor on every metric
(the NS reads are intra-site procedure calls; the session tag rides on
messages that are sent anyway).
"""

from __future__ import annotations

import random

from repro.harness.metrics import mean, network_totals, tm_totals
from repro.harness.runner import build_scheme
from repro.harness.tables import Table
from repro.workload import ClientPool, WorkloadGenerator, WorkloadSpec

SCHEMES = ("rowaa", "naive")


def run(
    seed: int = 0,
    site_counts: tuple[int, ...] = (3, 5, 7),
    n_items: int = 24,
    load_duration: float = 600.0,
    n_clients: int = 6,
    repeats: int = 3,
    schemes: tuple[str, ...] = SCHEMES,
) -> Table:
    """Overhead table over (scheme × site count), no failures.

    Each cell averages ``repeats`` seeds: under contention, scheduling
    noise (a few extra zero-latency local events shift lock-grant
    interleavings) swings single runs by ~10%, drowning the effect being
    measured.
    """
    table = Table(
        "E3: failure-free overhead of the session-number machinery",
        [
            "scheme",
            "sites",
            "throughput",
            "mean_latency",
            "msgs_per_commit",
            "committed",
        ],
    )
    for scheme in schemes:
        for n_sites in site_counts:
            cells = [
                _one_cell(
                    scheme, seed + 1000 * rep, n_sites, n_items, load_duration,
                    n_clients,
                )
                for rep in range(repeats)
            ]
            table.add_row(
                scheme=scheme,
                sites=n_sites,
                throughput=mean([cell["throughput"] for cell in cells]),
                mean_latency=mean([cell["mean_latency"] for cell in cells]),
                msgs_per_commit=mean(
                    [cell["msgs_per_commit"] or 0.0 for cell in cells]
                ),
                committed=sum(cell["committed"] for cell in cells),
            )
    return table


def _one_cell(scheme, seed, n_sites, n_items, load_duration, n_clients):
    spec = WorkloadSpec(n_items=n_items, ops_per_txn=3, write_fraction=0.3)
    kernel, system = build_scheme(
        scheme, seed * 13 + n_sites, n_sites, spec.initial_items()
    )
    rng = random.Random(seed + n_sites)
    pool = ClientPool(
        system, WorkloadGenerator(spec, rng), n_clients=n_clients, think_time=2.0
    )
    pool.start(load_duration)
    kernel.run(until=load_duration + 50)
    system.stop()
    kernel.run(until=kernel.now + 10)
    totals = tm_totals(system)
    network = network_totals(system)
    committed = totals["committed"]
    return {
        "throughput": committed / load_duration,
        "mean_latency": mean(pool.stats.latencies),
        "msgs_per_commit": (network["sent"] / committed) if committed else None,
        "committed": committed,
    }

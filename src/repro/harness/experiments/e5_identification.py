"""E5 — identifying out-of-date copies: mark-all vs §5 refinements.

Paper claim (§5): tracking mechanisms (fail-locks, missing lists)
"eliminate the unnecessary work", and even without them "a copier can
compare the version numbers ... first, then decide whether copying data
is necessary".

Design: crash a site, update a fraction of the database, recover under
each identification policy, and count: copies marked unreadable, data
transfers performed, version-skip hits. Also report mark-all with the
version-skip optimisation disabled (the true worst case).

Expected shape: marked items — fail-locks = missing-lists = stale set,
mark-all = everything; data transfers equal the stale set everywhere
except mark-all-without-version-skip, which copies the whole database;
the gap closes as the update fraction approaches 1.
"""

from __future__ import annotations

from repro.core.config import RowaaConfig
from repro.harness.parallel import Cell, run_cells
from repro.harness.runner import build_scheme, build_traced_scheme, cell_seed, settle
from repro.harness.tables import Table
from repro.workload import WorkloadSpec

POLICIES = ("mark-all", "mark-all-no-skip", "fail-locks", "missing-lists")


def plan(
    seed: int = 0,
    n_sites: int = 3,
    n_items: int = 24,
    update_fractions: tuple[float, ...] = (0.125, 0.5, 1.0),
    policies: tuple[str, ...] = POLICIES,
) -> list[Cell]:
    """One cell per (policy × update fraction)."""
    return [
        Cell(
            "e5",
            _one_cell,
            dict(
                seed=seed, n_sites=n_sites, n_items=n_items,
                fraction=fraction, policy=policy,
            ),
            dict(policy=policy, updated_fraction=fraction),
        )
        for policy in policies
        for fraction in update_fractions
    ]


def assemble(
    cells: list[Cell], results: list, n_items: int = 24, **_params
) -> Table:
    table = Table(
        f"E5: out-of-date identification (items={n_items})",
        ["policy", "updated_fraction", "marked", "data_transfers", "version_skips"],
    )
    for cell, result in zip(cells, results):
        table.add_row(
            policy=cell.tag["policy"],
            updated_fraction=cell.tag["updated_fraction"],
            **result,
        )
    return table


def run(
    seed: int = 0,
    n_sites: int = 3,
    n_items: int = 24,
    update_fractions: tuple[float, ...] = (0.125, 0.5, 1.0),
    policies: tuple[str, ...] = POLICIES,
    jobs: int | None = None,
) -> Table:
    """Recovery work table over (policy × update fraction)."""
    params = dict(
        seed=seed, n_sites=n_sites, n_items=n_items,
        update_fractions=update_fractions, policies=policies,
    )
    cells = plan(**params)
    results, _timings = run_cells(cells, jobs=jobs)
    return assemble(cells, results, **params)


def _write_program(item, value):
    def program(ctx):
        yield from ctx.write(item, value)

    return program


def _one_cell(seed, n_sites, n_items, fraction, policy):
    identify = "mark-all" if policy == "mark-all-no-skip" else policy
    rowaa_config = RowaaConfig(
        copier_mode="eager",
        identify_mode=identify,
        version_skip=(policy != "mark-all-no-skip"),
    )
    spec = WorkloadSpec(n_items=n_items)
    kernel, system = build_scheme(
        "rowaa", cell_seed("e5", seed, policy), n_sites, spec.initial_items(),
        rowaa_config=rowaa_config,
    )
    victim = n_sites
    system.crash(victim)
    settle(kernel, system, 80.0)
    n_updated = round(n_items * fraction)
    for index in range(n_updated):
        kernel.run(
            system.submit_with_retry(1, _write_program(f"X{index}", index), attempts=4)
        )
    record = kernel.run(system.power_on(victim))
    kernel.run(until=kernel.now + 2000)  # let copiers finish
    system.stop()
    kernel.run(until=kernel.now + 10)
    stats = system.copiers[victim].stats
    return {
        "marked": record.marked_items,
        "data_transfers": stats.copies_performed,
        "version_skips": stats.copies_skipped_version,
    }


def traced_scenario(
    seed: int = 0, audit: bool = False,
    sample_period: float | None = None, profile: bool = False,
    schedule: object = None, races: bool = False,
):
    """One traced mark-all identification cell for ``repro trace``.

    Half the items were updated during the outage; the recovery marks
    every resident copy and the copiers sort current from stale via the
    version check, so the trace shows version-skip refreshes alongside
    real transfers.
    """
    n_sites, n_items = 3, 8
    spec = WorkloadSpec(n_items=n_items)
    kernel, system, obs = build_traced_scheme(
        "rowaa", cell_seed("e5-trace", seed), n_sites, spec.initial_items(),
        rowaa_config=RowaaConfig(copier_mode="eager", identify_mode="mark-all"),
        audit=audit, sample_period=sample_period, profile=profile,
        schedule=schedule, races=races,
    )
    victim = n_sites
    system.crash(victim)
    settle(kernel, system, 80.0)
    for index in range(n_items // 2):
        kernel.run(
            system.submit_with_retry(1, _write_program(f"X{index}", index), attempts=4)
        )
    record = kernel.run(system.power_on(victim))
    kernel.run(until=kernel.now + 1500)
    system.stop()
    kernel.run(until=kernel.now + 10)
    stats = system.copiers[victim].stats
    return kernel, system, obs, {
        "marked": record.marked_items,
        "data_transfers": stats.copies_performed,
        "version_skips": stats.copies_skipped_version,
    }

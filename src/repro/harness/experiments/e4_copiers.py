"""E4 — copier scheduling strategies.

Paper claim (§3.2): copiers "may be initiated by the recovery procedure
one by one for individual unreadable data copies, or on a demand basis
... Such choices may influence the performance but not the correctness."

Design: crash a site, commit updates that make a fraction of its copies
stale, reboot it, and immediately aim a read-heavy client at the
recovered site. Compare copier modes: eager, demand, both, none (user
writes only). Report staleness drain time, the rate of reads that had to
redirect away from the local copy, and copier work.

Expected shape: eager/both drain fastest; demand drains only what is
read (drain time unbounded for cold items — reported as None); none
never proactively drains; correctness (committed reads see current
data) holds in every mode — that is asserted by the test suite, not
measured here.
"""

from __future__ import annotations

import random

from repro.core.config import RowaaConfig
from repro.harness.parallel import Cell, run_cells
from repro.harness.runner import build_scheme, build_traced_scheme, cell_seed, settle
from repro.harness.tables import Table
from repro.workload import ClientPool, WorkloadGenerator, WorkloadSpec

MODES = ("eager", "demand", "both", "none")


def plan(
    seed: int = 0,
    n_sites: int = 3,
    n_items: int = 24,
    stale_fraction: float = 0.5,
    read_duration: float = 600.0,
    modes: tuple[str, ...] = MODES,
) -> list[Cell]:
    """One cell per copier mode."""
    return [
        Cell(
            "e4",
            _one_cell,
            dict(
                seed=seed, n_sites=n_sites, n_items=n_items,
                stale_fraction=stale_fraction, read_duration=read_duration,
                mode=mode,
            ),
            dict(mode=mode),
        )
        for mode in modes
    ]


def assemble(
    cells: list[Cell], results: list, n_items: int = 24,
    stale_fraction: float = 0.5, **_params,
) -> Table:
    table = Table(
        f"E4: copier scheduling (items={n_items}, stale={stale_fraction:.0%})",
        [
            "mode",
            "drain_time",
            "redirected_reads",
            "copies_performed",
            "version_skips",
        ],
    )
    for cell, result in zip(cells, results):
        table.add_row(mode=cell.tag["mode"], **result)
    return table


def run(
    seed: int = 0,
    n_sites: int = 3,
    n_items: int = 24,
    stale_fraction: float = 0.5,
    read_duration: float = 600.0,
    modes: tuple[str, ...] = MODES,
    jobs: int | None = None,
) -> Table:
    """Copier-strategy table."""
    params = dict(
        seed=seed, n_sites=n_sites, n_items=n_items,
        stale_fraction=stale_fraction, read_duration=read_duration, modes=modes,
    )
    cells = plan(**params)
    results, _timings = run_cells(cells, jobs=jobs)
    return assemble(cells, results, **params)


def _write_program(item, value):
    def program(ctx):
        yield from ctx.write(item, value)

    return program


def _one_cell(seed, n_sites, n_items, stale_fraction, read_duration, mode):
    spec = WorkloadSpec(n_items=n_items, ops_per_txn=2, write_fraction=0.0)
    rowaa_config = RowaaConfig(copier_mode=mode, unreadable_policy="redirect")
    kernel, system = build_scheme(
        "rowaa", cell_seed("e4", seed, mode), n_sites, spec.initial_items(),
        rowaa_config=rowaa_config,
    )
    victim = n_sites
    system.crash(victim)
    settle(kernel, system, 80.0)
    n_stale = int(n_items * stale_fraction)
    for index in range(n_stale):
        kernel.run(
            system.submit_with_retry(1, _write_program(f"X{index}", index), attempts=4)
        )
    power_at = kernel.now
    kernel.run(system.power_on(victim))

    rng = random.Random(seed)
    pool = ClientPool(
        system,
        WorkloadGenerator(spec, rng),
        n_clients=3,
        think_time=2.0,
        home_sites=[victim],  # read load lands on the recovered site
    )
    pool.start(read_duration)
    kernel.run(until=kernel.now + read_duration + 100)
    system.stop()
    kernel.run(until=kernel.now + 10)

    copiers = system.copiers[victim]
    drained = copiers.drained_at
    redirected = system.dms[victim].stats_unreadable_rejections
    return {
        "drain_time": (drained - power_at) if drained is not None else None,
        "redirected_reads": redirected,
        "copies_performed": copiers.stats.copies_performed,
        "version_skips": copiers.stats.copies_skipped_version,
    }


def traced_scenario(
    seed: int = 0, audit: bool = False,
    sample_period: float | None = None, profile: bool = False,
    schedule: object = None, races: bool = False,
):
    """One traced eager-copier cell for ``repro trace``.

    Half the items go stale during the outage; read load lands on the
    recovered site while the eager copiers drain, so the trace shows
    copier-refresh spans interleaved with redirected user reads.
    """
    n_sites, n_items = 3, 8
    spec = WorkloadSpec(n_items=n_items, ops_per_txn=2, write_fraction=0.0)
    kernel, system, obs = build_traced_scheme(
        "rowaa", cell_seed("e4-trace", seed), n_sites, spec.initial_items(),
        rowaa_config=RowaaConfig(copier_mode="eager", unreadable_policy="redirect"),
        audit=audit, sample_period=sample_period, profile=profile,
        schedule=schedule, races=races,
    )
    victim = n_sites
    system.crash(victim)
    settle(kernel, system, 80.0)
    for index in range(n_items // 2):
        kernel.run(
            system.submit_with_retry(1, _write_program(f"X{index}", index), attempts=4)
        )
    power_at = kernel.now
    kernel.run(system.power_on(victim))

    rng = random.Random(seed)
    pool = ClientPool(
        system, WorkloadGenerator(spec, rng), n_clients=2, think_time=2.0,
        home_sites=[victim],
        per_client_streams=True,
    )
    pool.start(120.0)
    kernel.run(until=kernel.now + 200)
    system.stop()
    kernel.run(until=kernel.now + 10)
    copiers = system.copiers[victim]
    drained = copiers.drained_at
    return kernel, system, obs, {
        "drain_time": (drained - power_at) if drained is not None else None,
        "redirected_reads": system.dms[victim].stats_unreadable_rejections,
        "copies_performed": copiers.stats.copies_performed,
    }

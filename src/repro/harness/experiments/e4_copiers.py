"""E4 — copier scheduling strategies.

Paper claim (§3.2): copiers "may be initiated by the recovery procedure
one by one for individual unreadable data copies, or on a demand basis
... Such choices may influence the performance but not the correctness."

Design: crash a site, commit updates that make a fraction of its copies
stale, reboot it, and immediately aim a read-heavy client at the
recovered site. Compare copier modes: eager, demand, both, none (user
writes only). Report staleness drain time, the rate of reads that had to
redirect away from the local copy, and copier work.

Expected shape: eager/both drain fastest; demand drains only what is
read (drain time unbounded for cold items — reported as None); none
never proactively drains; correctness (committed reads see current
data) holds in every mode — that is asserted by the test suite, not
measured here.
"""

from __future__ import annotations

import random

from repro.core.config import RowaaConfig
from repro.harness.runner import build_scheme, settle
from repro.harness.tables import Table
from repro.workload import ClientPool, WorkloadGenerator, WorkloadSpec

MODES = ("eager", "demand", "both", "none")


def run(
    seed: int = 0,
    n_sites: int = 3,
    n_items: int = 24,
    stale_fraction: float = 0.5,
    read_duration: float = 600.0,
    modes: tuple[str, ...] = MODES,
) -> Table:
    """Copier-strategy table."""
    table = Table(
        f"E4: copier scheduling (items={n_items}, stale={stale_fraction:.0%})",
        [
            "mode",
            "drain_time",
            "redirected_reads",
            "copies_performed",
            "version_skips",
        ],
    )
    for mode in modes:
        table.add_row(mode=mode, **_one_cell(seed, n_sites, n_items, stale_fraction,
                                             read_duration, mode))
    return table


def _write_program(item, value):
    def program(ctx):
        yield from ctx.write(item, value)

    return program


def _one_cell(seed, n_sites, n_items, stale_fraction, read_duration, mode):
    spec = WorkloadSpec(n_items=n_items, ops_per_txn=2, write_fraction=0.0)
    rowaa_config = RowaaConfig(copier_mode=mode, unreadable_policy="redirect")
    kernel, system = build_scheme(
        "rowaa", seed * 17 + hash(mode) % 1000, n_sites, spec.initial_items(),
        rowaa_config=rowaa_config,
    )
    victim = n_sites
    system.crash(victim)
    settle(kernel, system, 80.0)
    n_stale = int(n_items * stale_fraction)
    for index in range(n_stale):
        kernel.run(
            system.submit_with_retry(1, _write_program(f"X{index}", index), attempts=4)
        )
    power_at = kernel.now
    kernel.run(system.power_on(victim))

    rng = random.Random(seed)
    pool = ClientPool(
        system,
        WorkloadGenerator(spec, rng),
        n_clients=3,
        think_time=2.0,
        home_sites=[victim],  # read load lands on the recovered site
    )
    pool.start(read_duration)
    kernel.run(until=kernel.now + read_duration + 100)
    system.stop()
    kernel.run(until=kernel.now + 10)

    copiers = system.copiers[victim]
    drained = copiers.drained_at
    redirected = system.dms[victim].stats_unreadable_rejections
    return {
        "drain_time": (drained - power_at) if drained is not None else None,
        "redirected_reads": redirected,
        "copies_performed": copiers.stats.copies_performed,
        "version_skips": copiers.stats.copies_skipped_version,
    }

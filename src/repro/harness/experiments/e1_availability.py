"""E1 — availability vs number of failed sites.

Paper claim (§1, §6): ROWAA "provides a high degree of availability";
a logical operation succeeds "as long as one of its copies is in an
operational site and the transaction knows the site's session number".

Design: n sites, k-way replication; crash f sites; after the failure
handling settles, drive pure-read and pure-write clients from the
surviving sites and report the committed fraction per scheme.

Expected shape: write availability — ROWA collapses as soon as any
replica of a touched item is down; quorum survives up to minority loss;
ROWAA (and directories) stay high until an item loses its last copy.
Read availability — everyone reads one copy, so all schemes degrade only
with total item failure (quorum earlier: it needs a read majority).
"""

from __future__ import annotations

import random

from repro.harness.parallel import Cell, run_cells
from repro.harness.runner import (
    build_scheme,
    build_traced_scheme,
    cell_seed,
    replicated_catalog,
    settle,
)
from repro.harness.tables import Table
from repro.workload import ClientPool, WorkloadGenerator, WorkloadSpec

SCHEMES = ("rowaa", "rowa", "quorum", "directories")


def plan(
    seed: int = 0,
    n_sites: int = 5,
    replication: int = 3,
    n_items: int = 20,
    max_failed: int | None = None,
    load_duration: float = 400.0,
    schemes: tuple[str, ...] = SCHEMES,
) -> list[Cell]:
    """One cell per (scheme × failed-site count)."""
    if max_failed is None:
        max_failed = n_sites - 1
    spec = WorkloadSpec(n_items=n_items, ops_per_txn=2, write_fraction=0.0)
    return [
        Cell(
            "e1",
            _one_cell,
            dict(
                scheme=scheme, seed=seed, n_sites=n_sites,
                replication=replication, spec=spec, failed=failed,
                load_duration=load_duration,
            ),
            dict(scheme=scheme, failed=failed),
        )
        for scheme in schemes
        for failed in range(0, max_failed + 1)
    ]


def assemble(
    cells: list[Cell],
    results: list,
    n_sites: int = 5,
    replication: int = 3,
    **_params,
) -> Table:
    table = Table(
        "E1: operation availability vs failed sites "
        f"(n={n_sites}, replication={replication})",
        ["scheme", "failed", "read_availability", "write_availability", "refused"],
    )
    for cell, (read_avail, write_avail, refused) in zip(cells, results):
        table.add_row(
            scheme=cell.tag["scheme"],
            failed=cell.tag["failed"],
            read_availability=read_avail,
            write_availability=write_avail,
            refused=refused,
        )
    return table


def run(
    seed: int = 0,
    n_sites: int = 5,
    replication: int = 3,
    n_items: int = 20,
    max_failed: int | None = None,
    load_duration: float = 400.0,
    schemes: tuple[str, ...] = SCHEMES,
    jobs: int | None = None,
) -> Table:
    """Availability table over (scheme × failed-site count)."""
    params = dict(
        seed=seed, n_sites=n_sites, replication=replication, n_items=n_items,
        max_failed=max_failed, load_duration=load_duration, schemes=schemes,
    )
    cells = plan(**params)
    results, _timings = run_cells(cells, jobs=jobs)
    return assemble(cells, results, **params)


def _one_cell(scheme, seed, n_sites, replication, spec, failed, load_duration):
    catalog = replicated_catalog(n_sites, spec.item_names(), replication, seed)
    kernel, system = build_scheme(
        scheme, seed * 101 + failed, n_sites, spec.initial_items(), catalog=catalog
    )
    # Crash the highest-numbered sites; clients live on survivors.
    survivors = list(range(1, n_sites - failed + 1))
    for site_id in range(n_sites - failed + 1, n_sites + 1):
        system.crash(site_id)
    settle(kernel, system, 80.0)  # detection + exclusion machinery

    rng = random.Random(seed * 7 + failed)
    read_spec = WorkloadSpec(
        n_items=spec.n_items, ops_per_txn=2, write_fraction=0.0
    )
    write_spec = WorkloadSpec(
        n_items=spec.n_items, ops_per_txn=2, write_fraction=1.0,
        read_modify_write=False,
    )
    readers = ClientPool(
        system, WorkloadGenerator(read_spec, rng), n_clients=4,
        think_time=3.0, retries=1, home_sites=survivors,
    )
    writers = ClientPool(
        system, WorkloadGenerator(write_spec, rng), n_clients=4,
        think_time=3.0, retries=1, home_sites=survivors,
    )
    readers.start(load_duration)
    writers.start(load_duration)
    kernel.run(until=kernel.now + load_duration + 50)
    system.stop()
    kernel.run(until=kernel.now + 10)
    refused = readers.stats.refused + writers.stats.refused
    return readers.stats.availability, writers.stats.availability, refused


def traced_scenario(
    seed: int = 0, audit: bool = False,
    sample_period: float | None = None, profile: bool = False,
    schedule: object = None, races: bool = False,
):
    """One traced cell for ``repro trace``: one crashed site, mixed load.

    Mirrors the one-failed-site cell of the grid on a small
    configuration, with spans and the timeline enabled.
    """
    n_sites, replication, n_items = 4, 2, 8
    spec = WorkloadSpec(n_items=n_items, ops_per_txn=2, write_fraction=0.3)
    catalog = replicated_catalog(
        n_sites, spec.item_names(), replication, cell_seed("e1-trace", seed)
    )
    kernel, system, obs = build_traced_scheme(
        "rowaa", cell_seed("e1-trace", seed), n_sites, spec.initial_items(),
        catalog=catalog,
        audit=audit, sample_period=sample_period, profile=profile,
        schedule=schedule, races=races,
    )
    system.crash(n_sites)
    settle(kernel, system, 80.0)
    rng = random.Random(seed)
    pool = ClientPool(
        system, WorkloadGenerator(spec, rng), n_clients=3,
        think_time=3.0, retries=1, home_sites=list(range(1, n_sites)),
        per_client_streams=True,
    )
    pool.start(120.0)
    kernel.run(until=kernel.now + 150)
    kernel.run(system.power_on(n_sites))
    system.stop()
    kernel.run(until=kernel.now + 10)
    return kernel, system, obs, {
        "committed": pool.stats.committed,
        "refused": pool.stats.refused,
        "availability": pool.stats.availability,
    }

"""Experiment definitions E1–E8 (see DESIGN.md §3 for the index)."""

"""E10 — commit modes under write-heavy load and failures.

The PR-6 headline experiment: the same write-heavy closed-loop workload
with random mid-run outages, run once per ``TxnConfig.commit_mode`` —
the synchronous presumed-abort 2PC baseline against the asynchronous
quorum fast path (pipelined prepares, quorum decision at the write-all
ack, background drains). Throughput here is *goodput in simulated time*
(client transactions acked per sim-time unit), so the sync/async gap is
exactly the commit path's network-round cost, not interpreter speed.

Both modes must preserve one-serializability across the outages: every
trial ends with the full history checks (candidate 1-STG over DB,
Theorem 3's CG over DB ∪ NS) and the traced variants run under the
online protocol auditor — the fast path is only a win if the §4
guarantees survive the ack-early protocol unchanged.

Expected shape: ``async_quorum`` roughly halves the client-visible
commit latency (one network round instead of two) and commits more
transactions in the same sim-time budget, while ``one_sr_ok`` /
``theorem3_ok`` stay at 100% for both modes; the RPC columns show the
2PC batching at work (coalesced prepare/commit envelopes, piggybacked
decisions). The committed-count gap is modest, not dramatic — under
contention throughput is lock-bound, and the pipelined prepares leave
in-doubt participants blocked across a *coordinator* outage (they hold
X locks until the coordinator's stable decision log is reachable
again), so individual unlucky schedules can favour the baseline. The
latency win and the failure-free gap are the robust signals; the
dedicated bench (``repro bench``) isolates them.
"""

from __future__ import annotations

from repro.core.nominal import db_item_filter
from repro.harness.metrics import percentile
from repro.harness.parallel import Cell, run_cells
from repro.harness.runner import build_scheme, build_traced_scheme, quiesce
from repro.harness.tables import Table
from repro.histories import check_one_sr, check_theorem3
from repro.sim.rng import RngRegistry
from repro.txn.config import TxnConfig
from repro.workload import ClientPool, FailureSchedule, WorkloadGenerator, WorkloadSpec

MODES = ("sync_2pc", "async_quorum")


def plan(
    seed: int = 0,
    trials: int = 4,
    n_sites: int = 4,
    n_items: int = 48,
    duration: float = 600.0,
    modes: tuple[str, ...] = MODES,
) -> list[Cell]:
    """``trials`` cells per commit mode, same seeds across modes — the
    two workloads and failure schedules are draw-for-draw identical, so
    every row difference is the commit path."""
    return [
        Cell(
            "e10",
            _one_trial,
            dict(
                mode=mode, seed=seed * 7919 + trial,
                n_sites=n_sites, n_items=n_items, duration=duration,
            ),
            dict(mode=mode, trial=trial),
        )
        for mode in modes
        for trial in range(trials)
    ]


def assemble(
    cells: list[Cell], results: list, trials: int = 4, **_params
) -> Table:
    table = Table(
        f"E10: commit modes under write-heavy load + failures "
        f"({trials} random runs each)",
        [
            "mode", "runs", "committed", "txns_per_100s",
            "ack_p50", "ack_p99", "rpc_batches", "piggybacked",
            "one_sr_ok", "theorem3_ok",
        ],
    )
    groups: dict[str, list[dict]] = {}
    for cell, verdict in zip(cells, results):
        groups.setdefault(cell.tag["mode"], []).append(verdict)
    for mode in sorted(groups, reverse=True):  # sync baseline first
        verdicts = groups[mode]
        latencies = [x for v in verdicts for x in v["latencies"]]
        table.add_row(
            mode=mode,
            runs=len(verdicts),
            committed=sum(v["committed"] for v in verdicts),
            txns_per_100s=round(
                sum(v["throughput"] for v in verdicts) / len(verdicts) * 100, 1
            ),
            ack_p50=percentile(latencies, 50),
            ack_p99=percentile(latencies, 99),
            rpc_batches=sum(v["batches"] for v in verdicts),
            piggybacked=sum(v["piggybacked"] for v in verdicts),
            one_sr_ok=sum(1 for v in verdicts if v["one_sr"]),
            theorem3_ok=sum(1 for v in verdicts if v["theorem3"]),
        )
    return table


def run(
    seed: int = 0,
    trials: int = 4,
    n_sites: int = 4,
    n_items: int = 48,
    duration: float = 600.0,
    modes: tuple[str, ...] = MODES,
    jobs: int | None = None,
) -> Table:
    """Commit-mode comparison over (mode × random trials)."""
    params = dict(
        seed=seed, trials=trials, n_sites=n_sites, n_items=n_items,
        duration=duration, modes=modes,
    )
    cells = plan(**params)
    results, _timings = run_cells(cells, jobs=jobs)
    return assemble(cells, results, **params)


def _spec(n_items: int) -> WorkloadSpec:
    """Write-heavy but low-contention: the commit path dominates.

    Uniform access over a wide item set keeps lock queues short — under
    heavy contention both modes release X locks at the same instant (the
    drained apply), so throughput converges and only latency differs.
    """
    return WorkloadSpec(
        n_items=n_items, ops_per_txn=3, write_fraction=0.8, zipf_s=0.0
    )


def _one_trial(mode, seed, n_sites, n_items, duration):
    spec = _spec(n_items)
    kernel, system = build_scheme(
        "rowaa", seed, n_sites, spec.initial_items(),
        txn_config=TxnConfig(rpc_timeout=10.0, commit_mode=mode),
    )
    rngs = RngRegistry(seed)
    # Sparse outages: recovery (type-1 commits + missing-list marking)
    # takes 50-120 sim units, so mtbf must dwarf mttr + recovery or the
    # grid measures recovery churn, not the commit path.
    failures = FailureSchedule.random_failures(
        system.cluster.site_ids, rngs.stream(FailureSchedule.RNG_STREAM),
        horizon=duration * 0.8, mtbf=900, mttr=40,
    )
    failures.apply(system)
    pool = ClientPool(
        system, WorkloadGenerator(spec, rngs.stream("workload.generator")),
        n_clients=6, think_time=0.5, retries=2,
    )
    pool.start(duration)
    kernel.run(until=duration)
    quiesce(kernel, system, grace=800.0)
    tms = list(system.tms.values())
    return {
        "committed": pool.stats.committed,
        "throughput": pool.stats.committed / duration,
        "latencies": [x for tm in tms for x in tm.stats.ack_latencies],
        "batches": sum(tm.rpc.stats_batches for tm in tms),
        "piggybacked": sum(tm.rpc.stats_decisions_piggybacked for tm in tms),
        "one_sr": check_one_sr(
            system.recorder, item_filter=db_item_filter
        ).ok,
        "theorem3": check_theorem3(system.recorder).ok,
    }


def _traced(
    seed: int, mode: str, audit: bool,
    sample_period: float | None = None, profile: bool = False,
    schedule: object = None, races: bool = False,
):
    """One traced run of ``mode`` for ``repro trace/metrics/audit/latency``."""
    n_sites, n_items, duration = 4, 48, 400.0
    spec = _spec(n_items)
    kernel, system, obs = build_traced_scheme(
        "rowaa", seed, n_sites, spec.initial_items(), audit=audit,
        sample_period=sample_period, profile=profile,
        schedule=schedule, races=races,
        txn_config=TxnConfig(rpc_timeout=10.0, commit_mode=mode),
    )
    rngs = RngRegistry(seed)
    failures = FailureSchedule.random_failures(
        system.cluster.site_ids, rngs.stream(FailureSchedule.RNG_STREAM),
        horizon=duration * 0.8, mtbf=600, mttr=40,
    )
    failures.apply(system)
    pool = ClientPool(
        system, WorkloadGenerator(spec, rngs.stream("workload.generator")),
        n_clients=4, think_time=0.5, retries=2,
        per_client_streams=True,
    )
    pool.start(duration)
    kernel.run(until=duration)
    quiesce(kernel, system, grace=800.0)
    tms = list(system.tms.values())
    latencies = [x for tm in tms for x in tm.stats.ack_latencies]
    return kernel, system, obs, {
        "commit_mode": mode,
        "committed": pool.stats.committed,
        "ack_p50": percentile(latencies, 50),
        "ack_p99": percentile(latencies, 99),
        "one_sr": check_one_sr(
            system.recorder, item_filter=db_item_filter
        ).ok,
        "theorem3": check_theorem3(system.recorder).ok,
    }


def traced_scenario(
    seed: int = 0, audit: bool = False,
    sample_period: float | None = None, profile: bool = False,
    schedule: object = None, races: bool = False,
):
    """The async fast path under outages (``repro audit e10``)."""
    return _traced(seed, "async_quorum", audit, sample_period, profile,
                   schedule=schedule, races=races)


def traced_scenario_sync(
    seed: int = 0, audit: bool = False,
    sample_period: float | None = None, profile: bool = False,
    schedule: object = None, races: bool = False,
):
    """The sync baseline on the identical schedule (``e10sync``)."""
    return _traced(seed, "sync_2pc", audit, sample_period, profile,
                   schedule=schedule, races=races)

"""Small statistics helpers and system-wide metric snapshots."""

from __future__ import annotations

import typing

from repro.obs.metrics import percentile
from repro.system import DatabaseSystem

__all__ = [
    "mean",
    "network_totals",
    "obs_snapshot",
    "percentile",  # canonical half-up helper, re-exported from repro.obs.metrics
    "tm_totals",
]


def mean(values: typing.Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def tm_totals(system: DatabaseSystem) -> dict:
    """Commit/abort totals and latency stats summed over all TMs."""
    committed = sum(tm.stats.committed for tm in system.tms.values())
    aborted = sum(tm.stats.aborted for tm in system.tms.values())
    refused = sum(tm.stats.refused for tm in system.tms.values())
    latencies: list[float] = []
    for tm in system.tms.values():
        latencies.extend(tm.stats.commit_latencies)
    reasons: dict[str, int] = {}
    for tm in system.tms.values():
        for reason, count in tm.stats.aborts_by_reason.items():
            reasons[reason] = reasons.get(reason, 0) + count
    return {
        "committed": committed,
        "aborted": aborted,
        "refused": refused,
        "mean_latency": mean(latencies),
        "p95_latency": percentile(latencies, 95),
        "aborts_by_reason": reasons,
    }


def network_totals(system: DatabaseSystem) -> dict:
    """Remote-message counters (local TM↔DM calls excluded)."""
    return system.cluster.network.stats.snapshot()


def obs_snapshot(system: DatabaseSystem) -> dict:
    """The system's full metrics-registry snapshot (see repro.obs)."""
    return system.obs.registry.snapshot()

"""Small statistics helpers and system-wide metric snapshots."""

from __future__ import annotations

import math
import typing

from repro.system import DatabaseSystem


def mean(values: typing.Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def percentile(values: typing.Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100]); 0.0 for empty input.

    The rank is ``floor(x + 0.5)`` rather than ``round(x)``: built-in
    ``round`` uses banker's rounding, under which the p50 of two elements
    lands on index 0 (0.5 rounds to 0) — half-up makes .5 ties resolve
    to the upper neighbour consistently on every Python build.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if p <= 0:
        return ordered[0]
    if p >= 100:
        return ordered[-1]
    rank = int(math.floor(p / 100 * (len(ordered) - 1) + 0.5))
    return ordered[max(0, min(len(ordered) - 1, rank))]


def tm_totals(system: DatabaseSystem) -> dict:
    """Commit/abort totals and latency stats summed over all TMs."""
    committed = sum(tm.stats.committed for tm in system.tms.values())
    aborted = sum(tm.stats.aborted for tm in system.tms.values())
    refused = sum(tm.stats.refused for tm in system.tms.values())
    latencies: list[float] = []
    for tm in system.tms.values():
        latencies.extend(tm.stats.commit_latencies)
    reasons: dict[str, int] = {}
    for tm in system.tms.values():
        for reason, count in tm.stats.aborts_by_reason.items():
            reasons[reason] = reasons.get(reason, 0) + count
    return {
        "committed": committed,
        "aborted": aborted,
        "refused": refused,
        "mean_latency": mean(latencies),
        "p95_latency": percentile(latencies, 95),
        "aborts_by_reason": reasons,
    }


def network_totals(system: DatabaseSystem) -> dict:
    """Remote-message counters (local TM↔DM calls excluded)."""
    return system.cluster.network.stats.snapshot()


def obs_snapshot(system: DatabaseSystem) -> dict:
    """The system's full metrics-registry snapshot (see repro.obs)."""
    return system.obs.registry.snapshot()

"""Small statistics helpers and system-wide metric snapshots."""

from __future__ import annotations

import typing

from repro.system import DatabaseSystem


def mean(values: typing.Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def percentile(values: typing.Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100]); 0.0 for empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if p <= 0:
        return ordered[0]
    if p >= 100:
        return ordered[-1]
    rank = max(0, min(len(ordered) - 1, round(p / 100 * (len(ordered) - 1))))
    return ordered[rank]


def tm_totals(system: DatabaseSystem) -> dict:
    """Commit/abort totals and latency stats summed over all TMs."""
    committed = sum(tm.stats.committed for tm in system.tms.values())
    aborted = sum(tm.stats.aborted for tm in system.tms.values())
    refused = sum(tm.stats.refused for tm in system.tms.values())
    latencies: list[float] = []
    for tm in system.tms.values():
        latencies.extend(tm.stats.commit_latencies)
    reasons: dict[str, int] = {}
    for tm in system.tms.values():
        for reason, count in tm.stats.aborts_by_reason.items():
            reasons[reason] = reasons.get(reason, 0) + count
    return {
        "committed": committed,
        "aborted": aborted,
        "refused": refused,
        "mean_latency": mean(latencies),
        "p95_latency": percentile(latencies, 95),
        "aborts_by_reason": reasons,
    }


def network_totals(system: DatabaseSystem) -> dict:
    """Remote-message counters (local TM↔DM calls excluded)."""
    return system.cluster.network.stats.snapshot()

"""Small statistics helpers and system-wide metric snapshots."""

from __future__ import annotations

import typing

from repro.obs.metrics import percentile
from repro.system import DatabaseSystem

__all__ = [
    "mean",
    "network_totals",
    "obs_snapshot",
    "percentile",  # canonical half-up helper, re-exported from repro.obs.metrics
    "tm_totals",
]


def mean(values: typing.Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def tm_totals(system: DatabaseSystem) -> dict:
    """Commit/abort totals and latency stats summed over all TMs."""
    committed = sum(tm.stats.committed for tm in system.tms.values())
    aborted = sum(tm.stats.aborted for tm in system.tms.values())
    refused = sum(tm.stats.refused for tm in system.tms.values())
    latencies: list[float] = []
    for tm in system.tms.values():
        latencies.extend(tm.stats.commit_latencies)
    reasons: dict[str, int] = {}
    for tm in system.tms.values():
        for reason, count in tm.stats.aborts_by_reason.items():
            reasons[reason] = reasons.get(reason, 0) + count
    ro_latencies: list[float] = []
    for tm in system.tms.values():
        ro_latencies.extend(tm.stats.ro_latencies)
    return {
        "committed": committed,
        "aborted": aborted,
        "refused": refused,
        "mean_latency": mean(latencies),
        "p95_latency": percentile(latencies, 95),
        "aborts_by_reason": reasons,
        # Read-only (beginRO) transactions, reported separately: they
        # never hold locks or run 2PC, so folding them into the commit
        # totals above would flatter the RW numbers.
        "ro_committed": sum(tm.stats.ro_committed for tm in system.tms.values()),
        "ro_aborted": sum(tm.stats.ro_aborted for tm in system.tms.values()),
        "ro_refused": sum(tm.stats.ro_refused for tm in system.tms.values()),
        "ro_mean_latency": mean(ro_latencies),
        "ro_p95_latency": percentile(ro_latencies, 95),
    }


def network_totals(system: DatabaseSystem) -> dict:
    """Remote-message counters (local TM↔DM calls excluded)."""
    return system.cluster.network.stats.snapshot()


def obs_snapshot(system: DatabaseSystem) -> dict:
    """The system's full metrics-registry snapshot (see repro.obs)."""
    return system.obs.registry.snapshot()

"""Whole-system status reports (per-site tables for operators/examples)."""

from __future__ import annotations

from repro.harness.metrics import mean
from repro.harness.tables import Table
from repro.system import DatabaseSystem


def site_report(system: DatabaseSystem) -> Table:
    """One row per site: status, transaction counters, lock pressure."""
    table = Table(
        "Per-site status",
        [
            "site",
            "status",
            "committed",
            "aborted",
            "refused",
            "mean_latency",
            "session",
            "unreadable",
        ],
    )
    for site_id in system.cluster.site_ids:
        site = system.cluster.site(site_id)
        tm = system.tms[site_id]
        sessions = getattr(system, "sessions", None)
        unreadable = sum(
            1
            for item in site.copies.unreadable_items()
            if not item.startswith("NS[")
        )
        table.add_row(
            site=site_id,
            status=site.status.value,
            committed=tm.stats.committed,
            aborted=tm.stats.aborted,
            refused=tm.stats.refused,
            mean_latency=mean(tm.stats.commit_latencies),
            session=sessions[site_id].current if sessions else None,
            unreadable=unreadable,
        )
    return table


def abort_report(system: DatabaseSystem) -> Table:
    """Abort reasons across all TMs — the first thing to read when a
    workload underperforms."""
    reasons: dict[str, int] = {}
    for tm in system.tms.values():
        for reason, count in tm.stats.aborts_by_reason.items():
            reasons[reason] = reasons.get(reason, 0) + count
    table = Table("Aborts by reason", ["reason", "count"])
    for reason in sorted(reasons, key=reasons.get, reverse=True):  # type: ignore[arg-type]
        table.add_row(reason=reason, count=reasons[reason])
    return table


def network_report(system: DatabaseSystem) -> Table:
    """Network counters, including drop categories."""
    stats = system.cluster.network.stats.snapshot()
    table = Table("Network", ["counter", "value"])
    for key in (
        "sent",
        "local_sent",
        "delivered",
        "dropped_dst_down",
        "dropped_src_down",
        "dropped_loss",
        "dropped_partition",
    ):
        table.add_row(counter=key, value=stats[key])
    return table


def full_report(system: DatabaseSystem) -> str:
    """All report tables rendered together."""
    parts = [site_report(system).render(), abort_report(system).render(),
             network_report(system).render()]
    return "\n\n".join(parts)

"""Failure detection under the crash-only failure model.

The paper's type-2 control transactions require the initiator to be
*sure* the claimed sites are down, which "can be satisfied in systems
where site failures are the only possible failures" (§3.3). We model a
detector that is *sound* (never suspects a live site — it is driven by
ground truth from the cluster) but not instantaneous: each surviving site
learns of a crash ``detection_delay`` after it happens.

The delay is an experiment parameter: during the window a site still
believes the crashed site is nominally up, so its transactions attempt
writes there and abort on timeout — exactly the degraded-window behaviour
the session-number machinery is designed to bound.
"""

from __future__ import annotations

import typing


class FailureDetector:
    """One site's view of which sites are up, plus down-event callbacks."""

    def __init__(self, site_id: int, all_sites: typing.Sequence[int]) -> None:
        self.site_id = site_id
        self._all_sites = tuple(all_sites)
        self._up: set[int] = set(all_sites)
        self._down_callbacks: list[typing.Callable[[int], None]] = []
        self._up_callbacks: list[typing.Callable[[int], None]] = []
        #: Down transitions observed over this detector's lifetime
        #: (scraped by the obs layer; reset() does not clear it).
        self.down_events = 0

    def believes_up(self, site_id: int) -> bool:
        """True if this detector has not (yet) seen ``site_id`` crash."""
        return site_id in self._up

    def up_sites(self) -> set[int]:
        """The sites currently believed up."""
        return set(self._up)

    def on_down(self, callback: typing.Callable[[int], None]) -> None:
        """Register ``callback(site_id)`` for future down notifications."""
        self._down_callbacks.append(callback)

    def on_up(self, callback: typing.Callable[[int], None]) -> None:
        """Register ``callback(site_id)`` for future up transitions.

        Fires when a site this detector believed down announces itself
        back (recovery announcement or partition merge) — the moment an
        in-doubt 2PC participant can get an authoritative answer from a
        previously unreachable coordinator.
        """
        self._up_callbacks.append(callback)

    def mark_down(self, site_id: int) -> None:
        """Record a crash; fires callbacks once per transition."""
        if site_id not in self._up:
            return
        self._up.discard(site_id)
        self.down_events += 1
        for callback in list(self._down_callbacks):
            callback(site_id)

    def mark_up(self, site_id: int) -> None:
        """Record that a site is live again; fires callbacks per transition."""
        if site_id in self._up:
            return
        self._up.add(site_id)
        for callback in list(self._up_callbacks):
            callback(site_id)

    def reset(self, up_sites: typing.Iterable[int]) -> None:
        """Reinitialize the view (used when this site reboots)."""
        self._up = set(up_sites)

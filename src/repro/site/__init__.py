"""Site substrate: lifecycle, failure detection, and cluster assembly.

A :class:`~repro.site.site.Site` bundles the per-site runtime pieces —
RPC node, stable storage, copy store, registered background processes —
and implements crash-stop semantics: :meth:`Site.crash` kills every
registered process, drops the inbox, and leaves only stable state behind;
:meth:`Site.power_on` restarts the message layer so the recovery protocol
can run.

The :class:`~repro.site.detector.FailureDetector` models the paper's §3.3
assumption that a site "is sure that the sites being claimed down are
actually down" — valid because crash failures are the only failures in
this model. Detection is *not* instantaneous: each live site learns about
a crash after a configurable delay, and the window in between is exactly
where stale-view session-number rejections happen.

:class:`~repro.site.cluster.Cluster` wires kernel + network + n sites and
injects crashes/restarts (ground truth for detectors).
"""

from repro.site.cluster import Cluster
from repro.site.detector import FailureDetector
from repro.site.site import Site, SiteStatus

__all__ = ["Cluster", "FailureDetector", "Site", "SiteStatus"]

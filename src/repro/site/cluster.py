"""Cluster assembly: kernel + network + sites + ground-truth failure feed."""

from __future__ import annotations

import typing

from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.obs import Observability
from repro.sim.kernel import Kernel
from repro.site.detector import FailureDetector
from repro.site.site import Site, SiteStatus
from repro.wal import WalConfig


class Cluster:
    """The physical system: n sites on one network.

    The cluster is the *ground truth* for liveness. Crash and restart are
    injected here; each surviving site's :class:`FailureDetector` is
    notified ``detection_delay`` later, modeling timeout-based detection
    that is sound under the crash-only failure model (§3.3).

    Parameters
    ----------
    kernel:
        Simulation kernel.
    n_sites:
        Sites are numbered ``1..n_sites`` (matching the paper's
        ``NS[1..n]`` notation).
    latency:
        Network latency model (defaults to the network's default).
    detection_delay:
        How long after a crash each surviving site's detector fires.
    """

    def __init__(
        self,
        kernel: Kernel,
        n_sites: int,
        latency: LatencyModel | None = None,
        detection_delay: float = 5.0,
        loss_probability: float = 0.0,
        obs: Observability | None = None,
        wal_config: WalConfig | None = None,
    ) -> None:
        if n_sites < 1:
            raise ValueError(f"need at least one site, got {n_sites}")
        self.kernel = kernel
        self.obs = obs if obs is not None else Observability(kernel)
        self.network = Network(kernel, latency=latency, loss_probability=loss_probability)
        self.detection_delay = detection_delay
        self.sites: dict[int, Site] = {
            site_id: Site(
                kernel, self.network, site_id, obs=self.obs, wal_config=wal_config
            )
            for site_id in range(1, n_sites + 1)
        }
        self.detectors: dict[int, FailureDetector] = {
            site_id: FailureDetector(site_id, self.site_ids) for site_id in self.sites
        }
        #: Called with the recovered site id after each recovery
        #: announcement (used e.g. to re-kick stalled copiers).
        self.recovered_hooks: list[typing.Callable[[int], None]] = []

    # -- queries -------------------------------------------------------------

    @property
    def site_ids(self) -> list[int]:
        return sorted(self.sites)

    def site(self, site_id: int) -> Site:
        return self.sites[site_id]

    def detector(self, site_id: int) -> FailureDetector:
        return self.detectors[site_id]

    def operational_sites(self) -> list[int]:
        """Ground truth: sites currently in the UP state."""
        return [sid for sid, site in self.sites.items() if site.is_operational]

    def powered_sites(self) -> list[int]:
        """Sites that are UP or RECOVERING (their TM/DM are on)."""
        return [sid for sid, site in self.sites.items() if not site.is_down]

    # -- boot -----------------------------------------------------------------

    def boot_all(self) -> None:
        """Initial cold boot: every site comes up directly as operational.

        This models system installation, before which no updates exist, so
        no copy can be stale; the paper's recovery procedure only governs
        *re*-joining after a crash.
        """
        for site in self.sites.values():
            site.power_on()
            site.status = SiteStatus.UP

    # -- failure injection -------------------------------------------------------

    def crash_site(self, site_id: int) -> None:
        """Crash ``site_id`` now and schedule detector notifications."""
        site = self.sites[site_id]
        site.crash()
        self.detectors[site_id].reset(())
        for other_id, detector in self.detectors.items():
            if other_id == site_id:
                continue
            self.kernel.call_soon(
                self._notify_down, other_id, site_id, delay=self.detection_delay
            )

    def _notify_down(self, observer_id: int, crashed_id: int) -> None:
        # Only live observers can detect, and only if the crashed site has
        # not already announced itself up again via recovery.
        observer = self.sites[observer_id]
        crashed = self.sites[crashed_id]
        if observer.is_down:
            return
        if not crashed.is_down:
            return  # recovered before this observer's timeout fired
        self.detectors[observer_id].mark_down(crashed_id)

    def power_on_site(self, site_id: int) -> None:
        """Power a crashed site back on (it enters RECOVERING).

        The rebooting site's detector is seeded with the current ground
        truth, modeling a round of boot-time pings.
        """
        site = self.sites[site_id]
        site.power_on()
        self.detectors[site_id].reset(
            [sid for sid in self.sites if not self.sites[sid].is_down]
        )

    def notify_recovered(self, site_id: int) -> None:
        """Tell every live detector that ``site_id`` is back.

        Invoked by the recovery layer after the type-1 control transaction
        commits (the paper's announcement moment).
        """
        for other_id, detector in self.detectors.items():
            if not self.sites[other_id].is_down:
                detector.mark_up(site_id)
        for hook in list(self.recovered_hooks):
            hook(site_id)

    def __repr__(self) -> str:
        states = ", ".join(f"{sid}:{site.status.value}" for sid, site in sorted(self.sites.items()))
        return f"<Cluster {states}>"

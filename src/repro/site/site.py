"""A single database site: runtime state, lifecycle, crash semantics."""

from __future__ import annotations

import enum
import typing

from repro.errors import InvalidStateTransition
from repro.net.network import Network
from repro.net.rpc import RpcNode
from repro.obs import Observability
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.storage.copies import CopyStore
from repro.storage.stable import StableStorage
from repro.wal import SiteWal, WalConfig


class SiteStatus(enum.Enum):
    """The three distinguishable states of §3.1.

    ``DOWN``: no DDBS activity. ``RECOVERING``: TM/DM on for control
    transactions, user transactions refused. ``UP``: fully operational.
    """

    DOWN = "down"
    RECOVERING = "recovering"
    UP = "up"


class Site:
    """Per-site runtime: RPC, storage, background processes, lifecycle.

    Database components (DM, TM, recovery manager) attach themselves via
    handlers on :attr:`rpc` and via the crash/power-on hook lists. The
    site itself is protocol-agnostic substrate.
    """

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        site_id: int,
        obs: "Observability | None" = None,
        wal_config: WalConfig | None = None,
    ) -> None:
        self.kernel = kernel
        self.site_id = site_id
        #: Shared observability bundle; components living on this site
        #: (DM, TM, copier, recovery) reach it as ``self.site.obs``.
        self.obs = obs if obs is not None else Observability(kernel)
        self.rpc = RpcNode(kernel, network, site_id, obs=self.obs)
        self.stable = StableStorage()
        self.copies = CopyStore(site_id)
        self.status = SiteStatus.DOWN
        #: Partition-mode gate (see repro.core.partition_merge): an
        #: operational site that cannot reach a majority refuses user
        #: transactions without giving up its session. Always False in
        #: the paper's crash-only model.
        self.user_frozen = False
        self.crash_hooks: list[typing.Callable[[], None]] = []
        self.power_on_hooks: list[typing.Callable[[], None]] = []
        #: Durability layer: journals committed copy mutations and, at
        #: power-on, rebuilds copies/session state from checkpoint + log
        #: replay (None when disabled — legacy crash semantics).
        wal_config = wal_config if wal_config is not None else WalConfig()
        self.wal: SiteWal | None = (
            SiteWal(self, wal_config) if wal_config.enabled else None
        )
        # Insertion-ordered dict-as-set: a plain set would interrupt the
        # procs in id-hash order on crash(), which varies across
        # interpreter runs (REP002).
        self._procs: dict[Process, None] = {}
        # Lifecycle bookkeeping for recovery-latency metrics (E2).
        self.last_crash_time: float | None = None
        self.last_power_on_time: float | None = None
        self.crash_count = 0

    # -- state queries ------------------------------------------------------

    @property
    def is_down(self) -> bool:
        return self.status is SiteStatus.DOWN

    @property
    def is_operational(self) -> bool:
        """True only in the UP state (the paper's "operational")."""
        return self.status is SiteStatus.UP

    # -- background processes --------------------------------------------------

    def spawn(self, generator: typing.Generator, name: str = "") -> Process:
        """Run a process that dies with the site.

        The process is killed (interrupted) on :meth:`crash`; its failure
        by interrupt is expected and therefore defused.
        """
        proc = self.kernel.process(generator, name=f"site{self.site_id}:{name}")
        proc.defuse()
        self._procs[proc] = None
        proc.add_callback(lambda _ev: self._procs.pop(proc, None))
        return proc

    # -- lifecycle ----------------------------------------------------------------

    def power_on(self) -> None:
        """DOWN → RECOVERING: turn on TM/DM for control transactions (§3.4/1)."""
        if self.status is not SiteStatus.DOWN:
            raise InvalidStateTransition(
                f"site {self.site_id}: power_on in state {self.status.value}"
            )
        self.status = SiteStatus.RECOVERING
        self.last_power_on_time = self.kernel.now
        if self.wal is not None and self.crash_count > 0:
            # Restart-by-replay happens before any component (RPC
            # handlers, power-on hooks) can observe the site's state.
            # Installation boot (never crashed) has nothing to replay.
            self.wal.restore()
        self.rpc.start()
        for hook in list(self.power_on_hooks):
            hook()

    def become_operational(self) -> None:
        """RECOVERING → UP (recovery step 4, after type-1 commit)."""
        if self.status is not SiteStatus.RECOVERING:
            raise InvalidStateTransition(
                f"site {self.site_id}: become_operational in state {self.status.value}"
            )
        self.status = SiteStatus.UP

    def crash(self) -> None:
        """Crash-stop: volatile state is lost, stable state survives.

        Idempotent on an already-down site only in the sense that it is an
        error — callers (the cluster) guard against double crashes.
        """
        if self.status is SiteStatus.DOWN:
            raise InvalidStateTransition(f"site {self.site_id} is already down")
        self.status = SiteStatus.DOWN
        self.user_frozen = False
        self.last_crash_time = self.kernel.now
        self.crash_count += 1
        self.rpc.stop()
        for proc in list(self._procs):
            if proc.is_alive:
                proc.interrupt("site-crash")
        self._procs.clear()
        for hook in list(self.crash_hooks):
            hook()

    def __repr__(self) -> str:
        return f"<Site {self.site_id} {self.status.value}>"

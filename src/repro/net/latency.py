"""Pluggable one-way message latency models."""

from __future__ import annotations

import random
import typing


class LatencyModel(typing.Protocol):
    """Samples a one-way delivery delay for a single message."""

    def sample(self, rng: random.Random) -> float:  # pragma: no cover - protocol
        ...


class ConstantLatency:
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ValueError(f"negative latency: {delay}")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        """The fixed delay."""
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay})"


class UniformLatency:
    """Latency drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"invalid latency range [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        """A uniform draw from [low, high]."""
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency:
    """``floor`` plus an exponential tail with the given ``mean`` tail delay.

    A reasonable stand-in for LAN behaviour: a propagation floor plus
    queueing jitter.
    """

    def __init__(self, floor: float = 0.1, mean: float = 0.5) -> None:
        if floor < 0 or mean <= 0:
            raise ValueError(f"invalid ExponentialLatency({floor}, {mean})")
        self.floor = floor
        self.mean = mean

    def sample(self, rng: random.Random) -> float:
        """Floor plus an exponential tail draw."""
        return self.floor + rng.expovariate(1.0 / self.mean)

    def __repr__(self) -> str:
        return f"ExponentialLatency(floor={self.floor}, mean={self.mean})"

"""The simulated network fabric.

Crash-stop semantics: a message addressed to a site that is down at
*delivery* time is dropped silently; a site that is down cannot send.
Senders learn about failures only via timeouts (see :mod:`repro.net.rpc`)
or the failure detector (:mod:`repro.site.detector`), never via magic.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

from repro.errors import NetworkError
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.messages import Message
from repro.sim.kernel import Kernel
from repro.sim.queue import Queue

#: Fixed per-message envelope size (headers, ids) used by the byte
#: accounting; payloads add their own ``wire_size`` when they define one.
ENVELOPE_BYTES = 64


def _wire_size(msg: Message) -> int:
    return ENVELOPE_BYTES + getattr(msg.payload, "wire_size", 0)


@dataclasses.dataclass
class NetworkStats:
    """Counters used by the overhead experiments (E3, E7).

    Remote and intra-site traffic are accounted separately so that the
    conservation law ``sent == delivered + sum(dropped_*)`` holds exactly
    for the remote counters (intra-site "messages" are procedure calls
    and never cross the network): ``delivered`` counts remote deliveries
    only, ``local_delivered``/``dropped_local_down`` partition
    ``local_sent`` the same way. Byte totals weight each message by its
    payload's ``wire_size`` (see :mod:`repro.txn.payloads`) plus a fixed
    64-byte envelope.
    """

    sent: int = 0
    local_sent: int = 0
    delivered: int = 0
    local_delivered: int = 0
    dropped_dst_down: int = 0
    dropped_src_down: int = 0
    dropped_loss: int = 0
    dropped_partition: int = 0
    dropped_local_down: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    by_kind: collections.Counter = dataclasses.field(default_factory=collections.Counter)
    delivered_by_kind: collections.Counter = dataclasses.field(
        default_factory=collections.Counter
    )

    @property
    def dropped(self) -> int:
        """All remote drops combined (``sent - delivered`` when quiesced)."""
        return (
            self.dropped_dst_down
            + self.dropped_src_down
            + self.dropped_loss
            + self.dropped_partition
        )

    def snapshot(self) -> dict:
        """A plain-dict copy, for metric reports."""
        return {
            "sent": self.sent,
            "local_sent": self.local_sent,
            "delivered": self.delivered,
            "local_delivered": self.local_delivered,
            "dropped_dst_down": self.dropped_dst_down,
            "dropped_src_down": self.dropped_src_down,
            "dropped_loss": self.dropped_loss,
            "dropped_partition": self.dropped_partition,
            "dropped_local_down": self.dropped_local_down,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
            "by_kind": dict(self.by_kind),
            "delivered_by_kind": dict(self.delivered_by_kind),
        }


class Endpoint:
    """A site's attachment point: an inbox plus an up/down flag."""

    def __init__(self, kernel: Kernel, site_id: int) -> None:
        self.site_id = site_id
        self.inbox: Queue = Queue(kernel, name=f"inbox[{site_id}]")
        self.receiving = True

    def go_down(self) -> None:
        """Stop receiving and drop everything queued (volatile state)."""
        self.receiving = False
        self.inbox.clear()
        self.inbox.cancel_waiters()

    def go_up(self) -> None:
        """Resume receiving messages."""
        self.receiving = True


class Network:
    """Point-to-point message delivery between attached endpoints.

    Parameters
    ----------
    kernel:
        Simulation kernel providing the clock and event loop.
    latency:
        One-way delay model, sampled per message.
    loss_probability:
        Probability that an individual message is lost in transit even
        between live sites (default 0: the paper assumes reliable links).
    """

    def __init__(
        self,
        kernel: Kernel,
        latency: LatencyModel | None = None,
        loss_probability: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(f"loss_probability out of range: {loss_probability}")
        self.kernel = kernel
        self.latency = latency if latency is not None else ConstantLatency(1.0)
        self.loss_probability = loss_probability
        self.stats = NetworkStats()
        self._endpoints: dict[int, Endpoint] = {}
        self._rng = kernel.rng.stream("net")
        self._partition: dict[int, int] | None = None  # site -> group index

    def attach(self, site_id: int) -> Endpoint:
        """Create (or return) the endpoint for ``site_id``."""
        endpoint = self._endpoints.get(site_id)
        if endpoint is None:
            endpoint = Endpoint(self.kernel, site_id)
            self._endpoints[site_id] = endpoint
        return endpoint

    def endpoint(self, site_id: int) -> Endpoint:
        """Return the endpoint for ``site_id``; it must be attached."""
        try:
            return self._endpoints[site_id]
        except KeyError:
            raise NetworkError(f"site {site_id} is not attached") from None

    @property
    def site_ids(self) -> list[int]:
        """All attached site ids, sorted."""
        return sorted(self._endpoints)

    def set_partition(self, groups: typing.Sequence[typing.Collection[int]]) -> None:
        """Split the network: messages between groups are dropped.

        The paper's algorithm explicitly does NOT handle partitions
        (§1); this switch exists to *demonstrate* that boundary (the
        algorithm stays safe but cross-partition operations block) and
        as the substrate for the §6 partition-merge direction. Sites not
        listed in any group form an implicit final group together.
        """
        mapping: dict[int, int] = {}
        for index, group in enumerate(groups):
            for site_id in group:
                if site_id in mapping:
                    raise NetworkError(f"site {site_id} in two partition groups")
                mapping[site_id] = index
        for site_id in self._endpoints:
            mapping.setdefault(site_id, len(groups))
        self._partition = mapping

    def heal_partition(self) -> None:
        """Restore full connectivity."""
        self._partition = None

    def _partitioned(self, src: int, dst: int) -> bool:
        if self._partition is None:
            return False
        return self._partition.get(src) != self._partition.get(dst)

    def send(self, msg: Message) -> None:
        """Send ``msg``; delivery (or drop) happens after a sampled latency."""
        san = self.kernel._sanitize
        if san is not None:
            # Happens-before message edge: stamp the sender's vector
            # clock by msg_id, joined when the rpc layer picks it up.
            san.on_send(msg.msg_id)
        dst = self.endpoint(msg.dst)
        src = self.endpoint(msg.src)
        if msg.src == msg.dst:
            # Intra-site "messages" (a TM talking to its co-located DM) are
            # procedure calls: instantaneous, lossless, and not network
            # traffic for the message-count metrics (E3/E7).
            self.stats.local_sent += 1
            if src.receiving:
                self.kernel.call_soon(self._deliver, dst, msg)
            else:
                self.stats.dropped_local_down += 1
            return
        self.stats.sent += 1
        self.stats.by_kind[msg.kind] += 1
        self.stats.bytes_sent += _wire_size(msg)
        if not src.receiving:
            # A down site cannot transmit; this only happens in narrow
            # crash windows where a process is being torn down.
            self.stats.dropped_src_down += 1
            return
        if self.loss_probability and self._rng.random() < self.loss_probability:
            self.stats.dropped_loss += 1
            return
        delay = self.latency.sample(self._rng)
        self.kernel.call_soon(self._deliver, dst, msg, delay=delay)

    def _deliver(self, dst: Endpoint, msg: Message) -> None:
        if msg.src == msg.dst:
            if dst.receiving:
                self.stats.local_delivered += 1
                dst.inbox.put(msg)
            else:
                self.stats.dropped_local_down += 1
            return
        if self._partitioned(msg.src, msg.dst):
            self.stats.dropped_partition += 1
            return
        if dst.receiving:
            self.stats.delivered += 1
            self.stats.delivered_by_kind[msg.kind] += 1
            self.stats.bytes_delivered += _wire_size(msg)
            dst.inbox.put(msg)
        else:
            self.stats.dropped_dst_down += 1

"""Request/reply messaging on top of :class:`~repro.net.network.Network`.

Each site runs one :class:`RpcNode`. Incoming requests are dispatched to
registered handlers, each served by its own simulated process so that a
handler blocked on a lock does not stall the site. Handler exceptions
derived from :class:`~repro.errors.ReproError` propagate to the caller
as-is (this is how :class:`~repro.errors.SessionMismatch` reaches the
requesting TM, per §3.1 of the paper); any other exception is a bug and is
wrapped in :class:`RemoteError`.

Call futures are created *defused*: when a caller dies in a site crash,
the late reply or timeout that would have woken it must not be reported as
an unhandled failure.

2PC batching: calls whose kind is in :data:`BATCH_KINDS` bound for a
*remote* destination are not sent immediately — they are queued per
destination and flushed on a kernel microtask (zero simulated delay), so
every prepare/commit/abort issued within one timestep to the same site
coalesces into a single ``rpc.batch`` envelope, answered by a single
``rpc.batch.reply``. This is also how decisions piggyback: a
``dm.commit``/``dm.abort`` for a decided transaction rides the same
envelope as whatever other 2PC traffic the timestep produced for that
site. Single-call batches degenerate to the plain message, so the wire
protocol only changes when there is something to coalesce.
"""

from __future__ import annotations

import inspect
import typing

from repro.errors import Interrupt, NetworkError, ReproError, RpcTimeout
from repro.net.messages import BatchCalls, BatchResults, Message
from repro.net.network import Endpoint, Network
from repro.sim.events import Future
from repro.sim.kernel import Callback, Kernel
from repro.sim.process import Process

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability

Handler = typing.Callable[[object, int], object]

#: Call kinds eligible for per-destination coalescing: the 2PC fan-out
#: rounds, which are the protocol's high-multiplicity traffic. Reads and
#: writes stay unbatched — their latency is the client's critical path
#: and their handlers may block on locks for long stretches.
BATCH_KINDS: frozenset[str] = frozenset({"dm.prepare", "dm.commit", "dm.abort"})

#: Decision kinds counted as piggybacked when they share an envelope.
_DECISION_KINDS = ("dm.commit", "dm.abort")


class RemoteError(NetworkError):
    """A handler raised an exception that is not part of the protocol."""

    __slots__ = ("site_id", "kind", "original")

    def __init__(self, site_id: int, kind: str, original: BaseException) -> None:
        super().__init__(f"handler {kind!r} at site {site_id} crashed: {original!r}")
        self.site_id = site_id
        self.kind = kind
        self.original = original


class RpcNode:
    """Per-site RPC endpoint: handler registry, dispatcher, caller API."""

    __slots__ = (
        "kernel",
        "network",
        "site_id",
        "obs",
        "endpoint",
        "batch_kinds",
        "stats_batches",
        "stats_batched_calls",
        "stats_decisions_piggybacked",
        "_handlers",
        "_pending",
        "_dispatcher",
        "_servers",
        "_outbatch",
    )

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        site_id: int,
        obs: "Observability | None" = None,
    ) -> None:
        self.kernel = kernel
        self.network = network
        self.site_id = site_id
        self.obs = obs
        self.endpoint: Endpoint = network.attach(site_id)
        #: Kinds this node coalesces (per-instance so tests and
        #: experiments can disable batching with ``()``).
        self.batch_kinds: frozenset[str] = BATCH_KINDS
        self.stats_batches = 0  # envelopes sent with >= 2 calls
        self.stats_batched_calls = 0  # calls that rode those envelopes
        self.stats_decisions_piggybacked = 0  # commit/abort among them
        self._handlers: dict[str, Handler] = {}
        #: msg_id -> (reply future, expiry timer or None). The timer is a
        #: lazily-cancelled kernel callback: when the reply wins the race
        #: (the overwhelmingly common case) it is cancelled in O(1) and
        #: skipped when its heap entry surfaces, instead of firing into a
        #: dead ``_pending`` entry.
        self._pending: dict[int, tuple[Future, Callback | None]] = {}
        self._dispatcher: Process | None = None
        # Insertion-ordered dict-as-set: a plain set would interrupt the
        # servers in id-hash order on stop(), which varies across
        # interpreter runs (REP002).
        self._servers: dict[Process, None] = {}
        #: Per-destination outgoing batch, flushed on a kernel microtask.
        self._outbatch: dict[int, list[Message]] = {}

    # -- lifecycle ----------------------------------------------------------

    @property
    def running(self) -> bool:
        """True while the dispatcher process is alive."""
        return self._dispatcher is not None and self._dispatcher.is_alive

    def start(self) -> None:
        """Begin receiving: mark the endpoint up and start dispatching."""
        if self.running:
            return
        self.endpoint.go_up()
        self._dispatcher = self.kernel.process(
            self._dispatch(), name=f"rpc-dispatch[{self.site_id}]"
        )
        self._dispatcher.defuse()  # dies by Interrupt on stop(); that's expected

    def stop(self) -> None:
        """Crash-stop: kill dispatcher and servers, drop inbox and pending."""
        self.endpoint.go_down()
        if self._dispatcher is not None and self._dispatcher.is_alive:
            self._dispatcher.interrupt("stop")
        self._dispatcher = None
        for server in list(self._servers):
            if server.is_alive:
                server.interrupt("stop")
        self._servers.clear()
        for _future, timer in self._pending.values():
            if timer is not None:
                timer.cancel()
        self._pending.clear()
        self._outbatch.clear()

    # -- handler registry ------------------------------------------------------

    def register(self, kind: str, handler: Handler) -> None:
        """Route requests of ``kind`` to ``handler(payload, src_site)``.

        The handler may return a plain value, or a generator which is then
        driven as part of the serving process (it may block on locks,
        timeouts, nested RPCs, ...).
        """
        if kind in self._handlers:
            raise NetworkError(f"duplicate handler for {kind!r} at site {self.site_id}")
        self._handlers[kind] = handler

    # -- caller API ------------------------------------------------------------

    def call(
        self,
        dst: int,
        kind: str,
        payload: object = None,
        timeout: float | None = None,
        span_parent: int | None = None,
    ) -> Future:
        """Send a request; the returned future yields the reply value.

        Fails with the remote :class:`~repro.errors.ReproError`, with
        :class:`RemoteError` for handler bugs, or with
        :class:`~repro.errors.RpcTimeout` if no reply arrives in time.

        ``span_parent`` attributes the call (and the remote work it
        triggers) to a caller span when tracing is on; the span id rides
        the message envelope so the serving site can parent its work
        under it.
        """
        span_id = None
        obs = self.obs
        if obs is not None and obs.spans_on:
            recorder = obs.spans
            span = recorder.start(f"rpc:{kind}", "rpc", self.site_id, parent=span_parent)
            span_id = span.span_id
            msg = Message(
                src=self.site_id, dst=dst, kind=kind, payload=payload, span_id=span_id
            )
            future = Future(self.kernel, name=f"rpc:{kind}->{dst}").defuse()
            future.add_callback(
                lambda ev: recorder.finish(span, dst=dst, ok=ev.ok)
            )
        else:
            msg = Message(src=self.site_id, dst=dst, kind=kind, payload=payload)
            future = Future(self.kernel, name=f"rpc:{kind}->{dst}").defuse()
        timer = (
            self.kernel.schedule_callback(timeout, self._expire, msg.msg_id, dst, kind)
            if timeout is not None
            else None
        )
        self._pending[msg.msg_id] = (future, timer)
        self._send_or_batch(msg)
        return future

    def call_many(
        self,
        dsts: typing.Iterable[int],
        kind: str,
        payload: object = None,
        timeout: float | None = None,
        span_parent: int | None = None,
    ) -> list[tuple[int, Future]]:
        """Issue the same request to several sites; returns (dst, future) pairs."""
        return [
            (dst, self.call(dst, kind, payload, timeout, span_parent=span_parent))
            for dst in dsts
        ]

    def _expire(self, msg_id: int, dst: int, kind: str) -> None:
        entry = self._pending.pop(msg_id, None)
        if entry is not None and not entry[0].triggered:
            entry[0].fail(RpcTimeout(dst, kind))

    # -- outgoing batcher ------------------------------------------------------

    def _send_now(self, msg: Message) -> None:
        """Immediate send that preserves per-destination FIFO: anything
        already parked in the batch for this destination departs first.
        Without this, a parked ``dm.commit`` could be overtaken by a
        later same-timestep read/write/reply to the same site — an
        ordering the unbatched protocol never produced."""
        if self._outbatch.get(msg.dst):
            self._flush_batch(msg.dst)
        self.network.send(msg)

    def _send_or_batch(self, msg: Message) -> None:
        """Send now, or park in the per-destination batch.

        Only remote 2PC traffic is coalesced: local sends are already
        zero-latency same-timestep deliveries, so batching them would
        only add framing.
        """
        if msg.kind not in self.batch_kinds or msg.dst == self.site_id:
            self._send_now(msg)
            return
        queue = self._outbatch.setdefault(msg.dst, [])
        queue.append(msg)
        if len(queue) == 1:
            # First call this timestep for this destination: arm the
            # flush microtask. Everything queued before it runs — all
            # same-timestep calls — rides the same envelope.
            self.kernel.call_soon(self._flush_batch, msg.dst)

    def _flush_batch(self, dst: int) -> None:
        msgs = self._outbatch.pop(dst, None)
        if not msgs:
            return  # crashed (stop() cleared the batch) before the flush
        if len(msgs) == 1:
            self.network.send(msgs[0])
            return
        self.stats_batches += 1
        self.stats_batched_calls += len(msgs)
        self.stats_decisions_piggybacked += sum(
            1 for m in msgs if m.kind in _DECISION_KINDS
        )
        self.network.send(
            Message(
                src=self.site_id,
                dst=dst,
                kind="rpc.batch",
                payload=BatchCalls(
                    tuple((m.msg_id, m.kind, m.payload, m.span_id) for m in msgs)
                ),
            )
        )

    # -- server side -----------------------------------------------------------

    def _dispatch(self) -> typing.Generator:
        # Greedy drain: one wakeup handles every message already in the
        # inbox. Beyond saving a kernel event per message, this is what
        # lets outgoing batches form — all same-timestep replies complete
        # their callers before any caller's follow-up flush fires, so the
        # follow-up calls coalesce.
        inbox = self.endpoint.inbox
        while True:
            msg = yield inbox.get()
            while True:
                if msg.is_reply():
                    self._complete_call(msg)
                else:
                    self._spawn_server(msg)
                if not len(inbox):
                    break
                msg = inbox.get_nowait()

    def _complete_call(self, msg: Message) -> None:
        san = self.kernel._sanitize
        if san is not None:
            san.join_message(msg.msg_id)
        if msg.kind == "rpc.batch.reply":
            batch_results = msg.payload
            assert isinstance(batch_results, BatchResults)
            for msg_id, ok, value in batch_results.results:
                self._complete_one(msg_id, ok, value)
            return
        assert msg.reply_to is not None
        ok, value = msg.payload
        self._complete_one(msg.reply_to, ok, value)

    def _complete_one(self, msg_id: int, ok: bool, value: object) -> None:
        entry = self._pending.pop(msg_id, None)
        if entry is None:
            return  # late reply for a timed-out or pre-crash request
        future, timer = entry
        if timer is not None:
            timer.cancel()
        if future.triggered:
            return
        if ok:
            future.succeed(value)
        else:
            future.fail(value)

    def _spawn_server(self, msg: Message) -> None:
        san = self.kernel._sanitize
        if san is not None:
            # Join even though the wake-up event may predate this message:
            # the greedy inbox drain handles messages whose sender clocks
            # the dispatch's scheduling edge did not carry.
            san.join_message(msg.msg_id)
        if msg.kind == "rpc.batch":
            self._spawn_batch_server(msg)
            return
        handler = self._handlers.get(msg.kind)
        if handler is None:
            exc = NetworkError(f"no handler for {msg.kind!r} at site {self.site_id}")
            self._reply(msg, ok=False, value=exc)
            return
        server = self.kernel.process(
            self._serve(handler, msg), name=f"rpc-serve[{self.site_id}]:{msg.kind}"
        )
        self._servers[server] = None
        server.defuse()
        server.add_callback(lambda _ev: self._servers.pop(server, None))
        # Serve-side span: opened here (not inside the handler) because
        # handlers may be generators whose bodies run later; the span is
        # closed when the serving process dies, whatever the outcome.
        obs = self.obs
        if obs is not None and obs.spans_on and msg.span_id is not None:
            recorder = obs.spans
            span = recorder.start(
                f"serve:{msg.kind}", "serve", self.site_id, parent=msg.span_id
            )
            server.add_callback(lambda ev: recorder.finish(span, ok=ev.ok))

    def _serve(self, handler: Handler, msg: Message) -> typing.Generator:
        try:
            result = handler(msg.payload, msg.src)
            if inspect.isgenerator(result):
                result = yield from result
        except Interrupt:
            raise  # site crash tearing this server down
        except ReproError as exc:
            self._reply(msg, ok=False, value=exc)
            return
        except Exception as exc:  # noqa: BLE001 - handler bug, not protocol
            self._reply(msg, ok=False, value=RemoteError(self.site_id, msg.kind, exc))
            return
        self._reply(msg, ok=True, value=result)

    def _spawn_batch_server(self, envelope: Message) -> None:
        """Unpack an ``rpc.batch``: serve every sub-call in its own process
        (identical semantics to unbatched delivery), answer all of them
        with one ``rpc.batch.reply`` once the last server finishes."""
        batch = envelope.payload
        assert isinstance(batch, BatchCalls)
        results: dict[int, tuple[bool, object]] = {}
        remaining = [len(batch.calls)]

        def finish_one(_ev: object = None) -> None:
            remaining[0] -= 1
            if remaining[0] == 0 and self.running:
                self._reply_batch(envelope, batch, results)

        for msg_id, kind, payload, span_id in batch.calls:
            handler = self._handlers.get(kind)
            if handler is None:
                results[msg_id] = (
                    False,
                    NetworkError(f"no handler for {kind!r} at site {self.site_id}"),
                )
                finish_one()
                continue
            server = self.kernel.process(
                self._serve_sub(handler, msg_id, kind, payload, envelope.src, results),
                name=f"rpc-serve[{self.site_id}]:{kind}",
            )
            self._servers[server] = None
            server.defuse()
            server.add_callback(
                lambda _ev, server=server: self._servers.pop(server, None)
            )
            obs = self.obs
            if obs is not None and obs.spans_on and span_id is not None:
                recorder = obs.spans
                span = recorder.start(
                    f"serve:{kind}", "serve", self.site_id, parent=span_id
                )
                server.add_callback(
                    lambda ev, span=span: recorder.finish(span, ok=ev.ok)
                )
            server.add_callback(finish_one)

    def _serve_sub(
        self,
        handler: Handler,
        msg_id: int,
        kind: str,
        payload: object,
        src: int,
        results: dict[int, tuple[bool, object]],
    ) -> typing.Generator:
        try:
            result = handler(payload, src)
            if inspect.isgenerator(result):
                result = yield from result
        except Interrupt:
            raise  # site crash tearing this server down
        except ReproError as exc:
            results[msg_id] = (False, exc)
            return
        except Exception as exc:  # noqa: BLE001 - handler bug, not protocol
            results[msg_id] = (False, RemoteError(self.site_id, kind, exc))
            return
        results[msg_id] = (True, result)

    def _reply_batch(
        self,
        envelope: Message,
        batch: BatchCalls,
        results: dict[int, tuple[bool, object]],
    ) -> None:
        packed = []
        for msg_id, kind, _payload, _span in batch.calls:
            ok, value = results.get(
                msg_id,
                (False, NetworkError(f"handler {kind!r} at site {self.site_id} died")),
            )
            packed.append((msg_id, ok, value))
        self._send_now(
            Message(
                src=self.site_id,
                dst=envelope.src,
                kind="rpc.batch.reply",
                payload=BatchResults(tuple(packed)),
                reply_to=envelope.msg_id,
            )
        )

    def _reply(self, request: Message, ok: bool, value: object) -> None:
        self._send_now(
            Message(
                src=self.site_id,
                dst=request.src,
                kind=f"{request.kind}.reply",
                payload=(ok, value),
                reply_to=request.msg_id,
            )
        )

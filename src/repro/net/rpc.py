"""Request/reply messaging on top of :class:`~repro.net.network.Network`.

Each site runs one :class:`RpcNode`. Incoming requests are dispatched to
registered handlers, each served by its own simulated process so that a
handler blocked on a lock does not stall the site. Handler exceptions
derived from :class:`~repro.errors.ReproError` propagate to the caller
as-is (this is how :class:`~repro.errors.SessionMismatch` reaches the
requesting TM, per §3.1 of the paper); any other exception is a bug and is
wrapped in :class:`RemoteError`.

Call futures are created *defused*: when a caller dies in a site crash,
the late reply or timeout that would have woken it must not be reported as
an unhandled failure.
"""

from __future__ import annotations

import inspect
import typing

from repro.errors import Interrupt, NetworkError, ReproError, RpcTimeout
from repro.net.messages import Message
from repro.net.network import Endpoint, Network
from repro.sim.events import Future
from repro.sim.kernel import Callback, Kernel
from repro.sim.process import Process

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability

Handler = typing.Callable[[object, int], object]


class RemoteError(NetworkError):
    """A handler raised an exception that is not part of the protocol."""

    def __init__(self, site_id: int, kind: str, original: BaseException) -> None:
        super().__init__(f"handler {kind!r} at site {site_id} crashed: {original!r}")
        self.site_id = site_id
        self.kind = kind
        self.original = original


class RpcNode:
    """Per-site RPC endpoint: handler registry, dispatcher, caller API."""

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        site_id: int,
        obs: "Observability | None" = None,
    ) -> None:
        self.kernel = kernel
        self.network = network
        self.site_id = site_id
        self.obs = obs
        self.endpoint: Endpoint = network.attach(site_id)
        self._handlers: dict[str, Handler] = {}
        #: msg_id -> (reply future, expiry timer or None). The timer is a
        #: lazily-cancelled kernel callback: when the reply wins the race
        #: (the overwhelmingly common case) it is cancelled in O(1) and
        #: skipped when its heap entry surfaces, instead of firing into a
        #: dead ``_pending`` entry.
        self._pending: dict[int, tuple[Future, Callback | None]] = {}
        self._dispatcher: Process | None = None
        # Insertion-ordered dict-as-set: a plain set would interrupt the
        # servers in id-hash order on stop(), which varies across
        # interpreter runs (REP002).
        self._servers: dict[Process, None] = {}

    # -- lifecycle ----------------------------------------------------------

    @property
    def running(self) -> bool:
        """True while the dispatcher process is alive."""
        return self._dispatcher is not None and self._dispatcher.is_alive

    def start(self) -> None:
        """Begin receiving: mark the endpoint up and start dispatching."""
        if self.running:
            return
        self.endpoint.go_up()
        self._dispatcher = self.kernel.process(
            self._dispatch(), name=f"rpc-dispatch[{self.site_id}]"
        )
        self._dispatcher.defuse()  # dies by Interrupt on stop(); that's expected

    def stop(self) -> None:
        """Crash-stop: kill dispatcher and servers, drop inbox and pending."""
        self.endpoint.go_down()
        if self._dispatcher is not None and self._dispatcher.is_alive:
            self._dispatcher.interrupt("stop")
        self._dispatcher = None
        for server in list(self._servers):
            if server.is_alive:
                server.interrupt("stop")
        self._servers.clear()
        for _future, timer in self._pending.values():
            if timer is not None:
                timer.cancel()
        self._pending.clear()

    # -- handler registry ------------------------------------------------------

    def register(self, kind: str, handler: Handler) -> None:
        """Route requests of ``kind`` to ``handler(payload, src_site)``.

        The handler may return a plain value, or a generator which is then
        driven as part of the serving process (it may block on locks,
        timeouts, nested RPCs, ...).
        """
        if kind in self._handlers:
            raise NetworkError(f"duplicate handler for {kind!r} at site {self.site_id}")
        self._handlers[kind] = handler

    # -- caller API ------------------------------------------------------------

    def call(
        self,
        dst: int,
        kind: str,
        payload: object = None,
        timeout: float | None = None,
        span_parent: int | None = None,
    ) -> Future:
        """Send a request; the returned future yields the reply value.

        Fails with the remote :class:`~repro.errors.ReproError`, with
        :class:`RemoteError` for handler bugs, or with
        :class:`~repro.errors.RpcTimeout` if no reply arrives in time.

        ``span_parent`` attributes the call (and the remote work it
        triggers) to a caller span when tracing is on; the span id rides
        the message envelope so the serving site can parent its work
        under it.
        """
        span_id = None
        obs = self.obs
        if obs is not None and obs.spans_on:
            recorder = obs.spans
            span = recorder.start(f"rpc:{kind}", "rpc", self.site_id, parent=span_parent)
            span_id = span.span_id
            msg = Message(
                src=self.site_id, dst=dst, kind=kind, payload=payload, span_id=span_id
            )
            future = Future(self.kernel, name=f"rpc:{kind}->{dst}").defuse()
            future.add_callback(
                lambda ev: recorder.finish(span, dst=dst, ok=ev.ok)
            )
        else:
            msg = Message(src=self.site_id, dst=dst, kind=kind, payload=payload)
            future = Future(self.kernel, name=f"rpc:{kind}->{dst}").defuse()
        timer = (
            self.kernel.schedule_callback(timeout, self._expire, msg.msg_id, dst, kind)
            if timeout is not None
            else None
        )
        self._pending[msg.msg_id] = (future, timer)
        self.network.send(msg)
        return future

    def call_many(
        self,
        dsts: typing.Iterable[int],
        kind: str,
        payload: object = None,
        timeout: float | None = None,
        span_parent: int | None = None,
    ) -> list[tuple[int, Future]]:
        """Issue the same request to several sites; returns (dst, future) pairs."""
        return [
            (dst, self.call(dst, kind, payload, timeout, span_parent=span_parent))
            for dst in dsts
        ]

    def _expire(self, msg_id: int, dst: int, kind: str) -> None:
        entry = self._pending.pop(msg_id, None)
        if entry is not None and not entry[0].triggered:
            entry[0].fail(RpcTimeout(dst, kind))

    # -- server side -----------------------------------------------------------

    def _dispatch(self) -> typing.Generator:
        while True:
            msg = yield self.endpoint.inbox.get()
            if msg.is_reply():
                self._complete_call(msg)
            else:
                self._spawn_server(msg)

    def _complete_call(self, msg: Message) -> None:
        assert msg.reply_to is not None
        entry = self._pending.pop(msg.reply_to, None)
        if entry is None:
            return  # late reply for a timed-out or pre-crash request
        future, timer = entry
        if timer is not None:
            timer.cancel()
        if future.triggered:
            return
        ok, value = msg.payload
        if ok:
            future.succeed(value)
        else:
            future.fail(value)

    def _spawn_server(self, msg: Message) -> None:
        handler = self._handlers.get(msg.kind)
        if handler is None:
            exc = NetworkError(f"no handler for {msg.kind!r} at site {self.site_id}")
            self._reply(msg, ok=False, value=exc)
            return
        server = self.kernel.process(
            self._serve(handler, msg), name=f"rpc-serve[{self.site_id}]:{msg.kind}"
        )
        self._servers[server] = None
        server.defuse()
        server.add_callback(lambda _ev: self._servers.pop(server, None))
        # Serve-side span: opened here (not inside the handler) because
        # handlers may be generators whose bodies run later; the span is
        # closed when the serving process dies, whatever the outcome.
        obs = self.obs
        if obs is not None and obs.spans_on and msg.span_id is not None:
            recorder = obs.spans
            span = recorder.start(
                f"serve:{msg.kind}", "serve", self.site_id, parent=msg.span_id
            )
            server.add_callback(lambda ev: recorder.finish(span, ok=ev.ok))

    def _serve(self, handler: Handler, msg: Message) -> typing.Generator:
        try:
            result = handler(msg.payload, msg.src)
            if inspect.isgenerator(result):
                result = yield from result
        except Interrupt:
            raise  # site crash tearing this server down
        except ReproError as exc:
            self._reply(msg, ok=False, value=exc)
            return
        except Exception as exc:  # noqa: BLE001 - handler bug, not protocol
            self._reply(msg, ok=False, value=RemoteError(self.site_id, msg.kind, exc))
            return
        self._reply(msg, ok=True, value=result)

    def _reply(self, request: Message, ok: bool, value: object) -> None:
        self.network.send(
            Message(
                src=self.site_id,
                dst=request.src,
                kind=f"{request.kind}.reply",
                payload=(ok, value),
                reply_to=request.msg_id,
            )
        )

"""Message envelope carried by the simulated network."""

from __future__ import annotations

import dataclasses
import itertools

_msg_counter = itertools.count(1)


def reset_msg_counter() -> None:
    """Restart global message numbering (see ``reset_txn_counter``)."""
    global _msg_counter
    _msg_counter = itertools.count(1)


@dataclasses.dataclass(frozen=True, slots=True)
class Message:
    """An immutable network message.

    Attributes
    ----------
    src, dst:
        Site ids of sender and receiver.
    kind:
        Application-level message type (e.g. ``"read"``, ``"prepare"``).
    payload:
        Arbitrary application data. Treated as opaque by the network.
    msg_id:
        Unique id assigned at construction; used for RPC correlation.
    reply_to:
        For replies, the ``msg_id`` of the request being answered.
    span_id:
        Observability context: the caller's span id, so the serving site
        can attribute its work to the originating transaction
        (:mod:`repro.obs.spans`). ``None`` when tracing is off.
    """

    src: int
    dst: int
    kind: str
    payload: object = None
    msg_id: int = dataclasses.field(default_factory=lambda: next(_msg_counter))
    reply_to: int | None = None
    span_id: int | None = None

    def is_reply(self) -> bool:
        """True when this message answers an earlier request."""
        return self.reply_to is not None


#: Per-sub-call framing cost inside a batch envelope (msg_id + kind tag
#: + ok flag), deliberately smaller than a full Message envelope — the
#: whole point of coalescing.
_BATCH_ITEM_BYTES = 9


@dataclasses.dataclass(frozen=True, slots=True)
class BatchCalls:
    """Several coalesced requests to one destination (``rpc.batch``).

    Each entry is ``(msg_id, kind, payload, span_id)`` of a request that
    would otherwise have been its own message; the receiver serves each
    in its own process (identical semantics to unbatched delivery) and
    answers all of them with one :class:`BatchResults` envelope.
    """

    calls: tuple[tuple[int, str, object, int | None], ...]

    @property
    def wire_size(self) -> int:
        return sum(
            _BATCH_ITEM_BYTES + getattr(payload, "wire_size", 0)
            for _msg_id, _kind, payload, _span in self.calls
        )


@dataclasses.dataclass(frozen=True, slots=True)
class BatchResults:
    """The batched replies: ``(reply_to_msg_id, ok, value)`` per call."""

    results: tuple[tuple[int, bool, object], ...]

    @property
    def wire_size(self) -> int:
        return sum(
            _BATCH_ITEM_BYTES + getattr(value, "wire_size", 0)
            for _msg_id, _ok, value in self.results
        )

"""Network substrate: point-to-point messaging and RPC between sites.

The paper assumes a reliable, non-partitioning network connecting sites
(§1: "the algorithm ... does not handle partition failures"). We model:

* :class:`~repro.net.network.Network` — delivers messages after a sampled
  latency; messages to a crashed site are silently dropped (the sender
  learns of the failure only through timeouts or the failure detector,
  exactly as a real crash-stop site behaves).
* :class:`~repro.net.rpc.RpcNode` — request/reply on top of the network
  with per-request handler processes, remote-exception propagation, and
  timeouts.
* latency models — constant, uniform, exponential-with-floor.

Message counts and byte estimates are recorded by
:class:`~repro.net.network.NetworkStats` for the overhead experiments
(E3, E7).
"""

from repro.net.latency import ConstantLatency, ExponentialLatency, LatencyModel, UniformLatency
from repro.net.messages import Message
from repro.net.network import Endpoint, Network, NetworkStats
from repro.net.rpc import RemoteError, RpcNode

__all__ = [
    "ConstantLatency",
    "Endpoint",
    "ExponentialLatency",
    "LatencyModel",
    "Message",
    "Network",
    "NetworkStats",
    "RemoteError",
    "RpcNode",
    "UniformLatency",
]

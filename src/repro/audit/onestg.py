"""Incremental online 1-STG maintenance (§4, online form).

Mirrors :func:`repro.histories.graphs.build_one_stg` edge-for-edge but
grows the graph as transactions commit instead of rebuilding it post
hoc. The op stream is the omniscient :class:`HistoryRecorder`; a cursor
is pumped forward on every transaction finish and commit application.
Ops of undecided transactions are buffered; aborted ones are dropped;
committed ones contribute:

(i)   READ-FROM edges ``writer -> reader`` (original-writer provenance,
      copier readers and self-reads excluded);
(ii)  write-order edges between version-order neighbours of each logical
      item (non-copier original writes only; the implicit initial
      transaction opens every chain). On a mid-chain insertion the stale
      neighbour edge is *kept*: it is implied by transitivity, so it can
      never manufacture a cycle that the refined chain lacks;
(iii) read-before edges ``reader -> later writer``, maintained from both
      ends — a new reader points at all current later writers, a new
      writer receives an edge from every reader of an earlier version.

Every edge added for transaction T is incident to T, so any new cycle
passes through a transaction processed in the current pump; one
``networkx.find_cycle`` per such transaction keeps detection exact and
incremental. Acyclicity certifies 1-SR (§4 Corollary); the first cycle
fires ``on_cycle`` once and freezes further checking (the graph is
already uncertifiable).
"""

from __future__ import annotations

import bisect
import typing

import networkx

from repro.histories.recorder import INITIAL_TXN, HistoryRecorder, Op, OpType

#: Sort key placing the implicit initial transaction before every real
#: version: real versions carry a positive commit sequence number.
_INITIAL_KEY = (-1.0, -1)

ItemFilter = typing.Callable[[str], bool]
CycleHook = typing.Callable[[str, list], None]


class OnlineOneStg:
    """Incrementally maintained candidate 1-STG over committed txns."""

    def __init__(
        self,
        recorder: HistoryRecorder,
        item_filter: ItemFilter | None = None,
        on_cycle: CycleHook | None = None,
    ) -> None:
        self.recorder = recorder
        self.item_filter = item_filter
        self.on_cycle = on_cycle
        self.graph = networkx.DiGraph()
        self.graph.add_node(INITIAL_TXN)
        self.cycle_found = False
        self._cursor = 0
        self._observed = 0  # ops seen by the cursor, pre-filter
        self._pending: dict[str, list[Op]] = {}
        #: Per item: committed original writers in version order, as a
        #: parallel (sorted keys, txn ids) pair of lists.
        self._order_keys: dict[str, list[tuple[float, int]]] = {}
        self._order_txns: dict[str, list[str]] = {}
        #: (item, writer) -> readers that READ-item-FROM writer.
        self._readers: dict[tuple[str, str], set[str]] = {}
        self._writer_key: dict[tuple[str, str], tuple[float, int]] = {}

    # -- feeding --------------------------------------------------------------

    def pump(self) -> set[str]:
        """Advance over new recorder ops; returns txns that gained edges."""
        touched: set[str] = set()
        ops = self.recorder.ops
        committed = self.recorder.committed
        aborted = self.recorder.aborted
        while self._cursor < len(ops):
            op = ops[self._cursor]
            self._cursor += 1
            self._observed += 1
            if self.item_filter is not None and not self.item_filter(op.item):
                continue
            if op.txn_id in committed:
                self._process(op, touched)
            elif op.txn_id not in aborted:
                self._pending.setdefault(op.txn_id, []).append(op)
        for txn_id in list(self._pending):
            if txn_id in committed:
                for op in self._pending.pop(txn_id):
                    self._process(op, touched)
            elif txn_id in aborted:
                del self._pending[txn_id]
        if touched and not self.cycle_found:
            self._check_cycles(touched)
        return touched

    # -- edge maintenance -----------------------------------------------------

    def _order_of(self, item: str) -> tuple[list[tuple[float, int]], list[str]]:
        keys = self._order_keys.get(item)
        if keys is None:
            keys = self._order_keys[item] = [_INITIAL_KEY]
            self._order_txns[item] = [INITIAL_TXN]
            self._writer_key[(item, INITIAL_TXN)] = _INITIAL_KEY
        return keys, self._order_txns[item]

    def _process(self, op: Op, touched: set[str]) -> None:
        if op.op is OpType.READ:
            self._process_read(op, touched)
        else:
            self._process_write(op, touched)

    def _process_read(self, op: Op, touched: set[str]) -> None:
        if op.kind == "copier":
            return  # copiers are not transactions of the 1C history
        try:
            writer = self.recorder.writer_of_seq(op.version_seq)
        except KeyError:
            return
        reader = op.txn_id
        if writer == reader:
            return
        self.graph.add_edge(writer, reader)
        touched.add(reader)
        self._readers.setdefault((op.item, writer), set()).add(reader)
        key = self._writer_key.get((op.item, writer))
        if key is None:
            return  # writer wrote through copier provenance chains only
        keys, txns = self._order_of(op.item)
        pos = bisect.bisect_right(keys, key)
        for later in txns[pos:]:
            if later != reader:
                self.graph.add_edge(reader, later)

    def _process_write(self, op: Op, touched: set[str]) -> None:
        if op.version_seq != op.txn_seq or op.kind == "copier":
            return  # not an original write: no write-order position
        writer = op.txn_id
        if (op.item, writer) in self._writer_key:
            return  # same logical write applied at another copy
        key = (op.version_ts, op.version_commit)
        keys, txns = self._order_of(op.item)
        pos = bisect.bisect_left(keys, key)
        keys.insert(pos, key)
        txns.insert(pos, writer)
        self._writer_key[(op.item, writer)] = key
        self.graph.add_edge(txns[pos - 1], writer)
        if pos + 1 < len(txns):
            self.graph.add_edge(writer, txns[pos + 1])
        for earlier in txns[:pos]:
            for reader in self._readers.get((op.item, earlier), ()):
                if reader != writer:
                    self.graph.add_edge(reader, writer)
        touched.add(writer)

    # -- cycle detection ------------------------------------------------------

    def _check_cycles(self, touched: set[str]) -> None:
        # Sorted so the same cycle is reported for a given seed no matter
        # how txn-id hashes land across interpreter runs.
        for txn_id in sorted(touched):
            try:
                cycle = networkx.find_cycle(self.graph, source=txn_id)
            except networkx.NetworkXNoCycle:
                continue
            self.cycle_found = True
            if self.on_cycle is not None:
                self.on_cycle(txn_id, list(cycle))
            return

    # -- introspection --------------------------------------------------------

    @property
    def stats(self) -> dict[str, int]:
        return {
            "ops_observed": self._observed,
            "nodes": self.graph.number_of_nodes(),
            "edges": self.graph.number_of_edges(),
            "pending_txns": len(self._pending),
        }

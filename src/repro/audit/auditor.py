"""The online protocol auditor.

:class:`ProtocolAuditor` subscribes to the existing observability
streams (spans, metrics collectors) plus the narrow read-only taps the
TM/DM/WAL expose (``finish_hooks``, ``access_audit_hooks``,
``read_audit_hooks``, ``commit_apply_hooks``, ``flush_hooks``,
``checkpoint_hooks``, site crash/power-on hooks and the cluster's
recovered hook) and continuously evaluates the paper's invariants while
a simulation runs:

1. **online 1SR** — an incremental serialization-graph (candidate
   1-STG over DB items, §4) grown per committed transaction; the first
   cycle is a critical ``onesr.cycle`` alert;
2. **session coherence** (§3.1/§3.3) — a served physical operation
   whose ``expected`` tag differs from ``as[k]`` fires
   ``session.check``; a committed original control write installing a
   non-fresh ``NS[k]`` value fires ``session.ns_monotonic`` (skipped
   when session numbers are deliberately recycled via
   ``session_modulus``);
3. **missing-list conservatism** (§5) — the auditor maintains an
   omniscient oracle of the latest committed version per logical item
   (fed by commit applications); an *unmarked* stale copy at a site
   that just became operational fires ``missinglist.conservatism``, and
   a database read actually served from a stale unmarked copy fires
   ``oracle.stale_read``;
4. **ROWAA write coverage** (§2/§3.2) — a committed user transaction
   whose logical write did not fan out to every copy nominally up in
   its NS-view fires ``rowaa.write_coverage``;
5. **WAL/durable coherence** — per-site durable-LSN monotonicity
   (``wal.durable_monotonic``), checkpoint ≤ durable LSN
   (``wal.checkpoint_bound``), and replay fidelity: at crash time the
   auditor fingerprints the state reconstructible from checkpoint + log
   (its own ~30-line mirror of ``SiteWal.restore``), and at power-on
   the restored copies/session must hash identically
   (``wal.replay_fingerprint``);
6. **multiversion snapshot reads** (``repro.mvcc``) — the auditor
   mirrors every site's committed version history (fed by the same
   commit applications as the oracle) and checks each served snapshot
   read against it: a read above its transaction's pinned cut, or one
   that is not the *newest* version at-or-below the cut in the site's
   own history, fires ``mvcc.snapshot_consistency``; a GC sweep that
   reclaims the floor version of an active pinned cut (or a chain's
   newest version) fires ``mvcc.gc_pinned``. The consistency rule is
   deliberately site-local: with asymmetric local/remote delivery the
   global oracle is *ahead* of a correct snapshot, so comparing against
   it would false-positive (see DESIGN.md "Snapshot reads");
7. **quorum commit soundness** (``commit_mode="async_quorum"``) — a
   committed async transaction whose durably prepared write sites fall
   short of the per-item majority rule fires ``quorum.majority``; a
   drain that gives up on a write site which *never crashed* since the
   decision fires ``quorum.drain_uncovered`` — the give-up path is only
   sound when the lagging site's copies are covered by recovery marks,
   which presupposes a crash/recovery, so abandoning a continuously-up
   site would lose the write permanently.

Liveness watchdogs run as a periodic kernel process (warning severity,
so they never trip the critical-only CI gate): a nominally-up site
whose non-NS unreadable count stops draining
(``liveness.drain_stall``), a copier service with pending work but
frozen counters (``liveness.copier_starved``), a 2PC span open past a
configurable sim-time budget (``liveness.twopc_overrun``), and an
async-drain span open past its own budget
(``liveness.drain_overrun``).

All hooks are read-only: the auditor never mutates protocol state, and
every hook list it populates is empty (one falsy test) when no auditor
is attached.
"""

from __future__ import annotations

import bisect
import dataclasses
import hashlib
import typing

from repro.audit.alerts import Alert, AlertLog
from repro.audit.onestg import OnlineOneStg
from repro.core.nominal import db_item_filter, is_ns_item, ns_site
from repro.txn.transaction import Transaction, TxnKind, TxnStatus
from repro.wal.log import CHECKPOINT_KEY

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.site.site import Site
    from repro.storage.copies import Version
    from repro.system import DatabaseSystem


@dataclasses.dataclass
class AuditConfig:
    """Watchdog cadence and sim-time budgets."""

    watchdog_interval: float = 25.0
    #: An operational site's non-NS unreadable count must change within
    #: this budget while nonzero.
    drain_stall_budget: float = 400.0
    #: A copier service with pending items must advance some counter
    #: within this budget.
    copier_stall_budget: float = 400.0
    #: A 2PC span may stay open at most this long (needs spans enabled).
    twopc_budget: float = 200.0
    #: An async-quorum drain span may stay open at most this long
    #: (retries across site outages make drains slower than 2PC rounds).
    drain_budget: float = 400.0


def _vkey(version: "Version") -> tuple[float, int]:
    """Version order: the (ts, commit) pair (see ``logical_write_order``)."""
    return (version.ts, version.commit)


class ProtocolAuditor:
    """Live invariant monitoring over one :class:`DatabaseSystem`."""

    def __init__(
        self, system: "DatabaseSystem", config: AuditConfig | None = None
    ) -> None:
        self.system = system
        self.config = config if config is not None else AuditConfig()
        self.kernel = system.kernel
        self.obs = system.obs
        self.recorder = system.recorder
        self.alerts = AlertLog()
        self.checks = 0  # invariant evaluations performed
        self.stg = OnlineOneStg(
            self.recorder, item_filter=db_item_filter, on_cycle=self._on_cycle
        )
        #: Omniscient oracle: latest committed version per logical item.
        self._oracle: dict[str, "Version"] = {}
        #: Per-site committed version history, ``(site, item) -> sorted
        #: [(vkey, Version)]``: every version ever applied at that site,
        #: surviving GC — the reference the snapshot-consistency rule
        #: resolves cuts against.
        self._site_versions: dict[tuple[int, str], list[tuple[tuple, "Version"]]] = {}
        #: NS freshness: site -> (last nonzero announcement, announcing txn).
        self._ns_announced: dict[int, tuple[int, str]] = {}
        rowaa_config = getattr(system, "rowaa_config", None)
        self._session_modulus = getattr(rowaa_config, "session_modulus", None)
        self._check_coverage = rowaa_config is not None
        # WAL coherence state.
        self._durable_lsn_seen: dict[int, int] = {}
        self._pre_crash_fp: dict[int, str] = {}
        # Watchdog episodes: site -> (observation, since, already alerted).
        self._drain_state: dict[int, tuple[int, float, bool]] = {}
        self._copier_state: dict[int, tuple[tuple, float, bool]] = {}
        self._open_2pc: dict[int, typing.Any] = {}
        self._open_drains: dict[int, typing.Any] = {}
        self._span_cursor = 0
        #: Async commit decisions: txn_id -> {write site -> crash_count
        #: at decision time}, consumed by the matching drain hook.
        self._quorum_epochs: dict[str, dict[int, int]] = {}
        self._stopped = False
        self._wire()

    # -- wiring ---------------------------------------------------------------

    def _wire(self) -> None:
        system = self.system
        self.obs.audit = self
        for tm in system.tms.values():
            tm.finish_hooks.append(self._on_txn_finish)
            tm.drain_hooks.append(self._on_drain_done)
        for site_id, dm in system.dms.items():
            dm.access_audit_hooks.append(self._access_hook(site_id))
            dm.read_audit_hooks.append(self._read_hook(site_id))
            dm.commit_apply_hooks.append(self._apply_hook(site_id))
            ro_hooks = getattr(dm, "ro_read_audit_hooks", None)
            if ro_hooks is not None:
                ro_hooks.append(self._ro_read_hook(site_id))
        for site_id, store in getattr(system, "mvcc", {}).items():
            store.gc_hooks.append(self._gc_hook(site_id))
        for site in system.cluster.sites.values():
            site.crash_hooks.append(self._crash_hook(site))
            site.power_on_hooks.append(self._power_on_hook(site))
            if site.wal is not None:
                site.wal.flush_hooks.append(self._wal_hook(site))
                site.wal.checkpoint_hooks.append(self._wal_hook(site))
        system.cluster.recovered_hooks.append(self._on_recovered)
        self.obs.registry.add_collector(self._collect)
        self._watchdog_proc = self.kernel.process(
            self._watchdog(), name="protocol-auditor"
        )

    def stop(self) -> None:
        """Stop the watchdog process (hook-driven checks stay live)."""
        self._stopped = True

    # -- alert plumbing -------------------------------------------------------

    def _alert(self, rule: str, severity: str, message: str, **kwargs) -> Alert | None:
        return self.alerts.record(
            rule, severity, self.kernel.now, message, **kwargs
        )

    # -- (1) online 1SR -------------------------------------------------------

    def _pump(self) -> None:
        self.stg.pump()

    def _on_cycle(self, txn_id: str, cycle: list) -> None:
        nodes = sorted({node for edge in cycle for node in edge[:2]})
        self._alert(
            "onesr.cycle",
            "critical",
            "serialization graph cycle: the committed history is not "
            "certifiably one-serializable (§4)",
            txn_ids=tuple(nodes),
            details={"closing_txn": txn_id, "cycle": [list(e) for e in cycle]},
        )

    # -- (2) session coherence ------------------------------------------------

    def _access_hook(self, site_id: int):
        def hook(expected: int | None, privileged: bool, actual: int) -> None:
            self.checks += 1
            if not privileged and expected is not None and expected != actual:
                self._alert(
                    "session.check",
                    "critical",
                    "physical operation served with a stale session tag: "
                    f"expected={expected} but as[{site_id}]={actual} (§3.1)",
                    site=site_id,
                    details={"expected": expected, "actual": actual},
                    dedupe_key=(site_id, expected, actual),
                )

        return hook

    def _ns_check(
        self, site_id: int, txn_id: str, item: str, value: object
    ) -> None:
        if not isinstance(value, int) or value == 0:
            return  # type-2 exclusion writes (0) carry no freshness claim
        if self._session_modulus is not None:
            return  # deliberately recycled session numbers
        k = ns_site(item)
        last = self._ns_announced.get(k)
        if last is not None:
            last_value, last_txn = last
            if value < last_value or (value == last_value and txn_id != last_txn):
                self._alert(
                    "session.ns_monotonic",
                    "critical",
                    f"control transaction installed NS[{k}]={value}, not "
                    f"fresher than {last_value} announced by {last_txn} (§3.3)",
                    site=site_id,
                    txn_ids=(txn_id,),
                    details={"ns_site": k, "value": value, "previous": last_value},
                    dedupe_key=(k, value, txn_id),
                )
                return
        self._ns_announced[k] = (value, txn_id)

    # -- (3) oracle / missing-list conservatism -------------------------------

    def _read_hook(self, site_id: int):
        def hook(item: str, version: "Version") -> None:
            self.checks += 1
            latest = self._oracle.get(item)
            if latest is not None and _vkey(version) < _vkey(latest):
                self._alert(
                    "oracle.stale_read",
                    "critical",
                    f"read of {item} served a stale unmarked copy "
                    f"(version commit {version.commit} < oracle "
                    f"{latest.commit}): unreadable marks do not cover the "
                    "truly-stale copies (§5)",
                    site=site_id,
                    details={
                        "item": item,
                        "served_commit": version.commit,
                        "latest_commit": latest.commit,
                    },
                    dedupe_key=(site_id, item, version.commit),
                )

        return hook

    def _apply_hook(self, site_id: int):
        def hook(
            txn_id: str,
            kind: str,
            txn_seq: int,
            item: str,
            value: object,
            version: "Version",
            overridden: bool,
        ) -> None:
            self.checks += 1
            latest = self._oracle.get(item)
            if latest is None or _vkey(version) > _vkey(latest):
                self._oracle[item] = version
            self._record_site_version(site_id, item, version)
            if kind == "control" and not overridden and is_ns_item(item):
                self._ns_check(site_id, txn_id, item, value)
            self._pump()

        return hook

    # -- (6) multiversion snapshot reads --------------------------------------

    def _record_site_version(
        self, site_id: int, item: str, version: "Version"
    ) -> None:
        """Append to the site's committed version history (sorted, deduped)."""
        history = self._site_versions.setdefault((site_id, item), [])
        entry = (_vkey(version), version)
        index = bisect.bisect_left(history, entry[0], key=lambda e: e[0])
        if index < len(history) and history[index][0] == entry[0]:
            return
        history.insert(index, entry)

    def _site_floor(
        self, site_id: int, item: str, cut: tuple
    ) -> tuple[float, int]:
        """The newest vkey at-or-below ``cut`` ever applied at the site
        (the implicit initial version is the baseline)."""
        floor = (0.0, 0)  # Version.initial()
        history = self._site_versions.get((site_id, item), [])
        index = bisect.bisect_right(history, cut, key=lambda e: e[0])
        if index > 0:
            floor = history[index - 1][0]
        return floor

    def _ro_read_hook(self, site_id: int):
        def hook(item: str, version: "Version", cut: tuple) -> None:
            """Every snapshot read must serve exactly the site's newest
            committed version at-or-below the transaction's pinned cut.

            Site-local on purpose: local commits apply instantly while
            remote COMMITs ride the network, so the *global* latest at
            the cut may not have reached this site yet — that is the
            staleness the cut's ``D`` floor accounts for, not a bug.
            """
            self.checks += 1
            served = _vkey(version)
            if served > cut:
                self._alert(
                    "mvcc.snapshot_consistency",
                    "critical",
                    f"snapshot read of {item} served commit "
                    f"{version.commit} above the transaction's pinned cut "
                    f"(ts {cut[0]:g}): the snapshot is not a committed "
                    "prefix",
                    site=site_id,
                    details={
                        "item": item,
                        "served": list(served),
                        "cut": list(cut),
                    },
                    dedupe_key=(site_id, item, served, "above-cut"),
                )
                return
            expected = self._site_floor(site_id, item, cut)
            if served != expected:
                self._alert(
                    "mvcc.snapshot_consistency",
                    "critical",
                    f"snapshot read of {item} served commit "
                    f"{version.commit}, not the site's newest committed "
                    f"version at-or-below the cut (expected commit "
                    f"{expected[1]}): reads at one cut are not a single "
                    "committed prefix",
                    site=site_id,
                    details={
                        "item": item,
                        "served": list(served),
                        "expected": list(expected),
                        "cut": list(cut),
                    },
                    dedupe_key=(site_id, item, served, expected),
                )

        return hook

    def _gc_hook(self, site_id: int):
        def hook(item, removed, pins, chain_before) -> None:
            """GC must never reclaim a pinned cut's floor version, nor a
            chain's newest version (the floor of every future cut)."""
            self.checks += 1
            removed_keys = {_vkey(v) for v in removed}
            keys_before = [_vkey(v) for v in chain_before]
            if keys_before and keys_before[-1] in removed_keys:
                self._alert(
                    "mvcc.gc_pinned",
                    "critical",
                    f"GC reclaimed the newest version of {item} "
                    f"(commit {chain_before[-1].commit}): even an empty "
                    "pin set must keep the chain head",
                    site=site_id,
                    details={"item": item, "removed": len(removed)},
                    dedupe_key=(site_id, item, keys_before[-1]),
                )
            for pin in pins:
                index = bisect.bisect_right(keys_before, tuple(pin))
                if index == 0:
                    continue
                floor = keys_before[index - 1]
                if floor in removed_keys:
                    self._alert(
                        "mvcc.gc_pinned",
                        "critical",
                        f"GC reclaimed the floor version of {item} for an "
                        f"active pinned snapshot (cut ts {pin[0]:g}): the "
                        "pinned reader would now miss its version",
                        site=site_id,
                        details={
                            "item": item,
                            "pin": list(pin),
                            "floor": list(floor),
                        },
                        dedupe_key=(site_id, item, tuple(pin), floor),
                    )

        return hook

    def _on_recovered(self, site_id: int) -> None:
        """Operational instant: unreadable marks must cover stale copies."""
        site = self.system.cluster.sites[site_id]
        for item in site.copies.items():
            if is_ns_item(item):
                continue
            self.checks += 1
            copy = site.copies.get(item)
            latest = self._oracle.get(item)
            if latest is None or copy.unreadable:
                continue
            if _vkey(copy.version) < _vkey(latest):
                self._alert(
                    "missinglist.conservatism",
                    "critical",
                    f"site became operational with an unmarked stale copy of "
                    f"{item} (commit {copy.version.commit} < oracle "
                    f"{latest.commit}): identification under-populated the "
                    "missing set (§5)",
                    site=site_id,
                    details={
                        "item": item,
                        "copy_commit": copy.version.commit,
                        "latest_commit": latest.commit,
                    },
                    dedupe_key=(site_id, item, copy.version.commit),
                )

    # -- (4) ROWAA write coverage ---------------------------------------------

    def _on_txn_finish(self, txn: Transaction) -> None:
        if (
            self._check_coverage
            and txn.kind is TxnKind.USER
            and txn.status is TxnStatus.COMMITTED
            and txn.logical_writes
        ):
            catalog = self.system.catalog
            for item, targets in txn.logical_writes:
                self.checks += 1
                required = {
                    s
                    for s in catalog.sites_of(item)
                    if txn.view.get(s, 0) != 0
                }
                missing = required.difference(targets)
                if missing:
                    self._alert(
                        "rowaa.write_coverage",
                        "critical",
                        f"committed write of {item} skipped nominally-up "
                        f"copies at sites {sorted(missing)} (§2 "
                        "write-all-available)",
                        site=txn.home_site,
                        txn_ids=(txn.txn_id,),
                        details={
                            "item": item,
                            "missing": sorted(missing),
                            "targets": sorted(targets),
                        },
                    )
        if (
            txn.kind is TxnKind.USER
            and txn.status is TxnStatus.COMMITTED
            and txn.commit_mode == "async_quorum"
        ):
            self._check_quorum(txn)
        self._pump()

    # -- (6) quorum commit soundness ------------------------------------------

    def _check_quorum(self, txn: Transaction) -> None:
        """Recompute the majority rule for a committed async transaction.

        The auditor derives ``needed`` independently from the catalog
        rather than trusting ``txn.quorum_needed``, so a bug in
        ``quorum_needed`` itself is caught too. It also snapshots each
        write site's crash epoch at decision time for the matching
        drain-completion check.
        """
        self.checks += 1
        catalog = self.system.catalog
        needed = 1
        for item in txn.written_items:
            residents = catalog.sites_of(item)
            if residents:
                needed = max(needed, len(residents) // 2 + 1)
        if txn.wrote_sites:
            needed = min(needed, len(txn.wrote_sites))
        prepared = txn.prepared_sites & txn.wrote_sites
        if len(prepared) < needed:
            self._alert(
                "quorum.majority",
                "critical",
                f"async commit decided with {len(prepared)} durably "
                f"prepared write sites, below the per-item majority "
                f"threshold of {needed}",
                site=txn.home_site,
                txn_ids=(txn.txn_id,),
                details={
                    "prepared": sorted(prepared),
                    "write_sites": sorted(txn.wrote_sites),
                    "needed": needed,
                },
            )
        sites = self.system.cluster.sites
        self._quorum_epochs[txn.txn_id] = {
            site_id: sites[site_id].crash_count
            for site_id in txn.wrote_sites
            if site_id in sites
        }

    def _on_drain_done(
        self, txn: Transaction, acked: tuple[int, ...], lost: tuple[int, ...]
    ) -> None:
        """A drain gave up on ``lost`` — sound only under crash cover.

        The drain's give-up path delegates a lagging site to recovery
        (stable decision record + marks + ``wal.ship``), which only
        runs if the site actually went down. A lost site whose crash
        epoch never moved since the decision — it stayed up the whole
        time — has no recovery coming: the committed write would be
        silently missing from a live copy.
        """
        epochs = self._quorum_epochs.pop(txn.txn_id, {})
        for site_id in lost:
            self.checks += 1
            site = self.system.cluster.sites.get(site_id)
            if site is None:
                continue
            if not site.is_down and site.crash_count == epochs.get(site_id, -1):
                self._alert(
                    "quorum.drain_uncovered",
                    "critical",
                    f"async drain of {txn.txn_id} abandoned site {site_id} "
                    "which never crashed since the decision: the write is "
                    "missing there with no recovery pass coming",
                    site=site_id,
                    txn_ids=(txn.txn_id,),
                    details={
                        "lost": sorted(lost),
                        "acked": sorted(acked),
                        "decision_epoch": epochs.get(site_id),
                    },
                )

    # -- (5) WAL / durable coherence ------------------------------------------

    def _wal_hook(self, site: "Site"):
        def hook() -> None:
            self.checks += 1
            wal = site.wal
            lsn = wal.log.durable_lsn
            seen = self._durable_lsn_seen.get(site.site_id, 0)
            if lsn < seen:
                self._alert(
                    "wal.durable_monotonic",
                    "critical",
                    f"durable LSN regressed from {seen} to {lsn}",
                    site=site.site_id,
                    details={"seen": seen, "lsn": lsn},
                    dedupe_key=(site.site_id, lsn),
                )
            else:
                self._durable_lsn_seen[site.site_id] = lsn
            if wal.last_checkpoint_lsn > lsn:
                self._alert(
                    "wal.checkpoint_bound",
                    "critical",
                    f"checkpoint LSN {wal.last_checkpoint_lsn} exceeds "
                    f"durable LSN {lsn}",
                    site=site.site_id,
                    details={
                        "checkpoint_lsn": wal.last_checkpoint_lsn,
                        "durable_lsn": lsn,
                    },
                    dedupe_key=(site.site_id, wal.last_checkpoint_lsn),
                )

        return hook

    def _crash_hook(self, site: "Site"):
        def hook() -> None:
            # Registered after the WAL's own crash hook, so the volatile
            # tail is already discarded: this hashes exactly the durable
            # image restore must rebuild.
            fingerprint = self._durable_fingerprint(site)
            if fingerprint is not None:
                self._pre_crash_fp[site.site_id] = fingerprint

        return hook

    def _power_on_hook(self, site: "Site"):
        def hook() -> None:
            # Site.power_on runs wal.restore() before these hooks fire.
            expected = self._pre_crash_fp.pop(site.site_id, None)
            if expected is None:
                return
            self.checks += 1
            actual = self._state_fingerprint(site)
            if actual != expected:
                self._alert(
                    "wal.replay_fingerprint",
                    "critical",
                    "restored state diverges from the pre-crash durable "
                    "image (checkpoint + log replay is not faithful)",
                    site=site.site_id,
                    details={"expected": expected, "actual": actual},
                )

        return hook

    def _durable_fingerprint(self, site: "Site") -> str | None:
        """Hash of the state reconstructible from checkpoint + log.

        An independent mirror of :meth:`SiteWal.restore` (same record
        semantics, no shared code) so replay bugs can't hide in a shared
        implementation.
        """
        checkpoint = typing.cast("dict | None", site.stable.get(CHECKPOINT_KEY))
        if checkpoint is None or site.wal is None:
            return None
        items = {
            name: (value, version, unreadable)
            for name, (value, version, unreadable) in checkpoint["items"].items()
        }
        session_last = checkpoint["session_last"]
        session_started = checkpoint["session_started_at"]
        for record in site.wal.log.records_after(checkpoint["lsn"]):
            if record.kind == "write":
                items[record.item] = (record.value, record.version, False)
            elif record.kind == "mark":
                if record.item in items:
                    value, version, _ = items[record.item]
                    items[record.item] = (value, version, True)
            elif record.kind == "clear":
                if record.item in items:
                    value, version, _ = items[record.item]
                    items[record.item] = (value, version, False)
            elif record.kind == "session":
                session_last = record.session
                if record.session_started_at is not None:
                    session_started = record.session_started_at
        return self._fingerprint(items, session_last, session_started)

    def _state_fingerprint(self, site: "Site") -> str:
        """Hash of the live copies + stable session state (post-restore)."""
        items = {}
        for name in site.copies.items():
            copy = site.copies.get(name)
            items[name] = (copy.value, copy.version, copy.unreadable)
        return self._fingerprint(
            items,
            site.stable.get("session.last", 0),
            site.stable.get("session.started_at"),
        )

    @staticmethod
    def _fingerprint(
        items: dict, session_last: object, session_started: object
    ) -> str:
        digest = hashlib.sha256()
        for name in sorted(items):
            value, version, unreadable = items[name]
            normalized = tuple(version) if version is not None else None
            digest.update(
                repr((name, value, normalized, bool(unreadable))).encode()
            )
        digest.update(repr(("session", session_last, session_started)).encode())
        return digest.hexdigest()

    # -- liveness watchdogs ---------------------------------------------------

    def _watchdog(self) -> typing.Generator:
        while not self._stopped:
            yield self.kernel.timeout(self.config.watchdog_interval)
            if self._stopped:
                return
            now = self.kernel.now
            self._watch_drain(now)
            self._watch_copiers(now)
            self._watch_spans(now)

    def _unreadable_count(self, site: "Site") -> int:
        return sum(
            1 for item in site.copies.unreadable_items() if not is_ns_item(item)
        )

    def _watch_drain(self, now: float) -> None:
        for site_id, site in self.system.cluster.sites.items():
            count = self._unreadable_count(site)
            state = self._drain_state.get(site_id)
            if not site.is_operational or count == 0 or (
                state is not None and state[0] != count
            ):
                self._drain_state[site_id] = (count, now, False)
                continue
            if state is None:
                self._drain_state[site_id] = (count, now, False)
                continue
            _, since, alerted = state
            if not alerted and now - since >= self.config.drain_stall_budget:
                self._alert(
                    "liveness.drain_stall",
                    "warning",
                    f"{count} unreadable copies have not drained for "
                    f"{now - since:.0f} sim-time units at an operational site",
                    site=site_id,
                    details={"count": count, "stalled_for": now - since},
                )
                self._drain_state[site_id] = (count, since, True)

    def _watch_copiers(self, now: float) -> None:
        for site_id, copier in getattr(self.system, "copiers", {}).items():
            site = self.system.cluster.sites[site_id]
            pending = self._unreadable_count(site)
            signature = dataclasses.astuple(copier.stats)
            state = self._copier_state.get(site_id)
            if not site.is_operational or pending == 0 or (
                state is not None and state[0] != signature
            ):
                self._copier_state[site_id] = (signature, now, False)
                continue
            if state is None:
                self._copier_state[site_id] = (signature, now, False)
                continue
            _, since, alerted = state
            if not alerted and now - since >= self.config.copier_stall_budget:
                self._alert(
                    "liveness.copier_starved",
                    "warning",
                    f"copier made no progress for {now - since:.0f} sim-time "
                    f"units with {pending} copies pending",
                    site=site_id,
                    details={"pending": pending, "starved_for": now - since},
                )
                self._copier_state[site_id] = (signature, since, True)

    def _watch_spans(self, now: float) -> None:
        """Budget 2PC and async-drain spans (one shared cursor pass)."""
        if not self.obs.spans_on:
            return
        spans = self.obs.spans.spans
        while self._span_cursor < len(spans):
            span = spans[self._span_cursor]
            self._span_cursor += 1
            if span.end is not None:
                continue
            if span.category == "2pc":
                self._open_2pc[span.span_id] = span
            elif span.category == "drain":
                self._open_drains[span.span_id] = span
        self._budget_spans(
            now, self._open_2pc, self.config.twopc_budget,
            "liveness.twopc_overrun", "2PC",
        )
        self._budget_spans(
            now, self._open_drains, self.config.drain_budget,
            "liveness.drain_overrun", "async drain",
        )

    def _budget_spans(
        self,
        now: float,
        open_spans: dict[int, typing.Any],
        budget: float,
        rule: str,
        label: str,
    ) -> None:
        for span_id, span in list(open_spans.items()):
            if span.end is not None:
                del open_spans[span_id]
            elif now - span.start > budget:
                self._alert(
                    rule,
                    "warning",
                    f"{label} open for {now - span.start:.0f} sim-time units "
                    f"(budget {budget:.0f})",
                    site=span.site_id,
                    txn_ids=(span.txn_id,) if span.txn_id else (),
                    span_id=span_id,
                    details={"open_for": now - span.start},
                )
                del open_spans[span_id]

    # -- metrics / reporting --------------------------------------------------

    def _collect(self) -> dict:
        return {
            ("audit.alerts", None): float(len(self.alerts.alerts)),
            ("audit.alerts_critical", None): float(self.alerts.count("critical")),
            ("audit.alerts_warning", None): float(self.alerts.count("warning")),
            ("audit.checks", None): float(self.checks),
            ("audit.graph_txns", None): float(self.stg.graph.number_of_nodes()),
            ("audit.graph_edges", None): float(self.stg.graph.number_of_edges()),
        }

    def summary(self) -> dict:
        """Auditor section of the recovery-timeline report."""
        self._pump()
        return {
            "alerts": len(self.alerts.alerts),
            "critical": self.alerts.count("critical"),
            "warning": self.alerts.count("warning"),
            "by_rule": {
                rule: len(alerts) for rule, alerts in self.alerts.by_rule().items()
            },
            "checks": self.checks,
            "graph": self.stg.stats,
        }


def attach_auditor(
    system: "DatabaseSystem", config: AuditConfig | None = None
) -> ProtocolAuditor:
    """Attach a :class:`ProtocolAuditor` to a built (idle) system.

    Idempotent: a system audits at most once. Attach after construction
    and before driving load — the graph and oracle assume they observe
    every commit.
    """
    existing = system.obs.audit
    if existing is not None:
        return existing
    return ProtocolAuditor(system, config)

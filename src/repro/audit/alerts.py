"""Structured audit alerts and their log.

Every invariant violation or watchdog firing becomes one immutable
:class:`Alert`: a rule id, a severity, the sim-time, the human-readable
rule text, and whatever protocol context identifies the offender (site,
transaction ids, span id, free-form details). The :class:`AlertLog`
collects them in firing order, answers severity/rule queries for the CI
gate, renders the summary table, and exports the JSONL alert stream
(same one-object-per-line shape as ``repro.obs.export.export_jsonl``).
"""

from __future__ import annotations

import dataclasses
import json
import typing

SEVERITIES = ("info", "warning", "critical")


@dataclasses.dataclass(frozen=True)
class Alert:
    """One protocol-invariant violation or liveness-watchdog firing."""

    rule: str  #: stable rule id, e.g. ``"onesr.cycle"``
    severity: str  #: ``"info"`` | ``"warning"`` | ``"critical"``
    time: float  #: sim-time at which the violation was detected
    message: str  #: human-readable rule text
    site: int | None = None
    txn_ids: tuple[str, ...] = ()
    span_id: int | None = None
    details: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def to_dict(self) -> dict:
        return {
            "type": "alert",
            "rule": self.rule,
            "severity": self.severity,
            "time": self.time,
            "message": self.message,
            "site": self.site,
            "txn_ids": list(self.txn_ids),
            "span_id": self.span_id,
            "details": self.details,
        }


class AlertLog:
    """Append-only alert stream with severity/rule accounting."""

    def __init__(self) -> None:
        self.alerts: list[Alert] = []
        self._dedupe: set[tuple] = set()

    def record(
        self,
        rule: str,
        severity: str,
        time: float,
        message: str,
        *,
        site: int | None = None,
        txn_ids: typing.Sequence[str] = (),
        span_id: int | None = None,
        details: dict | None = None,
        dedupe_key: tuple | None = None,
    ) -> Alert | None:
        """Append one alert; returns ``None`` when ``dedupe_key`` repeats."""
        if dedupe_key is not None:
            key = (rule, *dedupe_key)
            if key in self._dedupe:
                return None
            self._dedupe.add(key)
        alert = Alert(
            rule=rule,
            severity=severity,
            time=time,
            message=message,
            site=site,
            txn_ids=tuple(txn_ids),
            span_id=span_id,
            details=dict(details or {}),
        )
        self.alerts.append(alert)
        return alert

    # -- queries --------------------------------------------------------------

    def count(self, severity: str | None = None, rule: str | None = None) -> int:
        return sum(
            1
            for alert in self.alerts
            if (severity is None or alert.severity == severity)
            and (rule is None or alert.rule == rule)
        )

    def critical(self) -> list[Alert]:
        return [alert for alert in self.alerts if alert.severity == "critical"]

    @property
    def has_critical(self) -> bool:
        return any(alert.severity == "critical" for alert in self.alerts)

    def by_rule(self) -> dict[str, list[Alert]]:
        grouped: dict[str, list[Alert]] = {}
        for alert in self.alerts:
            grouped.setdefault(alert.rule, []).append(alert)
        return grouped

    # -- export ---------------------------------------------------------------

    def export_jsonl(self, path: str, label: str = "") -> int:
        """Write the alert stream; returns the number of lines written."""
        lines = [
            json.dumps(
                {
                    "type": "meta",
                    "label": label,
                    "alerts": len(self.alerts),
                    "critical": self.count("critical"),
                    "warning": self.count("warning"),
                }
            )
        ]
        lines.extend(json.dumps(alert.to_dict()) for alert in self.alerts)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        return len(lines)

    def render_summary(self) -> str:
        """The auditor summary table printed by ``repro audit``."""
        out = ["audit summary"]
        total = len(self.alerts)
        out.append(
            f"  alerts: {total} total, {self.count('critical')} critical, "
            f"{self.count('warning')} warning"
        )
        if not total:
            out.append("  (no alerts: all monitored invariants held)")
            return "\n".join(out)
        out.append(f"  {'rule':<28} {'sev':<8} {'n':>4}  first occurrence")
        for rule, alerts in sorted(self.by_rule().items()):
            first = alerts[0]
            where = f"site {first.site}" if first.site is not None else "-"
            out.append(
                f"  {rule:<28} {first.severity:<8} {len(alerts):>4}  "
                f"t={first.time:.1f} {where}: {first.message}"
            )
        return "\n".join(out)

"""Online protocol auditing: live invariant monitors, alerts, watchdogs.

See :mod:`repro.audit.auditor` for the invariant catalog and
``docs/OBSERVABILITY.md`` ("Auditor") for the operator-facing view.
"""

from repro.audit.alerts import SEVERITIES, Alert, AlertLog
from repro.audit.auditor import AuditConfig, ProtocolAuditor, attach_auditor
from repro.audit.onestg import OnlineOneStg

__all__ = [
    "Alert",
    "AlertLog",
    "AuditConfig",
    "OnlineOneStg",
    "ProtocolAuditor",
    "SEVERITIES",
    "attach_auditor",
]

"""Graph constructions from §4 of the paper.

* :func:`build_conflict_graph` — the CG: committed transactions, with an
  edge for each pair of conflicting physical operations on the same copy,
  oriented by the order in which the operations took place. Histories
  with acyclic CGs (the class DCP/DSR) are serializable (Theorem 1), and
  Theorem 3 states that under the paper's algorithm the CG *with respect
  to DB ∪ NS* is a 1-STG *with respect to DB*.
* :func:`build_one_stg` — the natural candidate 1-STG: READ-FROM edges
  (original-writer provenance, copier-aware), write-order edges oriented
  by version (commit) order, and the induced read-before edges. By the
  §4 Corollary, acyclicity of this graph certifies one-serializability.

Both return :class:`networkx.DiGraph` whose nodes are transaction ids.
"""

from __future__ import annotations

import typing

import networkx

from repro.histories.recorder import INITIAL_TXN, HistoryRecorder, Op, OpType

ItemFilter = typing.Callable[[str], bool]


def _committed_ops(
    recorder: HistoryRecorder, item_filter: ItemFilter | None
) -> list[Op]:
    ops = recorder.committed_ops()
    if item_filter is not None:
        ops = [op for op in ops if item_filter(op.item)]
    return ops


def build_conflict_graph(
    recorder: HistoryRecorder, item_filter: ItemFilter | None = None
) -> networkx.DiGraph:
    """The conflict graph over committed transactions.

    Record order is conflict order: reads are logged at execution and
    writes at commit application, and under strict 2PL conflicting
    operations on a copy are totally ordered by their lock grants, which
    the log order reflects.
    """
    ops = _committed_ops(recorder, item_filter)
    graph = networkx.DiGraph()
    for op in ops:
        graph.add_node(op.txn_id)
    per_copy: dict[tuple[str, int], list[Op]] = {}
    for op in ops:
        per_copy.setdefault((op.item, op.site), []).append(op)
    for copy_ops in per_copy.values():
        for i, earlier in enumerate(copy_ops):
            for later in copy_ops[i + 1 :]:
                if later.txn_id == earlier.txn_id:
                    continue
                if earlier.op is OpType.WRITE or later.op is OpType.WRITE:
                    graph.add_edge(earlier.txn_id, later.txn_id)
    return graph


def read_from_pairs(
    recorder: HistoryRecorder, item_filter: ItemFilter | None = None
) -> set[tuple[str, str, str]]:
    """The READ-FROM relation: (writer, item, reader) triples.

    Copier-aware (§4): the writer is the transaction that *originally*
    produced the version (carried through copiers unchanged). Self-reads
    (a transaction observing its own buffered write) are excluded.
    """
    pairs: set[tuple[str, str, str]] = set()
    for op in _committed_ops(recorder, item_filter):
        if op.op is not OpType.READ:
            continue
        writer = recorder.writer_of_seq(op.version_seq)
        if writer != op.txn_id:
            pairs.add((writer, op.item, op.txn_id))
    return pairs


def logical_write_order(
    recorder: HistoryRecorder, item_filter: ItemFilter | None = None
) -> dict[str, list[str]]:
    """Per logical item, the non-copier writers in version order.

    The version order is the commit order: versions are assigned at the
    2PC decision as ``(commit_ts, seq)`` and are monotone per item under
    that *pair* ordering — two concurrent transactions can commit in the
    opposite order to their sequence numbers, so ordering by ``seq``
    alone would be wrong. This is the natural write-order orientation for
    the candidate 1-STG. The implicit initial transaction opens every
    list.
    """
    writers: dict[str, dict[tuple[float, int], str]] = {}
    for op in _committed_ops(recorder, item_filter):
        if op.op is OpType.WRITE and op.version_seq == op.txn_seq and op.kind != "copier":
            writers.setdefault(op.item, {})[op.version_key] = op.txn_id
    order: dict[str, list[str]] = {}
    for item, by_version in writers.items():
        order[item] = [INITIAL_TXN] + [by_version[key] for key in sorted(by_version)]
    return order


def build_one_stg(
    recorder: HistoryRecorder, item_filter: ItemFilter | None = None
) -> networkx.DiGraph:
    """Candidate 1-STG with write order oriented by version order.

    Edges (§4, revised definitions):

    (i)   READ-FROM: writer → reader (original-writer provenance);
    (ii)  write-order: successive non-copier writers of each logical item,
          in version order;
    (iii) read-before: if Tb READS-X-FROM Ta and Tc is a later writer of
          X, then Tb → Tc.

    Acyclicity certifies 1-SR (Corollary); cyclicity is inconclusive in
    general — use the exhaustive checker for a verdict.
    """
    graph = networkx.DiGraph()
    order = logical_write_order(recorder, item_filter)
    reads = read_from_pairs(recorder, item_filter)
    position: dict[tuple[str, str], int] = {}
    for item, writers in order.items():
        for index, writer in enumerate(writers):
            position[(item, writer)] = index
            graph.add_node(writer)
        for earlier, later in zip(writers, writers[1:]):
            graph.add_edge(earlier, later)
    for writer, item, reader in reads:
        if recorder.kinds.get(reader) == "copier":
            continue  # copiers are not transactions of the 1C history
        graph.add_edge(writer, reader)
        writer_pos = position.get((item, writer))
        if writer_pos is None:
            # The version's writer wrote through copier provenance chains
            # only; treat it as positioned at its own write if recorded.
            continue
        for later in order[item][writer_pos + 1 :]:
            if later != reader:
                graph.add_edge(reader, later)
    return graph

"""SR / 1-SR verdicts on recorded histories (test oracles for §4).

Checking one-serializability exactly is NP-complete in general, so the
checker is layered:

1. :func:`check_sr` — conflict-graph acyclicity: exact for the class of
   schedulers we run (strict 2PL produces DSR histories).
2. :func:`check_one_sr` — first tries the candidate 1-STG (acyclic ⇒
   1-SR by the §4 Corollary); if cyclic and the history is small enough,
   falls back to an exhaustive one-copy serial-order search that is exact
   (simulating the one-copy database and backtracking); otherwise the
   verdict is ``ok=False, method="1stg-cycle-unverified"``.

The exhaustive search also enforces final-state equivalence (the
augmented history's final transaction, §4): the last writer of each item
in the serial order must be the writer of the highest committed version.
"""

from __future__ import annotations

import dataclasses

import networkx

from repro.histories.graphs import (
    ItemFilter,
    build_conflict_graph,
    build_one_stg,
    logical_write_order,
    read_from_pairs,
)
from repro.histories.recorder import INITIAL_TXN, HistoryRecorder


@dataclasses.dataclass(frozen=True)
class CheckResult:
    """Verdict of a history check.

    ``method`` records how the verdict was reached (for diagnostics):
    ``"cg-acyclic"``, ``"cg-cycle"``, ``"1stg-acyclic"``,
    ``"exhaustive-found-order"``, ``"exhaustive-no-order"``, or
    ``"1stg-cycle-unverified"``.
    """

    ok: bool
    method: str
    detail: str = ""


def check_sr(
    recorder: HistoryRecorder, item_filter: ItemFilter | None = None
) -> CheckResult:
    """Serializability of the physical history via CG acyclicity."""
    graph = build_conflict_graph(recorder, item_filter)
    try:
        cycle = networkx.find_cycle(graph)
    except networkx.NetworkXNoCycle:
        return CheckResult(ok=True, method="cg-acyclic")
    return CheckResult(ok=False, method="cg-cycle", detail=str(cycle))


def check_theorem3(recorder: HistoryRecorder) -> CheckResult:
    """The protocol invariant behind Theorem 3.

    The conflict graph *with respect to DB ∪ NS* (i.e. over every item,
    nominal session numbers included) must be acyclic; the theorem then
    makes it a 1-STG with respect to DB, so the execution is
    one-serializable.
    """
    return check_sr(recorder, item_filter=None)


def check_one_sr(
    recorder: HistoryRecorder,
    item_filter: ItemFilter | None = None,
    exhaustive_limit: int = 12,
) -> CheckResult:
    """One-serializability of the logical history."""
    candidate = build_one_stg(recorder, item_filter)
    try:
        cycle = networkx.find_cycle(candidate)
    except networkx.NetworkXNoCycle:
        return CheckResult(ok=True, method="1stg-acyclic")

    txns = _one_copy_txns(recorder, item_filter)
    if len(txns) <= exhaustive_limit:
        order = _search_serial_order(recorder, item_filter)
        if order is not None:
            return CheckResult(
                ok=True, method="exhaustive-found-order", detail=" < ".join(order)
            )
        return CheckResult(ok=False, method="exhaustive-no-order", detail=str(cycle))
    return CheckResult(ok=False, method="1stg-cycle-unverified", detail=str(cycle))


# ---------------------------------------------------------------------------
# Exhaustive one-copy serial-order search
# ---------------------------------------------------------------------------


def _one_copy_txns(
    recorder: HistoryRecorder, item_filter: ItemFilter | None
) -> set[str]:
    """Committed non-copier transactions with at least one in-scope op."""
    txns: set[str] = set()
    for op in recorder.committed_ops():
        if item_filter is not None and not item_filter(op.item):
            continue
        if op.kind == "copier":
            continue
        txns.add(op.txn_id)
    txns.discard(INITIAL_TXN)
    return txns


def _search_serial_order(
    recorder: HistoryRecorder, item_filter: ItemFilter | None
) -> list[str] | None:
    """Find a one-copy serial order equivalent to the history, if any.

    Simulates the one-copy database: place transactions one at a time; a
    transaction may be placed only if every item it read currently has
    the writer it actually read from as the last writer. Final-state
    equivalence is enforced at the end. Memoizes failed frontier states.
    """
    txns = _one_copy_txns(recorder, item_filter)
    reads: dict[str, dict[str, str]] = {txn: {} for txn in txns}
    for writer, item, reader in read_from_pairs(recorder, item_filter):
        if reader in reads:
            reads[reader][item] = writer
    write_order = logical_write_order(recorder, item_filter)
    writes: dict[str, set[str]] = {txn: set() for txn in txns}
    final_writer: dict[str, str] = {}
    for item, writers in write_order.items():
        final_writer[item] = writers[-1]
        for writer in writers:
            if writer in writes:
                writes[writer].add(item)

    last_writer_now: dict[str, str] = {item: INITIAL_TXN for item in write_order}
    placed: list[str] = []
    failed: set[tuple] = set()

    def state_key(remaining: frozenset) -> tuple:
        return (remaining, tuple(sorted(last_writer_now.items())))

    def backtrack(remaining: frozenset) -> bool:
        if not remaining:
            return all(
                last_writer_now[item] == final_writer[item] for item in final_writer
            )
        key = state_key(remaining)
        if key in failed:
            return False
        for txn in sorted(remaining):
            if any(
                last_writer_now.get(item, INITIAL_TXN) != writer
                for item, writer in reads[txn].items()
            ):
                continue
            overwritten = {
                item: last_writer_now[item] for item in writes[txn]
            }
            for item in writes[txn]:
                last_writer_now[item] = txn
            placed.append(txn)
            if backtrack(remaining - {txn}):
                return True
            placed.pop()
            for item, previous in overwritten.items():
                last_writer_now[item] = previous
        failed.add(key)
        return False

    if backtrack(frozenset(txns)):
        return list(placed)
    return None

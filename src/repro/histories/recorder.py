"""Recording execution histories from the running system.

The recorder is a passive, global observer (the simulation's omniscient
log). DMs report each physical read at execution time and each physical
write at commit-application time; TMs report transaction outcomes. The
checker later projects the log onto committed transactions.

Read provenance: every committed write installs a
:class:`~repro.storage.copies.Version` whose ``seq`` is the *original*
writer's global sequence number — copiers carry their source's version
across unchanged. A read therefore records exactly the paper's READ-FROM
relation (§4: "a transaction reads NS[k] from the control transaction
that assigned the session number originally rather than from the one
that renovates the local copy"), while copier writes are still visible
as physical write records for the 1-STG construction.
"""

from __future__ import annotations

import dataclasses
import enum

INITIAL_TXN = "T0@0"
"""Name of the implicit initial transaction that wrote every copy (§4)."""


class OpType(enum.Enum):
    READ = "r"
    WRITE = "w"


@dataclasses.dataclass(frozen=True, slots=True)
class Op:
    """One physical operation in the history.

    ``version_seq`` is the original writer's sequence number: for a READ,
    the provenance of the value observed; for a WRITE, the writer itself
    (which differs from ``txn_seq`` only for copier writes).
    Versions order by ``(version_ts, version_commit, version_seq)`` —
    commit timestamp with the global commit counter as tie-break. Writer
    sequence numbers alone do NOT follow commit order (two concurrent
    transactions can commit in the opposite order to their start order),
    and timestamps alone can collide within one simulated instant.
    """

    index: int
    time: float
    txn_id: str
    txn_seq: int
    kind: str  # "user" | "control" | "copier"
    op: OpType
    item: str
    site: int
    version_seq: int
    version_ts: float = 0.0
    version_commit: int = 0

    @property
    def version_key(self) -> tuple[float, int, int]:
        return (self.version_ts, self.version_commit, self.version_seq)


class HistoryRecorder:
    """Append-only log of physical operations plus transaction outcomes."""

    def __init__(self) -> None:
        self.ops: list[Op] = []
        self.committed: set[str] = set()
        self.aborted: set[str] = set()
        self.kinds: dict[str, str] = {INITIAL_TXN: "user"}
        self._seq_to_txn: dict[int, str] = {0: INITIAL_TXN}

    # -- recording (called by DMs/TMs) -------------------------------------

    def record_read(
        self,
        time: float,
        txn_id: str,
        txn_seq: int,
        kind: str,
        item: str,
        site: int,
        version_seq: int,
        version_ts: float = 0.0,
        version_commit: int = 0,
    ) -> None:
        self._append(
            time, txn_id, txn_seq, kind, OpType.READ, item, site,
            version_seq, version_ts, version_commit,
        )

    def record_write(
        self,
        time: float,
        txn_id: str,
        txn_seq: int,
        kind: str,
        item: str,
        site: int,
        version_seq: int,
        version_ts: float = 0.0,
        version_commit: int = 0,
    ) -> None:
        self._append(
            time, txn_id, txn_seq, kind, OpType.WRITE, item, site,
            version_seq, version_ts, version_commit,
        )
        if version_seq == txn_seq:
            # An original write. Copier-style writes carry their source's
            # version, whose writer registered itself when it committed.
            self._seq_to_txn[txn_seq] = txn_id

    def mark_committed(self, txn_id: str) -> None:
        self.committed.add(txn_id)

    def mark_aborted(self, txn_id: str) -> None:
        self.aborted.add(txn_id)

    def _append(
        self,
        time: float,
        txn_id: str,
        txn_seq: int,
        kind: str,
        op: OpType,
        item: str,
        site: int,
        version_seq: int,
        version_ts: float,
        version_commit: int,
    ) -> None:
        self.kinds[txn_id] = kind
        self.ops.append(
            Op(
                index=len(self.ops),
                time=time,
                txn_id=txn_id,
                txn_seq=txn_seq,
                kind=kind,
                op=op,
                item=item,
                site=site,
                version_seq=version_seq,
                version_ts=version_ts,
                version_commit=version_commit,
            )
        )

    # -- queries (used by the checker) ---------------------------------------

    def writer_of_seq(self, version_seq: int) -> str:
        """Transaction id that originally wrote version ``version_seq``."""
        txn = self._seq_to_txn.get(version_seq)
        if txn is None:
            raise KeyError(f"unknown writer for version seq {version_seq}")
        return txn

    def committed_ops(self) -> list[Op]:
        """Ops of committed transactions, in global record order.

        The implicit initial transaction is always considered committed.
        """
        return [op for op in self.ops if op.txn_id in self.committed]

    def committed_txns(self) -> set[str]:
        return set(self.committed)

"""Execution histories and the §4 serializability theory.

* :class:`~repro.histories.recorder.HistoryRecorder` — collects the
  committed physical reads/writes of a run (reads carry the version they
  observed, i.e. the writer they read from).
* :mod:`repro.histories.graphs` — conflict graphs, serializability
  testing graphs (STG) and one-serializability testing graphs (1-STG),
  with the paper's copier-aware READ-FROM semantics.
* :mod:`repro.histories.checker` — acyclicity-based SR and 1-SR checks
  used as test oracles (Theorems 1, 2 and the §4 Corollary).
"""

from repro.histories.checker import CheckResult, check_one_sr, check_sr, check_theorem3
from repro.histories.graphs import build_conflict_graph, build_one_stg
from repro.histories.recorder import HistoryRecorder, Op, OpType

__all__ = [
    "CheckResult",
    "HistoryRecorder",
    "Op",
    "OpType",
    "build_conflict_graph",
    "build_one_stg",
    "check_one_sr",
    "check_sr",
    "check_theorem3",
]

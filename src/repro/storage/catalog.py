"""The replication catalog: which sites hold a copy of which item."""

from __future__ import annotations

import random
import typing


class Catalog:
    """Immutable-after-construction map of logical items to resident sites.

    The paper assumes "the information regarding where the copies of data
    item X are located is available at least at the resident sites of X"
    (§2); we make the catalog globally readable, which is the common
    implementation and does not interact with the recovery protocol.
    """

    def __init__(self, site_ids: typing.Sequence[int]) -> None:
        if not site_ids:
            raise ValueError("catalog requires at least one site")
        self.site_ids: tuple[int, ...] = tuple(sorted(site_ids))
        self._placement: dict[str, tuple[int, ...]] = {}

    # -- construction -----------------------------------------------------------

    def add_item(self, item: str, sites: typing.Sequence[int]) -> None:
        """Declare that ``item`` has a copy at each site in ``sites``."""
        if item in self._placement:
            raise ValueError(f"item {item!r} already in catalog")
        sites = tuple(sorted(set(sites)))
        if not sites:
            raise ValueError(f"item {item!r} needs at least one copy")
        unknown = [s for s in sites if s not in self.site_ids]
        if unknown:
            raise ValueError(f"item {item!r} placed at unknown sites {unknown}")
        self._placement[item] = sites

    @classmethod
    def fully_replicated(
        cls, site_ids: typing.Sequence[int], items: typing.Iterable[str]
    ) -> "Catalog":
        """Every item at every site."""
        catalog = cls(site_ids)
        for item in items:
            catalog.add_item(item, catalog.site_ids)
        return catalog

    @classmethod
    def random_placement(
        cls,
        site_ids: typing.Sequence[int],
        items: typing.Iterable[str],
        replication: int,
        rng: random.Random,
    ) -> "Catalog":
        """Each item at ``replication`` distinct sites chosen uniformly."""
        catalog = cls(site_ids)
        if not 1 <= replication <= len(catalog.site_ids):
            raise ValueError(
                f"replication {replication} out of range for {len(catalog.site_ids)} sites"
            )
        for item in items:
            catalog.add_item(item, rng.sample(catalog.site_ids, replication))
        return catalog

    # -- queries ------------------------------------------------------------------

    def items(self) -> typing.Iterable[str]:
        return self._placement.keys()

    def __contains__(self, item: str) -> bool:
        return item in self._placement

    def sites_of(self, item: str) -> tuple[int, ...]:
        """The resident sites of ``item``; KeyError if unknown."""
        return self._placement[item]

    def items_at(self, site_id: int) -> list[str]:
        """All items with a copy at ``site_id``."""
        return [item for item, sites in self._placement.items() if site_id in sites]

    def has_copy(self, item: str, site_id: int) -> bool:
        return site_id in self._placement.get(item, ())

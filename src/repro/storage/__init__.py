"""Per-site storage substrate.

Models the stable/volatile split the paper relies on:

* :class:`~repro.storage.stable.StableStorage` — survives crashes (the
  paper stores the current session number here, §3.1).
* :class:`~repro.storage.copies.CopyStore` — the committed physical copies
  at a site, including the *unreadable* marks used during recovery
  (§3.2/§3.4). Only committed state is ever written here, so the store
  survives crashes by construction.
* :class:`~repro.storage.catalog.Catalog` — where the copies of each
  logical item reside (the paper assumes this is known at least at the
  resident sites, §2).
"""

from repro.storage.catalog import Catalog
from repro.storage.copies import CopyStore, DataCopy, Version
from repro.storage.stable import StableStorage

__all__ = ["Catalog", "CopyStore", "DataCopy", "StableStorage", "Version"]

"""Versioned physical copies of logical data items at one site."""

from __future__ import annotations

import dataclasses
import typing

from repro.sanitize import hooks as _san


class Version(typing.NamedTuple):
    """Total order on committed writes of a logical item.

    ``ts`` is the commit time of the writing transaction, ``commit`` a
    globally increasing commit sequence number assigned at the 2PC
    decision, and ``seq`` the *writer's* transaction sequence number
    (provenance, not ordering). The pair ``(ts, commit)`` orders versions
    by true commit order; ``ts`` alone is insufficient because two local
    transactions can decide within the same simulated instant, and writer
    sequence numbers do not follow commit order. The commit counter
    stands in for the Lamport/LSN component a real site would put in its
    version numbers.

    Copiers carry the source version across unchanged, which is what
    makes the §5 version-number optimisation ("compare the version
    numbers first, then decide whether copying data is necessary") and
    the §4 READ-FROM provenance sound.
    """

    ts: float
    commit: int
    seq: int = 0

    @classmethod
    def initial(cls) -> "Version":
        return cls(0.0, 0, 0)


@dataclasses.dataclass
class DataCopy:
    """One physical copy ``x_k`` of a logical item ``X``.

    ``unreadable`` is the §3.4 mark: set while the copy may have missed
    updates, cleared by a copier or by a committed user write.
    """

    item: str
    value: object
    version: Version = dataclasses.field(default_factory=Version.initial)
    unreadable: bool = False


class CopyStore:
    """The committed copies residing at one site.

    Only *committed* state is written here (the transaction machinery
    keeps uncommitted writes in per-transaction workspaces), so the store
    survives crashes by construction — matching a redo/no-undo stable
    database.
    """

    def __init__(self, site_id: int) -> None:
        self.site_id = site_id
        self._copies: dict[str, DataCopy] = {}
        self.bytes_copied = 0  # crude copier work counter (E5)
        #: Optional redo-journal hook (set by the site's SiteWal): called
        #: as ``journal(op, item, value, version)`` for every committed
        #: mutation, with op in {"write", "mark", "clear"}. Duck-typed so
        #: the storage layer needs no dependency on repro.wal.
        self.journal: typing.Callable[..., None] | None = None
        #: Version observers (set by the site's multiversion store):
        #: called as ``hook(op, item, value, version)`` with op in
        #: {"write", "install", "reset"}. Unlike ``journal`` these fire
        #: on the restore path too (``install``), which is how version
        #: chains are rebuilt from checkpoint + replay without the WAL
        #: knowing anything about repro.mvcc.
        self.version_hooks: list[typing.Callable[..., None]] = []

    # -- schema -------------------------------------------------------------

    def create(self, item: str, value: object = None) -> DataCopy:
        """Install the copy of ``item`` at this site."""
        if item in self._copies:
            raise KeyError(f"copy of {item} already exists at site {self.site_id}")
        copy = DataCopy(item=item, value=value)
        self._copies[item] = copy
        return copy

    def has(self, item: str) -> bool:
        return item in self._copies

    def get(self, item: str) -> DataCopy:
        """The copy of ``item``; KeyError if this site holds none."""
        return self._copies[item]

    def items(self) -> typing.Iterable[str]:
        """Names of all items with a copy here."""
        return self._copies.keys()

    # -- committed mutations --------------------------------------------------

    def apply_write(self, item: str, value: object, version: Version) -> None:
        """Install a committed write; clears the unreadable mark (§3.2)."""
        if _san.ACTIVE is not None:
            _san.ACTIVE.on_access(
                self.site_id, ("copy", item), "write",
                "CopyStore.apply_write", token=version,
            )
        copy = self._copies[item]
        copy.value = value
        copy.version = version
        copy.unreadable = False
        if self.journal is not None:
            self.journal("write", item, value, version)
        for hook in self.version_hooks:
            hook("write", item, value, version)

    def mark_unreadable(self, item: str) -> None:
        """Flag the copy as possibly stale (recovery step 2, §3.4)."""
        if _san.ACTIVE is not None:
            self._track_mark(item, "CopyStore.mark_unreadable")
        self._copies[item].unreadable = True
        if self.journal is not None:
            self.journal("mark", item)

    def clear_unreadable(self, item: str) -> None:
        """Validate the copy without changing it (equal-version copier)."""
        if _san.ACTIVE is not None:
            self._track_mark(item, "CopyStore.clear_unreadable")
        self._copies[item].unreadable = False
        if self.journal is not None:
            self.journal("clear", item)

    def mark_all_unreadable(self) -> None:
        """The basic algorithm's conservative step 2: mark every copy."""
        for item, copy in self._copies.items():
            copy.unreadable = True
            if self.journal is not None:
                self.journal("mark", item)

    def _track_mark(self, item: str, where: str) -> None:
        """Report an unreadable-mark flip to the attached sanitizer.

        Mark flips are writes to the same ``("copy", item)`` key as value
        installs: a copier validating a copy races a user write to it
        exactly like two value writes would.
        """
        _san.ACTIVE.on_access(self.site_id, ("copy", item), "write", where)

    def unreadable_items(self) -> list[str]:
        """Items whose local copy is currently marked unreadable."""
        return [name for name, copy in self._copies.items() if copy.unreadable]

    # -- restart reconstruction (repro.wal restore path) ----------------------

    def reset(self) -> None:
        """Drop every copy: the restore path rebuilds from checkpoint+log."""
        self._copies.clear()
        for hook in self.version_hooks:
            hook("reset", None, None, None)

    def install(
        self, item: str, value: object, version: Version, unreadable: bool = False
    ) -> DataCopy:
        """Install/overwrite a copy with explicit full state (replay only:
        unlike :meth:`apply_write`, this sets the mark rather than
        clearing it and is never journaled by the caller)."""
        if _san.ACTIVE is not None:
            _san.ACTIVE.on_access(
                self.site_id, ("copy", item), "write",
                "CopyStore.install", token=version,
            )
        copy = self._copies.get(item)
        if copy is None:
            copy = self._copies[item] = DataCopy(item=item, value=value)
        copy.value = value
        copy.version = version
        copy.unreadable = unreadable
        for hook in self.version_hooks:
            hook("install", item, value, version)
        return copy

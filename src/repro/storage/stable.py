"""Stable (crash-surviving) key-value storage for a site."""

from __future__ import annotations

import pickle
import typing


class StableStorage:
    """A per-site key-value store that survives crashes.

    In the simulation a crash simply *does not touch* this object, while
    all volatile structures (lock tables, transaction workspaces, inboxes)
    are discarded. Writes are modeled as atomic, matching the paper's
    assumption that the current session number "must also be saved in a
    stable storage" (§3.1).

    Values cross a serialization boundary (pickle) on both :meth:`put`
    and :meth:`get`: what is persisted is a byte snapshot, so mutating an
    object after ``put`` cannot silently alter "stable" state, and two
    ``get`` calls never alias each other. This also yields an honest
    byte count (:attr:`bytes_written`) for stable-write cost accounting,
    instead of just a write *counter*.
    """

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}
        self.writes = 0  # counts stable writes, for cost accounting
        self.bytes_written = 0  # serialized bytes persisted across all puts

    def put(self, key: str, value: object) -> int:
        """Atomically persist ``value`` under ``key``; returns blob size."""
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self._blobs[key] = blob
        self.writes += 1
        self.bytes_written += len(blob)
        return len(blob)

    def get(self, key: str, default: object = None) -> object:
        """Read (a private copy of) the persisted value, or ``default``."""
        blob = self._blobs.get(key)
        if blob is None:
            return default
        return pickle.loads(blob)

    def size_of(self, key: str) -> int:
        """Serialized size in bytes of the value under ``key`` (0 if absent)."""
        blob = self._blobs.get(key)
        return len(blob) if blob is not None else 0

    def delete(self, key: str) -> None:
        """Remove ``key`` if present."""
        self._blobs.pop(key, None)

    def __contains__(self, key: str) -> bool:
        return key in self._blobs

    def keys(self) -> typing.KeysView[str]:
        return self._blobs.keys()

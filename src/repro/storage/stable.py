"""Stable (crash-surviving) key-value storage for a site."""

from __future__ import annotations

import typing


class StableStorage:
    """A per-site key-value store that survives crashes.

    In the simulation a crash simply *does not touch* this object, while
    all volatile structures (lock tables, transaction workspaces, inboxes)
    are discarded. Writes are modeled as atomic, matching the paper's
    assumption that the current session number "must also be saved in a
    stable storage" (§3.1).
    """

    def __init__(self) -> None:
        self._data: dict[str, object] = {}
        self.writes = 0  # counts stable writes, for cost accounting

    def put(self, key: str, value: object) -> None:
        """Atomically persist ``value`` under ``key``."""
        self._data[key] = value
        self.writes += 1

    def get(self, key: str, default: object = None) -> object:
        """Read the persisted value, or ``default``."""
        return self._data.get(key, default)

    def delete(self, key: str) -> None:
        """Remove ``key`` if present."""
        self._data.pop(key, None)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> typing.KeysView[str]:
        return self._data.keys()

"""Partition tolerance and merging — the §6 future-work direction.

The paper stops at crash failures and sketches the rest: "the solution
to the site failure problem and the concept of nominal session numbers
are applicable to the merging of network partitions ... When a site
obtains all updates from another partition, it is considered integrated
in one direction." This module is a working prototype of that sketch,
using the *primary-partition* rule in place of the true-copy tokens of
[7] (the simplest sound way to decide who may keep updating):

* every operational site periodically probes its peers;
* a site that can reach a strict **majority** of sites treats the
  unreachable ones as down — the existing failure-detection machinery
  then runs the ordinary type-2 exclusions, and the majority side keeps
  serving at full ROWAA availability;
* a site that cannot reach a majority **freezes**: it refuses user
  transactions but keeps its session (it has no way to distinguish
  "I am partitioned off" from "everyone else died", and committing in a
  minority could diverge — this is exactly why the paper's crash-only
  model forbids suspicion on timeouts alone; the majority gate restores
  soundness because a frozen minority can commit nothing for a type-2
  to contradict);
* on heal, a frozen site asks a reachable peer how the system sees it:
  if its nominal session number is unchanged it simply thaws (nothing
  happened — e.g. an even split froze everyone); if it was excluded, it
  demotes itself and runs the *ordinary §3.4 recovery procedure* — the
  paper's "integration in one direction", verbatim: mark, type-1,
  copiers.

The merge needs no new protocol at all — that is the §6 thesis, and it
holds for clean partition episodes (split → exclusions → heal →
reintegration; `tests/core/test_partition_merge.py` verifies full
one-serializability for them).

**Known limitation, deliberately documented rather than papered over:**
membership here is verified by *polling*, so a site reconnected by an
adversarially-timed heal can serve a few transactions from its stale
world before its next verification tick demotes it — a lost-update
window that the randomized chaos soak reliably exhibits. Closing it
requires leased membership (a site serves only while holding an
unexpired majority-granted lease) or consensus-managed views — machinery
far beyond the paper's 1986 toolbox, which is presumably why §6 ends
with "full details have not been worked out". Under chaos the prototype
still guarantees recovered convergence: every site rejoins, replicas
converge, and the Theorem-3 invariant stays intact
(`tests/core/test_partition_soak.py`).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.nominal import ns_item
from repro.errors import NetworkError, TransactionError
from repro.site.site import Site, SiteStatus

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import RowaaSystem


@dataclasses.dataclass
class PartitionConfig:
    """Tunables of the majority-partition service."""

    probe_interval: float = 15.0
    ping_timeout: float = 6.0  # > 1 round trip between live sites


class MajorityPartitionService:
    """One site's partition watchdog (see module docstring)."""

    def __init__(
        self, system: "RowaaSystem", site: Site, config: PartitionConfig
    ) -> None:
        self.system = system
        self.site = site
        self.config = config
        self.freezes = 0
        self.thaws = 0
        self.demotions = 0
        site.rpc.register("ns.peek", self._handle_peek)
        site.power_on_hooks.append(self._spawn_loop)
        if not site.is_down:
            self._spawn_loop()

    def _handle_peek(self, target: int, src: int) -> int:
        """A peer asks how this site's nominal vector sees ``target``."""
        item = ns_item(target)
        if not self.site.copies.has(item):
            return 0
        return int(self.site.copies.get(item).value)  # type: ignore[call-overload]

    @property
    def _majority(self) -> int:
        return len(self.system.cluster.site_ids) // 2 + 1

    def _spawn_loop(self) -> None:
        self.site.spawn(self._loop(), name="partition-watchdog")

    def _loop(self) -> typing.Generator:
        kernel = self.system.kernel
        while True:
            yield kernel.timeout(self.config.probe_interval)
            reachable, unreachable = yield from self._probe_all()
            if len(reachable) >= self._majority:
                yield from self._majority_side(reachable, unreachable)
            else:
                self._minority_side()

    def _probe_all(self) -> typing.Generator:
        me = self.site.site_id
        reachable, unreachable = {me}, set()
        calls = [
            (peer, self.site.rpc.call(peer, "recovery.probe", None,
                                      timeout=self.config.ping_timeout))
            for peer in self.system.cluster.site_ids
            if peer != me
        ]
        for peer, future in calls:
            try:
                yield future
            except (NetworkError, TransactionError):
                unreachable.add(peer)
                continue
            reachable.add(peer)
        return reachable, unreachable

    # -- majority behaviour ------------------------------------------------------

    def _majority_side(self, reachable: set, unreachable: set) -> typing.Generator:
        if not self.site.is_operational:
            return  # the normal recovery path is (or will be) running
        demoted = yield from self._verify_membership(reachable)
        if demoted or self.site.user_frozen:
            return
        detector = self.system.cluster.detector(self.site.site_id)
        for peer in sorted(reachable - {self.site.site_id}):
            if not detector.believes_up(peer):
                # Reconnection withdraws the suspicion: pending exclusion
                # loops abandon (they re-check the detector), and the
                # in-transaction confirm_down ping catches any already in
                # flight.
                detector.mark_up(peer)
        for peer in sorted(unreachable):
            if detector.believes_up(peer):
                # Majority-gated suspicion: the peer is either down or
                # frozen in a minority — either way it cannot commit, so
                # the ordinary exclusion machinery (type-2, incarnation-
                # bound) applies safely.
                detector.mark_down(peer)
        return None

    def _verify_membership(self, reachable: set) -> typing.Generator:
        """Confirm with peers that this site is still nominally up.

        Runs on EVERY majority-side tick, frozen or not: an excluded
        site that has not yet noticed (e.g. overlapping partitions made
        the exclusion commit while it believed itself a majority member)
        must not keep acting as a full citizen — in the soak such a site
        kept initiating control transactions and serving clients from a
        diverging world.

        The verdict is by MAJORITY: fellow stale sites can echo an old
        value (they missed our type-1) or a stale 0 (they missed our
        re-announcement), so neither a single match nor a single
        mismatch proves anything. If a majority of sites (self
        included) agrees with our current session we are a member; if a
        majority of answers disagrees, we were excluded; anything in
        between is inconclusive and we retry next tick.

        Returns True if the site demoted itself.
        """
        me = self.site.site_id
        verdicts = []
        for peer in sorted(reachable - {me}):
            try:
                verdicts.append(
                    (yield self.site.rpc.call(
                        peer, "ns.peek", me, timeout=self.config.ping_timeout
                    ))
                )
            except (NetworkError, TransactionError):
                continue
        current = self.system.sessions[me].current
        agreeing = 1 + sum(1 for verdict in verdicts if verdict == current)
        disagreeing = len(verdicts) + 1 - agreeing
        if agreeing >= self._majority:
            if self.site.user_frozen:
                # A membership majority still knows us (e.g. an even
                # split froze everyone and nothing changed): just thaw.
                self.site.user_frozen = False
                self.thaws += 1
            return False
        if disagreeing < self._majority:
            return False  # inconclusive; stay as we are, retry next tick
        # We were excluded: demote and run the ordinary §3.4 procedure —
        # "integration in one direction" exactly as §6 prescribes.
        self.demotions += 1
        self.site.user_frozen = False
        self.system.dms[me].actual_session = 0
        self.site.status = SiteStatus.RECOVERING
        self.system.recoveries[me].start()
        return True

    # -- minority behaviour ------------------------------------------------------

    def _minority_side(self) -> None:
        if self.site.is_operational and not self.site.user_frozen:
            self.site.user_frozen = True
            self.freezes += 1

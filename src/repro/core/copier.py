"""Copier transactions (§3.2) and their scheduling (§5 tradeoffs).

A copier refreshes one unreadable copy: it reads the local nominal
session vector, locates a readable copy of the item at a nominally up
site, and renovates the local copy — carrying the source *version*
across so READ-FROM provenance is preserved (§4). With
``version_skip`` enabled it first peeks at the local version and, when
the copy turns out to be current already, clears the mark without moving
data (the paper's §5 observation about version numbers).

Scheduling (§3.2: "may influence the performance but not the
correctness"): *eager* — the recovery procedure enqueues copiers for all
unreadable copies; *demand* — a read rejected by an unreadable copy
triggers one. Both run as ordinary transactions, concurrently with user
load, only after the recovering site has become operational.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

from repro.core.config import RowaaConfig
from repro.core.nominal import is_ns_item, ns_item
from repro.errors import (
    CopyUnreadable,
    NetworkError,
    TotalFailure,
    TransactionAborted,
    TransactionError,
)
from repro.sim.kernel import Kernel
from repro.txn.data_manager import DataManager
from repro.txn.manager import TransactionManager
from repro.txn.transaction import TxnKind

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.site.site import Site
    from repro.txn.context import TxnContext


@dataclasses.dataclass
class CopierStats:
    """Work accounting for experiments E4/E5."""

    copies_performed: int = 0
    copies_skipped_version: int = 0  # §5 optimisation hits
    cleared_by_user_write: int = 0
    copier_aborts: int = 0
    total_failures: int = 0
    resurrections: int = 0  # totally-failed items revived by version vote
    bytes_copied: int = 0  # unit-sized values: counts data transfers


class CopierService:
    """Schedules and runs copier transactions at one site."""

    def __init__(
        self,
        kernel: Kernel,
        site: "Site",
        dm: DataManager,
        tm: TransactionManager,
        config: RowaaConfig,
        max_attempts: int = 10,
    ) -> None:
        self.kernel = kernel
        self.site = site
        self.dm = dm
        self.tm = tm
        self.config = config
        self.max_attempts = max_attempts
        self.stats = CopierStats()
        self.drained_at: float | None = None
        self._inflight: set[str] = set()
        if config.copier_mode in ("demand", "both"):
            dm.unreadable_read_hooks.append(self._on_demand_trigger)
        site.crash_hooks.append(self._inflight.clear)

    # -- scheduling ------------------------------------------------------------

    def reset_drain_marker(self) -> None:
        """Forget the previous recovery's drain time (new recovery epoch)."""
        self.drained_at = None

    def retry_unreadable(self) -> None:
        """Re-enqueue copiers for still-unreadable copies.

        Called when *another* site recovers: copies whose refresh hit
        "totally failed" (no readable source) may be refreshable now.
        Respects the copier mode — demand-only systems rely on reads.
        """
        if not self.site.is_operational:
            return
        if self.config.copier_mode in ("eager", "both"):
            self.start_eager()

    def start_eager(self) -> None:
        """Enqueue copiers for every currently unreadable copy.

        Called by the recovery manager right after the site becomes
        operational (never before: copiers are ordinary transactions).
        """
        if self.config.copier_mode not in ("eager", "both"):
            return
        pending = collections.deque(
            item for item in self.site.copies.unreadable_items() if not is_ns_item(item)
        )
        if not pending:
            self._check_drained()
            return
        for _lane in range(min(self.config.copier_concurrency, len(pending))):
            self.site.spawn(self._eager_lane(pending), name="copier-lane")

    def _eager_lane(self, pending: collections.deque) -> typing.Generator:
        while pending:
            item = pending.popleft()
            yield from self._refresh_item(item)

    def _on_demand_trigger(self, item: str) -> None:
        if is_ns_item(item) or item in self._inflight:
            return
        if not self.site.is_operational:
            return
        self.site.spawn(self._refresh_item(item), name=f"copier:{item}")

    # -- execution ---------------------------------------------------------------

    def _refresh_item(self, item: str) -> typing.Generator:
        if item in self._inflight:
            return
        self._inflight.add(item)
        obs = self.site.obs
        span = None
        if obs.spans_on:
            span = obs.spans.start(
                f"refresh:{item}", "copier_refresh", self.site.site_id
            )
        try:
            yield from self._refresh_item_inner(item, span)
        finally:
            if span is not None:
                obs.spans.finish(span)
            self._inflight.discard(item)
        self._check_drained()

    def _refresh_item_inner(self, item: str, span=None) -> typing.Generator:
        parent_span = span.span_id if span is not None else None
        for _attempt in range(self.max_attempts):
            if not self.site.copies.has(item):
                return
            if not self.site.copies.get(item).unreadable:
                self.stats.cleared_by_user_write += 1
                return  # a user write beat us to it (§3.2)
            try:
                outcome = yield from self.tm.run(
                    self._copier_program(item), kind=TxnKind.COPIER,
                    parent_span=parent_span,
                )
            except TransactionAborted as exc:
                if isinstance(exc.__cause__, TotalFailure):
                    # No readable copy anywhere operational: the paper
                    # defers this to a separate protocol (§3.2); keep the
                    # mark and report.
                    self.stats.total_failures += 1
                    return
                self.stats.copier_aborts += 1
                yield self.kernel.timeout(self.config.copier_retry_delay)
                continue
            if outcome == "copied":
                self.stats.copies_performed += 1
                self.stats.bytes_copied += 1
            elif outcome == "resurrected":
                self.stats.resurrections += 1
            else:
                self.stats.copies_skipped_version += 1
            return
        self.stats.total_failures += 1

    def _copier_program(self, item: str):
        service = self

        def program(ctx: "TxnContext") -> typing.Generator:
            home = ctx.tm.site_id
            view: dict[int, int] = {}
            for site_id in ctx.tm.catalog.site_ids:
                value, _version = yield from ctx.dm_read(home, ns_item(site_id))
                view[site_id] = int(value)  # type: ignore[call-overload]

            local_value, local_version = yield from ctx.dm_read(
                home, item, expected=view.get(home), peek_unreadable=True
            )

            resident = ctx.tm.catalog.sites_of(item)
            candidates = sorted(
                site for site in resident if site != home and view.get(site, 0) != 0
            )
            source_value = source_version = None
            for site in candidates:
                try:
                    source_value, source_version = yield from ctx.dm_read(
                        site, item, expected=view[site]
                    )
                    break
                except (CopyUnreadable, NetworkError, TransactionError):
                    continue
            if source_version is None:
                # No readable copy anywhere. The paper defers "totally
                # failed" items to a separate protocol (§3.2); ours is the
                # version vote: when EVERY resident site is nominally up,
                # the highest version among all (unreadable) copies is
                # provably the latest committed one — every committed
                # write reached at least one of these stable stores — so
                # it can be resurrected. With residents still down we must
                # keep waiting (a newer version may live there).
                if any(view.get(site, 0) == 0 for site in resident):
                    raise TotalFailure(item)
                best_value, best_version = local_value, local_version
                for site in candidates:
                    value, version = yield from ctx.dm_read(
                        site, item, expected=view[site], peek_unreadable=True
                    )
                    if version > best_version:
                        best_value, best_version = value, version
                yield from ctx.dm_write(
                    home,
                    item,
                    best_value,
                    expected=view.get(home),
                    version_override=best_version,  # type: ignore[arg-type]
                    applied_sites=(home,),
                )
                return "resurrected"

            if service.config.version_skip and source_version == local_version:
                # §5: versions match — no data transfer needed, just clear
                # the mark (still a locked, committed write of the same
                # value, so concurrency control sees it normally).
                yield from ctx.dm_write(
                    home,
                    item,
                    local_value,
                    expected=view.get(home),
                    version_override=local_version,  # type: ignore[arg-type]
                    applied_sites=(home,),
                )
                return "skipped"

            yield from ctx.dm_write(
                home,
                item,
                source_value,
                expected=view.get(home),
                version_override=source_version,  # type: ignore[arg-type]
                applied_sites=(home,),
            )
            return "copied"

        return program

    def _check_drained(self) -> None:
        unreadable = [
            item for item in self.site.copies.unreadable_items() if not is_ns_item(item)
        ]
        # Missing-list drain curve: one point per completed refresh gives
        # the reporter the unreadable-count-over-time trajectory.
        self.site.obs.registry.series(
            "recovery.unreadable", self.site.site_id
        ).append(self.kernel.now, float(len(unreadable)))
        if not unreadable and self.drained_at is None:
            self.drained_at = self.kernel.now

"""Copier transactions (§3.2) and their scheduling (§5 tradeoffs).

A copier refreshes one unreadable copy: it reads the local nominal
session vector, locates a readable copy of the item at a nominally up
site, and renovates the local copy — carrying the source *version*
across so READ-FROM provenance is preserved (§4). With
``version_skip`` enabled it first peeks at the local version and, when
the copy turns out to be current already, clears the mark without moving
data (the paper's §5 observation about version numbers).

Scheduling (§3.2: "may influence the performance but not the
correctness"): *eager* — the recovery procedure enqueues copiers for all
unreadable copies; *demand* — a read rejected by an unreadable copy
triggers one. Both run as ordinary transactions, concurrently with user
load, only after the recovering site has become operational.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

from repro.core.config import RowaaConfig
from repro.core.nominal import is_ns_item, ns_item
from repro.errors import (
    CopyUnreadable,
    NetworkError,
    TotalFailure,
    TransactionAborted,
    TransactionError,
)
from repro.sim.kernel import Kernel
from repro.txn.data_manager import DataManager
from repro.txn.manager import TransactionManager
from repro.txn.transaction import TxnKind
from repro.wal import ShipRecord, ShipReply, ShipRequest

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.site.site import Site
    from repro.txn.context import TxnContext


@dataclasses.dataclass
class CopierStats:
    """Work accounting for experiments E4/E5/E9."""

    copies_performed: int = 0
    copies_skipped_version: int = 0  # §5 optimisation hits
    cleared_by_user_write: int = 0
    copier_aborts: int = 0
    total_failures: int = 0
    resurrections: int = 0  # totally-failed items revived by version vote
    bytes_copied: int = 0  # unit-sized values: counts data transfers
    # -- log-shipping catch-up (E9) -------------------------------------
    ship_batches: int = 0  # pages fetched from the serving peer
    records_shipped: int = 0  # log records received across all pages
    ship_applied: int = 0  # shipped writes installed locally
    ship_validated: int = 0  # marks cleared via the final versions map
    ship_bytes: int = 0  # nominal bytes of all ship replies received
    ship_served_records: int = 0  # records this site served to peers
    ship_fallback_truncated: int = 0  # streams refused: peer truncated
    ship_fallback_items: int = 0  # items handed to per-item copy after a stream


class CopierService:
    """Schedules and runs copier transactions at one site."""

    def __init__(
        self,
        kernel: Kernel,
        site: "Site",
        dm: DataManager,
        tm: TransactionManager,
        config: RowaaConfig,
        max_attempts: int = 10,
    ) -> None:
        self.kernel = kernel
        self.site = site
        self.dm = dm
        self.tm = tm
        self.config = config
        self.max_attempts = max_attempts
        self.stats = CopierStats()
        self.drained_at: float | None = None
        self._inflight: set[str] = set()
        self._ship_running = False
        if config.copier_mode in ("demand", "both"):
            dm.unreadable_read_hooks.append(self._on_demand_trigger)
        site.rpc.register("wal.ship", self._handle_ship)
        site.crash_hooks.append(self._on_crash)

    def _on_crash(self) -> None:
        self._inflight.clear()
        self._ship_running = False

    # -- scheduling ------------------------------------------------------------

    def reset_drain_marker(self) -> None:
        """Forget the previous recovery's drain time (new recovery epoch)."""
        self.drained_at = None

    def retry_unreadable(self) -> None:
        """Re-enqueue copiers for still-unreadable copies.

        Called when *another* site recovers: copies whose refresh hit
        "totally failed" (no readable source) may be refreshable now.
        Respects the copier mode — demand-only systems rely on reads.
        """
        if not self.site.is_operational:
            return
        if self.config.copier_mode in ("eager", "both"):
            self.start_eager()

    def start_eager(self) -> None:
        """Enqueue catch-up for every currently unreadable copy.

        Called by the recovery manager right after the site becomes
        operational (never before: copiers are ordinary transactions).
        ``catchup_mode`` picks the strategy: per-item copiers, or one
        log-shipping stream from a nominally-up peer.
        """
        if self.config.copier_mode not in ("eager", "both"):
            return
        if self.config.catchup_mode == "log_ship" and self.site.wal is not None:
            if self._ship_running:
                return
            self._ship_running = True
            self.site.spawn(self._log_ship_catchup(), name="log-ship")
            return
        self._start_item_copy(self._pending_items())

    def _pending_items(self) -> list[str]:
        return [
            item for item in self.site.copies.unreadable_items() if not is_ns_item(item)
        ]

    def _start_item_copy(self, items: typing.Sequence[str]) -> None:
        """Fan per-item copier lanes over ``items`` (the §3.2 scheme)."""
        pending = collections.deque(items)
        if not pending:
            self._check_drained()
            return
        for _lane in range(min(self.config.copier_concurrency, len(pending))):
            self.site.spawn(self._eager_lane(pending), name="copier-lane")

    def _eager_lane(self, pending: collections.deque) -> typing.Generator:
        while pending:
            item = pending.popleft()
            yield from self._refresh_item(item)

    def _on_demand_trigger(self, item: str) -> None:
        if is_ns_item(item) or item in self._inflight:
            return
        if not self.site.is_operational:
            return
        self.site.spawn(self._refresh_item(item), name=f"copier:{item}")

    # -- execution ---------------------------------------------------------------

    def _refresh_item(self, item: str) -> typing.Generator:
        if item in self._inflight:
            return
        self._inflight.add(item)
        obs = self.site.obs
        span = None
        if obs.spans_on:
            span = obs.spans.start(
                f"refresh:{item}", "copier_refresh", self.site.site_id
            )
        try:
            yield from self._refresh_item_inner(item, span)
        finally:
            if span is not None:
                obs.spans.finish(span)
            self._inflight.discard(item)
        self._check_drained()

    def _refresh_item_inner(self, item: str, span=None) -> typing.Generator:
        parent_span = span.span_id if span is not None else None
        for _attempt in range(self.max_attempts):
            if not self.site.copies.has(item):
                return
            if not self.site.copies.get(item).unreadable:
                self.stats.cleared_by_user_write += 1
                return  # a user write beat us to it (§3.2)
            try:
                outcome = yield from self.tm.run(
                    self._copier_program(item), kind=TxnKind.COPIER,
                    parent_span=parent_span,
                )
            except TransactionAborted as exc:
                if isinstance(exc.__cause__, TotalFailure):
                    # No readable copy anywhere operational: the paper
                    # defers this to a separate protocol (§3.2); keep the
                    # mark and report.
                    self.stats.total_failures += 1
                    return
                self.stats.copier_aborts += 1
                yield self.kernel.timeout(self.config.copier_retry_delay)
                continue
            if outcome == "copied":
                self.stats.copies_performed += 1
                self.stats.bytes_copied += 1
            elif outcome == "resurrected":
                self.stats.resurrections += 1
            else:
                self.stats.copies_skipped_version += 1
            return
        self.stats.total_failures += 1

    def _copier_program(self, item: str):
        service = self

        def program(ctx: "TxnContext") -> typing.Generator:
            home = ctx.tm.site_id
            view: dict[int, int] = {}
            for site_id in ctx.tm.catalog.site_ids:
                value, _version = yield from ctx.dm_read(home, ns_item(site_id))
                view[site_id] = int(value)  # type: ignore[call-overload]

            local_value, local_version = yield from ctx.dm_read(
                home, item, expected=view.get(home), peek_unreadable=True
            )

            resident = ctx.tm.catalog.sites_of(item)
            candidates = sorted(
                site for site in resident if site != home and view.get(site, 0) != 0
            )
            source_value = source_version = None
            for site in candidates:
                try:
                    source_value, source_version = yield from ctx.dm_read(
                        site, item, expected=view[site]
                    )
                    break
                except (CopyUnreadable, NetworkError, TransactionError):
                    continue
            if source_version is None:
                # No readable copy anywhere. The paper defers "totally
                # failed" items to a separate protocol (§3.2); ours is the
                # version vote: when EVERY resident site is nominally up,
                # the highest version among all (unreadable) copies is
                # provably the latest committed one — every committed
                # write reached at least one of these stable stores — so
                # it can be resurrected. With residents still down we must
                # keep waiting (a newer version may live there).
                if any(view.get(site, 0) == 0 for site in resident):
                    raise TotalFailure(item)
                best_value, best_version = local_value, local_version
                for site in candidates:
                    value, version = yield from ctx.dm_read(
                        site, item, expected=view[site], peek_unreadable=True
                    )
                    if version > best_version:
                        best_value, best_version = value, version
                yield from ctx.dm_write(
                    home,
                    item,
                    best_value,
                    expected=view.get(home),
                    version_override=best_version,  # type: ignore[arg-type]
                    applied_sites=(home,),
                )
                return "resurrected"

            if service.config.version_skip and source_version == local_version:
                # §5: versions match — no data transfer needed, just clear
                # the mark (still a locked, committed write of the same
                # value, so concurrency control sees it normally).
                yield from ctx.dm_write(
                    home,
                    item,
                    local_value,
                    expected=view.get(home),
                    version_override=local_version,  # type: ignore[arg-type]
                    applied_sites=(home,),
                )
                return "skipped"

            yield from ctx.dm_write(
                home,
                item,
                source_value,
                expected=view.get(home),
                version_override=source_version,  # type: ignore[arg-type]
                applied_sites=(home,),
            )
            return "copied"

        return program

    # -- log-shipping catch-up (serving side) -----------------------------------

    def _handle_ship(self, request: ShipRequest, src: int) -> ShipReply:
        """Serve one page of the missed-update stream (``wal.ship``).

        Filters the retained log suffix to write records of items the
        requester hosts whose commit sequence lies above the requester's
        anchor, tagging each with whether this record is still the peer's
        *current* version. Refuses when truncation dropped any record the
        requester might need.
        """
        del src  # the request names the requester explicitly
        wal = self.site.wal
        if wal is None or not self.site.is_operational or self.site.user_frozen:
            return ShipReply(serving=False, truncated=False)
        catalog = self.tm.catalog
        for item, commit in wal.log.truncated_commit_by_item.items():
            if (
                commit > request.after_commit
                and not is_ns_item(item)
                and request.requester in catalog.sites_of(item)
            ):
                return ShipReply(serving=True, truncated=True)
        copies = self.site.copies
        records: list[ShipRecord] = []
        cursor = request.cursor_lsn
        done = True
        for record in wal.log.records_after(request.cursor_lsn):
            cursor = record.lsn
            if record.kind != "write" or record.item is None:
                continue
            item = record.item
            if is_ns_item(item) or record.version is None:
                continue
            if request.requester not in catalog.sites_of(item):
                continue
            if record.version.commit <= request.after_commit:
                continue
            if not copies.has(item):
                continue
            copy = copies.get(item)
            if copy.unreadable:
                continue  # cannot vouch for our own copy — requester falls back
            records.append(
                ShipRecord(
                    item=item,
                    value=record.value,
                    version=record.version,
                    current=copy.version == record.version,
                )
            )
            if len(records) >= request.batch:
                done = False
                break
        versions: dict[str, object] | None = None
        if done:
            # Final page: vouch for the current version of every readable
            # requester-hosted copy so untouched items can validate-clear
            # locally instead of one remote read each.
            versions = {}
            for item in copies.items():
                if is_ns_item(item) or request.requester not in catalog.sites_of(item):
                    continue
                copy = copies.get(item)
                if not copy.unreadable:
                    versions[item] = copy.version
        self.stats.ship_served_records += len(records)
        return ShipReply(
            serving=True,
            truncated=False,
            records=tuple(records),
            next_cursor=cursor,
            done=done,
            versions=versions,  # type: ignore[arg-type]
        )

    # -- log-shipping catch-up (recovering side) --------------------------------

    def _log_ship_catchup(self) -> typing.Generator:
        obs = self.site.obs
        span = None
        if obs.spans_on:
            span = obs.spans.start("log_ship", "copier_catchup", self.site.site_id)
        try:
            yield from self._log_ship_inner()
        finally:
            if span is not None:
                obs.spans.finish(span)
            self._ship_running = False
        self._check_drained()

    def _log_ship_inner(self) -> typing.Generator:
        if not self._pending_items():
            self._check_drained()
            return
        wal = self.site.wal
        assert wal is not None
        # Anchor at what was durably reconstructible at restore — NOT the
        # current high commit, which writes seen since becoming
        # operational keep advancing past updates we still miss.
        after_commit = wal.restore_high_commit
        peer = yield from self._find_ship_peer()
        if peer is None:
            self._start_item_copy(self._pending_items())
            return
        cursor = 0
        versions = None
        while True:
            request = ShipRequest(
                requester=self.site.site_id,
                after_commit=after_commit,
                cursor_lsn=cursor,
                batch=self.config.log_ship_batch,
            )
            try:
                reply = yield self.site.rpc.call(
                    peer,
                    "wal.ship",
                    request,
                    timeout=self.config.recovery_probe_timeout,
                )
            except NetworkError:
                self._start_item_copy(self._pending_items())
                return
            if not reply.serving:
                self._start_item_copy(self._pending_items())
                return
            if reply.truncated:
                # The peer dropped records we would need: the stream
                # would silently skip updates. Per-item copy is always
                # complete, so hand everything over (§3.2 fallback).
                self.stats.ship_fallback_truncated += 1
                self._start_item_copy(self._pending_items())
                return
            self.stats.ship_batches += 1
            self.stats.records_shipped += len(reply.records)
            self.stats.ship_bytes += reply.wire_size
            if reply.records:
                yield from self._apply_ship_batch(reply.records)
            cursor = reply.next_cursor
            self._check_drained()
            if reply.done:
                versions = reply.versions
                break
        if versions:
            yield from self._validate_with_versions(versions)
        leftovers = self._pending_items()
        if leftovers:
            # Items the stream could not cover: not hosted/readable at
            # the peer, or shipped only as non-current versions.
            self.stats.ship_fallback_items += len(leftovers)
            self._start_item_copy(leftovers)
        else:
            self._check_drained()

    def _find_ship_peer(self) -> typing.Generator:
        """Probe peers (deterministic order) for one operational server."""
        for site_id in sorted(self.tm.catalog.site_ids):
            if site_id == self.site.site_id:
                continue
            try:
                operational, _session = yield self.site.rpc.call(
                    site_id,
                    "recovery.probe",
                    None,
                    timeout=self.config.recovery_probe_timeout,
                )
            except NetworkError:
                continue
            if operational:
                return site_id
        return None

    def _apply_ship_batch(self, records: tuple[ShipRecord, ...]) -> typing.Generator:
        """Install one shipped page as a single copier-kind transaction.

        Only ``current`` records may be applied with a mark-clearing
        write: an intermediate version is still stale data and clearing
        its mark would expose a non-1SR read. Within the page, keep the
        highest current version per item.
        """
        best: dict[str, ShipRecord] = {}
        for rec in records:
            if not rec.current or not self.site.copies.has(rec.item):
                continue
            prev = best.get(rec.item)
            if prev is None or rec.version > prev.version:
                best[rec.item] = rec
        todo = [best[item] for item in sorted(best)]
        if not todo:
            return
        for _attempt in range(self.max_attempts):
            try:
                applied = yield from self.tm.run(
                    self._ship_apply_program(todo), kind=TxnKind.COPIER
                )
            except TransactionAborted:
                self.stats.copier_aborts += 1
                yield self.kernel.timeout(self.config.copier_retry_delay)
                continue
            self.stats.ship_applied += applied
            return

    def _ship_apply_program(self, records: list[ShipRecord]):
        service = self

        def program(ctx: "TxnContext") -> typing.Generator:
            home = ctx.tm.site_id
            applied = 0
            for rec in records:
                if not service.site.copies.has(rec.item):
                    continue
                local_value, local_version = yield from ctx.dm_read(
                    home, rec.item, peek_unreadable=True
                )
                if local_version > rec.version:
                    continue  # a user write already carried us past this
                value = local_value if local_version == rec.version else rec.value
                yield from ctx.dm_write(
                    home,
                    rec.item,
                    value,
                    version_override=rec.version,  # type: ignore[arg-type]
                    applied_sites=(home,),
                )
                applied += 1
            return applied

        return program

    def _validate_with_versions(self, versions: dict) -> typing.Generator:
        """Clear marks of items whose local version matches the peer's.

        The peer vouched for its current readable versions: a local
        unreadable copy carrying exactly that version missed nothing, so
        the mark can be cleared without moving data (the §5 version
        optimisation, batched)."""
        marked = [item for item in self._pending_items() if item in versions]
        batch = max(1, self.config.log_ship_batch)
        for start in range(0, len(marked), batch):
            chunk = marked[start : start + batch]
            for _attempt in range(self.max_attempts):
                try:
                    cleared = yield from self.tm.run(
                        self._ship_validate_program(chunk, versions),
                        kind=TxnKind.COPIER,
                    )
                except TransactionAborted:
                    self.stats.copier_aborts += 1
                    yield self.kernel.timeout(self.config.copier_retry_delay)
                    continue
                self.stats.ship_validated += cleared
                break

    def _ship_validate_program(self, items: list[str], versions: dict):
        service = self

        def program(ctx: "TxnContext") -> typing.Generator:
            home = ctx.tm.site_id
            cleared = 0
            for item in items:
                copies = service.site.copies
                if not copies.has(item) or not copies.get(item).unreadable:
                    continue
                local_value, local_version = yield from ctx.dm_read(
                    home, item, peek_unreadable=True
                )
                if local_version != versions[item]:
                    continue
                yield from ctx.dm_write(
                    home,
                    item,
                    local_value,
                    version_override=local_version,  # type: ignore[arg-type]
                    applied_sites=(home,),
                )
                cleared += 1
            return cleared

        return program

    def _check_drained(self) -> None:
        unreadable = [
            item for item in self.site.copies.unreadable_items() if not is_ns_item(item)
        ]
        # Missing-list drain curve: one point per completed refresh gives
        # the reporter the unreadable-count-over-time trajectory.
        self.site.obs.registry.series(
            "recovery.unreadable", self.site.site_id
        ).append(self.kernel.now, float(len(unreadable)))
        if not unreadable and self.drained_at is None:
            self.drained_at = self.kernel.now

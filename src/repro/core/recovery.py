"""The site recovery procedure (§3.4).

Steps, exactly as the paper numbers them:

1. The rebooted site turns on its TM and DM with ``as[k] = 0`` — done by
   the site/cluster lifecycle before this manager runs; only control
   transactions are processable.
2. Mark the (possibly) out-of-date local copies unreadable, via the
   configured identification policy (conservative mark-all, fail-locks,
   or missing lists — §5).
3. Initiate a type-1 control transaction announcing the freshly chosen
   session number.
4. If it commits, load the new session number into ``as[k]``: the site
   is now operational. If it failed because *another* site crashed
   meanwhile, initiate a type-2 control transaction excluding that site
   and retry step 3 — the procedure survives any number of concurrent
   failures as long as one operational site remains.

After step 4 the recovery manager kicks the eager copiers; user
transactions are already being accepted — catching the data up proceeds
concurrently, which is the paper's headline latency win (experiment E2).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.config import RowaaConfig
from repro.core.control import make_type1_program, make_type2_program
from repro.core.copier import CopierService
from repro.core.identify import IdentificationPolicy
from repro.core.session import SessionManager
from repro.errors import NetworkError, RpcTimeout, TransactionAborted
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.site.cluster import Cluster
from repro.site.site import Site
from repro.storage.catalog import Catalog
from repro.txn.manager import TransactionManager
from repro.txn.transaction import TxnKind


@dataclasses.dataclass
class RecoveryRecord:
    """Timeline of one recovery attempt, for the E2/E6 metrics."""

    site_id: int
    power_on_at: float
    marked_items: int = 0
    identified_at: float | None = None
    operational_at: float | None = None
    type1_attempts: int = 0
    type2_runs: int = 0
    succeeded: bool = False
    session_number: int | None = None

    @property
    def time_to_operational(self) -> float | None:
        if self.operational_at is None:
            return None
        return self.operational_at - self.power_on_at


class RecoveryManager:
    """Runs the §3.4 procedure for one site."""

    def __init__(
        self,
        kernel: Kernel,
        site: Site,
        tm: TransactionManager,
        session: SessionManager,
        catalog: Catalog,
        cluster: Cluster,
        copiers: CopierService,
        identify: IdentificationPolicy,
        config: RowaaConfig,
        register_probe: bool = True,
    ) -> None:
        self.kernel = kernel
        self.site = site
        self.tm = tm
        self.session = session
        self.catalog = catalog
        self.cluster = cluster
        self.copiers = copiers
        self.identify = identify
        self.config = config
        self.records: list[RecoveryRecord] = []
        self._running: Process | None = None
        if register_probe:
            site.rpc.register("recovery.probe", self._handle_probe)

    @property
    def rpc(self):
        return self.site.rpc

    def _handle_probe(self, payload: object, src: int) -> tuple[bool, int]:
        # A frozen site (partition mode) must not advertise itself as a
        # recovery source: its nominal vector and data may be stale, and
        # a recovering peer bootstrapping from it would resurrect the
        # pre-partition world (found by the partition soak).
        operational = self.site.is_operational and not self.site.user_frozen
        return (operational, self.session.current)

    def operational_peers(self) -> list[int]:
        """Other sites believed up, most recently confirmed first.

        A hint list only — every use double-checks by actually talking to
        the site.
        """
        detector = self.cluster.detector(self.site.site_id)
        me = self.site.site_id
        believed = [s for s in self.catalog.site_ids if s != me and detector.believes_up(s)]
        others = [
            s
            for s in self.catalog.site_ids
            if s != me and not detector.believes_up(s)
        ]
        return believed + others

    # -- entry point ------------------------------------------------------------

    def start(self) -> Process:
        """Spawn the recovery procedure (site must be RECOVERING).

        Idempotent while a recovery is already in flight: callers (the
        power-on path and the partition-merge service) may both ask.
        """
        if self._running is not None and self._running.is_alive:
            return self._running
        self._running = self.site.spawn(self._recover(), name="recovery")
        return self._running

    def _recover(self) -> typing.Generator:
        obs = self.site.obs
        span = None
        if obs.spans_on:
            span = obs.spans.start("recovery", "recovery", self.site.site_id)
        try:
            record = yield from self._recover_inner(span)
        finally:
            if span is not None:
                obs.spans.finish(span)
        return record

    def _recover_inner(self, span=None) -> typing.Generator:
        parent_span = span.span_id if span is not None else None
        record = RecoveryRecord(site_id=self.site.site_id, power_on_at=self.kernel.now)
        self.records.append(record)
        self.copiers.reset_drain_marker()

        # Step 2 (overridable): make the local database safe to rejoin.
        yield from self._prepare_database(record)

        # Steps 3–4: claim nominally up, retrying through further crashes.
        # The loop never gives up while the site stays RECOVERING — the
        # paper's procedure succeeds whenever one operational site exists,
        # and until then there is nothing to do but retry. Backoff widens
        # after `recovery_max_attempts` consecutive failures.
        attempt = 0
        while True:
            attempt += 1
            record.type1_attempts += 1
            if attempt > self.config.recovery_max_attempts:
                yield self.kernel.timeout(self.config.recovery_retry_delay * 5)
            source = yield from self._find_operational_site()
            if source is None:
                yield self.kernel.timeout(self.config.recovery_retry_delay)
                continue
            new_session = self.session.choose_next()
            observed: dict[int, int] = {}
            program = make_type1_program(
                self.catalog.site_ids, self.site.site_id, source, new_session,
                observed=observed,
            )
            try:
                yield from self.tm.run(
                    program, kind=TxnKind.CONTROL, parent_span=parent_span
                )
            except TransactionAborted as exc:
                yield from self._handle_type1_failure(
                    exc, source, observed, record, parent_span
                )
                continue
            # Step 4: committed — the site is nominally up. Before
            # loading as[k] (no user transaction can be served until
            # then), precise identification policies run a DELTA pass:
            # writes that committed between the step-2 collection and
            # the type-1's commit recorded misses the first pass could
            # not have seen. Writers serialized *after* the type-1 see
            # the new session and either reach this site or abort on
            # its still-zero as[k], so the delta pass closes the window.
            if getattr(self.identify, "needs_post_announce_pass", False):
                # Let in-flight commit-applications (and the tracker
                # entries they create) land before the delta collection —
                # see RowaaConfig.post_announce_settle.
                yield self.kernel.timeout(self.config.post_announce_settle)
                delta_items = list((yield from self.identify.collect_stale(self)))
                newly_marked = 0
                for item in delta_items:
                    if not self.site.copies.get(item).unreadable:
                        newly_marked += 1
                    self.site.copies.mark_unreadable(item)
                record.marked_items += newly_marked
                if self.site.wal is not None:
                    self.site.wal.flush()
                yield from self.identify.after_marked(self, delta_items)
            self.session.activate(new_session, self.kernel.now)
            self.site.become_operational()
            self.cluster.notify_recovered(self.site.site_id)
            record.operational_at = self.kernel.now
            record.succeeded = True
            record.session_number = new_session
            registry = self.site.obs.registry
            crash_at = self.site.last_crash_time
            registry.histogram("recovery.downtime", self.site.site_id).observe(
                self.kernel.now - (crash_at if crash_at is not None else record.power_on_at)
            )
            registry.histogram(
                "recovery.time_to_operational", self.site.site_id
            ).observe(self.kernel.now - record.power_on_at)
            self.copiers.start_eager()
            return record

    def _prepare_database(self, record: RecoveryRecord) -> typing.Generator:
        """§3.4 step 2: identify and mark out-of-date copies.

        Overridden by the spooler baseline, which instead replays missed
        updates *before* rejoining (the approach the paper argues
        against).
        """
        stale_items = list((yield from self.identify.collect_stale(self)))
        for item in stale_items:
            self.site.copies.mark_unreadable(item)
        if self.site.wal is not None:
            # The marks must be durable before after_marked() destroys
            # the remote staleness knowledge (fail-locks/missing lists).
            self.site.wal.flush()
        record.marked_items = len(stale_items)
        record.identified_at = self.kernel.now
        yield from self.identify.after_marked(self, stale_items)
        return None

    def _handle_type1_failure(
        self,
        exc: TransactionAborted,
        source: int,
        observed: dict[int, int],
        record: RecoveryRecord,
        parent_span: int | None = None,
    ) -> typing.Generator:
        """§3.4 step 4's failure path: exclude a newly crashed site.

        An RPC timeout alone is *not* crash evidence — it may be a long
        lock wait at a live site, and type 2 requires being "sure that
        the sites being claimed down are actually down" (§3.3). The
        failure detector (sound under crash-only failures) is the
        arbiter; a timeout against a site it still believes up is
        retried, not excluded. The claim is bound to the incarnation the
        aborted type 1 observed, so a concurrent re-recovery of the
        crashed site is never delisted.
        """
        cause = exc.__cause__
        detector = self.cluster.detector(self.site.site_id)
        if (
            isinstance(cause, RpcTimeout)
            and cause.dst != self.site.site_id
            and not detector.believes_up(cause.dst)
            and observed.get(cause.dst, 0) != 0
        ):
            crashed = cause.dst
            record.type2_runs += 1
            program = make_type2_program(
                self.catalog.site_ids,
                {crashed: observed[crashed]},
                source if source != crashed else self.site.site_id,
            )
            try:
                yield from self.tm.run(
                    program, kind=TxnKind.CONTROL, parent_span=parent_span
                )
            except TransactionAborted:
                pass  # another site may exclude it; we retry regardless
        yield self.kernel.timeout(self.config.recovery_retry_delay)
        return None

    def _find_operational_site(self) -> typing.Generator:
        """Probe peers until one confirms it is operational."""
        for site_id in self.operational_peers():
            try:
                operational, _session = yield self.rpc.call(
                    site_id, "recovery.probe", None,
                    timeout=self.config.recovery_probe_timeout,
                )
            except NetworkError:
                continue
            if operational:
                return site_id
        return None

"""Fail-locks (§5, citing Bhargava's working paper [5]).

A fail-lock is "the notion that the data item is being updated when a
site is down": when a committed write skips site *k* (because *k* was
nominally down), every site that applied the write records the pair
``(item, k)``. A recovering site *k* collects the fail-locks set during
its failure from the operational sites, marks exactly those copies
unreadable, and clears the collected entries.

Design decision (documented in DESIGN.md): our fail-lock tables live in
*stable* storage. The cited working paper is not explicit; volatility
would lose entries when a tracker site itself crashes, silently
unmarking genuinely stale copies under multiple failures. Stability plus
the conservative residency rule below restores soundness:

    mark X unreadable iff a collected fail-lock names (X, me), **or**
    some other resident site of X is currently not operational (its
    table — possibly the only one naming us — is unreachable).
"""

from __future__ import annotations

import typing

from repro.core.nominal import is_ns_item
from repro.errors import NetworkError
from repro.site.site import Site

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.recovery import RecoveryManager

_STABLE_KEY = "faillocks"

CollectRequest = int  # the recovering site's id
ClearRequest = tuple[int, tuple[str, ...]]  # (site, items whose entries to drop)


class FailLockPolicy:
    """Tracker + recovery policy for the fail-lock mechanism."""

    name = "fail-locks"
    needs_post_announce_pass = True

    def __init__(self, site: Site) -> None:
        self.site = site
        self._reached: list[int] = []
        site.rpc.register("faillock.collect", self._handle_collect)
        site.rpc.register("faillock.clear", self._handle_clear)

    # -- stable table access ------------------------------------------------

    def _table(self) -> set[tuple[str, int]]:
        table = self.site.stable.get(_STABLE_KEY)
        if table is None:
            table = set()
            self.site.stable.put(_STABLE_KEY, table)
        return table  # type: ignore[return-value]

    def entries(self) -> set[tuple[str, int]]:
        """Current fail-locks at this site (copies elsewhere known stale)."""
        return set(self._table())

    # -- tracker half -------------------------------------------------------------

    def on_commit_write(
        self,
        item: str,
        applied_sites: tuple[int, ...],
        missed_sites: tuple[int, ...],
        value: object = None,
        version: object = None,
    ) -> None:
        table = self._table()
        for missed in missed_sites:
            table.add((item, missed))
        # The copies just written are current again; stale markers about
        # them at this site are obsolete.
        for applied in applied_sites:
            table.discard((item, applied))
        self.site.stable.put(_STABLE_KEY, table)

    # -- RPC handlers (tracker side) ---------------------------------------------

    def _handle_collect(self, recovering: CollectRequest, src: int) -> list[str]:
        return sorted(item for item, site_id in self._table() if site_id == recovering)

    def _handle_clear(self, request: ClearRequest, src: int) -> bool:
        recovering, items = request
        table = self._table()
        for item in items:
            table.discard((item, recovering))
        self.site.stable.put(_STABLE_KEY, table)
        return True

    # -- recovery half ----------------------------------------------------------------

    def collect_stale(self, manager: "RecoveryManager") -> typing.Generator:
        me = self.site.site_id
        stale: set[str] = set()
        self._reached: list[int] = []
        for site_id in manager.operational_peers():
            try:
                items = yield manager.rpc.call(
                    site_id,
                    "faillock.collect",
                    me,
                    timeout=manager.config.recovery_probe_timeout,
                )
            except NetworkError:
                continue
            self._reached.append(site_id)
            stale.update(items)  # type: ignore[arg-type]

        # Conservative residency rule: a resident site we could not ask
        # might hold the only fail-lock naming us.
        reached_set = set(self._reached) | {me}
        for item in self.site.copies.items():
            if is_ns_item(item):
                continue
            for resident in manager.catalog.sites_of(item):
                if resident not in reached_set:
                    stale.add(item)
                    break
        # Sorted: the stale list drives marking and copier scheduling
        # order, so set-hash order here would be run-to-run nondeterminism.
        return sorted(item for item in stale if self.site.copies.has(item))

    def after_marked(
        self, manager: "RecoveryManager", items: typing.Sequence[str]
    ) -> typing.Generator:
        """Take responsibility: clear collected entries once marks are on.

        Fire and forget — a lost clear only costs a future spurious mark.
        """
        yield from ()
        me = self.site.site_id
        for site_id in self._reached:
            manager.rpc.call(site_id, "faillock.clear", (me, tuple(sorted(items))))
        return None

"""The ROWAA interpretation of logical operations (§3.2).

Every user transaction implicitly reads its home site's copy of the
nominal session vector before any other operation; that view is used
throughout:

    READ(X)  = ∨ { read(x_k)  : x_k ∈ X and ns_i[k] ≠ 0 }
    WRITE(X) = ∧ { write(x_k) : x_k ∈ X and ns_i[k] ≠ 0 }

Each physical request carries ``ns_i[k]``; the target DM rejects on
mismatch with ``as[k]`` (implemented in
:class:`~repro.txn.data_manager.DataManager`). A read that hits an
unreadable copy either *redirects* to another copy or *waits* for the
copier, per configuration — the paper leaves this choice open.
"""

from __future__ import annotations

import typing

from repro.core.config import RowaaConfig
from repro.core.nominal import ns_item
from repro.errors import (
    CopyUnreadable,
    NetworkError,
    TotalFailure,
    TransactionError,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.txn.context import TxnContext


class RowaaStrategy:
    """Read-one/write-all-available with nominal session numbers."""

    name = "rowaa"

    def __init__(self, config: RowaaConfig | None = None) -> None:
        self.config = config if config is not None else RowaaConfig()

    # -- the implicit begin read (§3.2) ---------------------------------------

    def begin(self, ctx: "TxnContext") -> typing.Generator:
        """Read the local nominal session vector into ``ctx.view``.

        These are ordinary S-locked reads of the NS copies at the home
        site (so they conflict with control transactions, which is what
        Theorem 3's proof leans on), but they are local: no network
        round trips, which is why the paper calls the overhead
        negligible (§6).

        With ``batch_ns_read`` (the default) the whole vector is
        materialised by one batched request — one snapshot per
        transaction rather than one physical operation per site. The
        locks taken and the history recorded are identical to the
        per-site sequence below.
        """
        home = ctx.tm.site_id
        site_ids = ctx.tm.catalog.site_ids
        if self.config.batch_ns_read:
            pairs = yield from ctx.dm_read_batch(
                home, [ns_item(site_id) for site_id in site_ids]
            )
            for site_id, (value, _version) in zip(site_ids, pairs):
                ctx.view[site_id] = int(value)
            return None
        for site_id in site_ids:
            value, _version = yield from ctx.dm_read(home, ns_item(site_id))
            ctx.view[site_id] = int(value)  # type: ignore[call-overload]
        return None

    # -- logical operations ----------------------------------------------------

    def _read_candidates(self, ctx: "TxnContext", item: str) -> list[int]:
        home = ctx.tm.site_id
        sites = [
            site for site in ctx.tm.catalog.sites_of(item) if ctx.view.get(site, 0) != 0
        ]
        preference = self.config.read_preference
        if preference == "local":
            return sorted(sites, key=lambda site: (site != home, site))
        if preference == "primary":
            return sorted(sites)
        if preference == "random":
            rng = ctx.tm.kernel.rng.stream("rowaa.read")
            rng.shuffle(sites)
            return sites
        raise ValueError(f"unknown read_preference {preference!r}")

    def read(self, ctx: "TxnContext", item: str) -> typing.Generator:
        candidates = self._read_candidates(ctx, item)
        if not candidates:
            raise TotalFailure(item)
        last_error: Exception | None = None
        for site in candidates[: ctx.tm.config.max_read_attempts]:
            try:
                value, _version = yield from ctx.dm_read(
                    site, item, expected=ctx.view[site]
                )
                return value
            except CopyUnreadable as exc:
                last_error = exc
                if self.config.unreadable_policy == "wait":
                    result = yield from self._wait_for_copier(ctx, site, item)
                    if result is not None:
                        return result[0]
            except (NetworkError, TransactionError) as exc:
                last_error = exc
        assert last_error is not None
        raise last_error

    def _wait_for_copier(
        self, ctx: "TxnContext", site: int, item: str
    ) -> typing.Generator:
        """Retry the same copy while the (triggered) copier renovates it.

        Returns ``(value,)`` on success or ``None`` to fall through to
        the next candidate copy.
        """
        for _attempt in range(self.config.unreadable_wait_attempts):
            yield ctx.tm.kernel.timeout(self.config.unreadable_wait)
            try:
                value, _version = yield from ctx.dm_read(
                    site, item, expected=ctx.view[site]
                )
                return (value,)
            except CopyUnreadable:
                continue
            except (NetworkError, TransactionError):
                return None
        return None

    def write(self, ctx: "TxnContext", item: str, value: object) -> typing.Generator:
        resident = ctx.tm.catalog.sites_of(item)
        targets = [
            (site, ctx.view[site]) for site in resident if ctx.view.get(site, 0) != 0
        ]
        if not targets:
            raise TotalFailure(item)
        missed = tuple(site for site in resident if ctx.view.get(site, 0) == 0)
        yield from ctx.dm_write_all(targets, item, value, missed_sites=missed)
        return None

"""The fully assembled ROWAA system (paper protocol, end to end).

:class:`RowaaSystem` extends the generic
:class:`~repro.system.DatabaseSystem` with everything §3 adds:

* nominal session numbers as fully replicated items (``NS[1..n]``);
* per-site session managers (``as[k]`` + stable last-used number);
* the ROWAA strategy as the logical-operation interpreter;
* per-site copier services (eager/demand per configuration);
* per-site control services (automatic type-2 on failure detection);
* per-site recovery managers running the §3.4 procedure, started
  automatically by :meth:`power_on`;
* the chosen §5 identification policy wired into every DM as its stale
  tracker.
"""

from __future__ import annotations

import typing

from repro.core.config import RowaaConfig
from repro.core.control import ControlService
from repro.core.copier import CopierService
from repro.core.identify import IdentificationPolicy, MarkAllPolicy
from repro.core.faillock import FailLockPolicy
from repro.core.missinglist import MissingListPolicy
from repro.core.nominal import ns_item
from repro.core.recovery import RecoveryManager, RecoveryRecord
from repro.core.rowaa import RowaaStrategy
from repro.core.session import SessionManager
from repro.errors import InvalidStateTransition

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.partition_merge import MajorityPartitionService, PartitionConfig
    from repro.obs import Observability
    from repro.wal import WalConfig
from repro.net.latency import LatencyModel
from repro.obs.instrument import instrument_rowaa
from repro.storage.copies import Version
from repro.txn.transaction import next_commit_seq
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.storage.catalog import Catalog
from repro.system import DatabaseSystem
from repro.txn.config import TxnConfig

INITIAL_SESSION = 1


class RowaaSystem(DatabaseSystem):
    """A replicated DDBS running the paper's recovery protocol."""

    def __init__(
        self,
        kernel: Kernel,
        n_sites: int,
        items: dict[str, object],
        catalog: Catalog | None = None,
        config: TxnConfig | None = None,
        rowaa_config: RowaaConfig | None = None,
        latency: LatencyModel | None = None,
        detection_delay: float = 5.0,
        loss_probability: float = 0.0,
        concurrency: str = "2pl",
        partition_mode: bool = False,
        partition_config: "PartitionConfig | None" = None,
        obs: "Observability | None" = None,
        wal_config: "WalConfig | None" = None,
    ) -> None:
        self.rowaa_config = rowaa_config if rowaa_config is not None else RowaaConfig()

        site_ids = list(range(1, n_sites + 1))
        all_items = dict(items)
        for site_id in site_ids:
            name = ns_item(site_id)
            if name in all_items:
                raise ValueError(f"item name {name!r} is reserved for session numbers")
            all_items[name] = INITIAL_SESSION

        if catalog is not None:
            for site_id in site_ids:
                catalog.add_item(ns_item(site_id), site_ids)  # NS fully replicated
        else:
            catalog = Catalog(site_ids)
            for item in items:
                catalog.add_item(item, site_ids)
            for site_id in site_ids:
                catalog.add_item(ns_item(site_id), site_ids)

        super().__init__(
            kernel,
            n_sites,
            all_items,
            strategy_factory=lambda _system: RowaaStrategy(self.rowaa_config),
            catalog=catalog,
            config=config,
            latency=latency,
            detection_delay=detection_delay,
            loss_probability=loss_probability,
            concurrency=concurrency,
            obs=obs,
            wal_config=wal_config,
        )

        self.sessions: dict[int, SessionManager] = {}
        self.copiers: dict[int, CopierService] = {}
        self.controls: dict[int, ControlService] = {}
        self.recoveries: dict[int, RecoveryManager] = {}
        self.policies: dict[int, IdentificationPolicy] = {}

        for site_id in self.cluster.site_ids:
            site = self.cluster.site(site_id)
            dm = self.dms[site_id]
            tm = self.tms[site_id]
            session = SessionManager(
                site, dm, modulus=self.rowaa_config.session_modulus
            )
            policy = self._make_policy(site)
            dm.stale_tracker = policy
            copiers = CopierService(kernel, site, dm, tm, self.rowaa_config)
            control = ControlService(
                site, tm, self.cluster,
                verify_ping_timeout=self.rowaa_config.type2_verify_ping,
            )
            recovery = RecoveryManager(
                kernel,
                site,
                tm,
                session,
                self.catalog,
                self.cluster,
                copiers,
                policy,
                self.rowaa_config,
            )
            self.sessions[site_id] = session
            self.policies[site_id] = policy
            self.copiers[site_id] = copiers
            self.controls[site_id] = control
            self.recoveries[site_id] = recovery

        self.cluster.recovered_hooks.append(self._on_any_recovery)

        # Optional §6 extension: partition tolerance + merge (see
        # repro.core.partition_merge). Off by default — the paper's
        # model is crash-only.
        self.partition_services: dict[int, "MajorityPartitionService"] = {}
        if partition_mode:
            from repro.core.partition_merge import (
                MajorityPartitionService,
                PartitionConfig,
            )

            p_config = partition_config or PartitionConfig()
            for site_id in self.cluster.site_ids:
                self.partition_services[site_id] = MajorityPartitionService(
                    self, self.cluster.site(site_id), p_config
                )

        instrument_rowaa(self)

    def _on_any_recovery(self, recovered_site: int) -> None:
        # A fresh source of readable copies may unblock copiers that hit
        # "totally failed" earlier — re-kick every other site's service.
        for site_id, service in self.copiers.items():
            if site_id != recovered_site:
                service.retry_unreadable()

    def _make_policy(self, site) -> IdentificationPolicy:
        mode = self.rowaa_config.identify_mode
        if mode == "mark-all":
            return MarkAllPolicy()
        if mode == "fail-locks":
            return FailLockPolicy(site)
        if mode == "missing-lists":
            return MissingListPolicy(site)
        raise ValueError(f"unknown identify_mode {mode!r}")

    # -- lifecycle -------------------------------------------------------------

    def boot(self) -> None:
        """Cold boot: every site starts operational in session 1."""
        super().boot()
        now = self.kernel.now
        for site_id, session in self.sessions.items():
            first = session.choose_next()
            assert first == INITIAL_SESSION
            session.activate(first, now)

    def power_on(self, site_id: int) -> Process:
        """Reboot a crashed site and run the §3.4 recovery procedure.

        Returns the recovery process; its value is the
        :class:`~repro.core.recovery.RecoveryRecord`.
        """
        self.cluster.power_on_site(site_id)
        return self.recoveries[site_id].start()

    def cold_start(self, site_id: int) -> None:
        """Out-of-band bootstrap from *total* failure (operator action).

        The paper's procedure requires one operational site; when every
        site is down or stuck recovering, an operator designates the
        site holding the most recent committed state (normally the last
        site to fail) and cold-starts it: the site trusts its own stable
        copies (clearing any unreadable marks), unilaterally installs a
        fresh session with every other site nominally down, and becomes
        operational. The remaining sites then rejoin through the normal
        §3.4 procedure.

        **Data-loss warning:** committed updates present only at other
        (still down) sites are silently lost — exactly like promoting a
        stale replica in any primary-copy system. Choosing the right
        site is the operator's responsibility. History checks across a
        cold start treat the trusted state as a fresh initial state.
        """
        if self.cluster.operational_sites():
            raise InvalidStateTransition(
                "cold start is only legal under total failure "
                f"(operational sites: {self.cluster.operational_sites()})"
            )
        site = self.cluster.site(site_id)
        if site.is_down:
            self.cluster.power_on_site(site_id)
        session = self.sessions[site_id]
        new_session = session.choose_next()
        stamp = Version(self.kernel.now, next_commit_seq(), 0)
        for other in self.cluster.site_ids:
            value = new_session if other == site_id else 0
            site.copies.apply_write(ns_item(other), value, stamp)
        for item in list(site.copies.items()):
            site.copies.clear_unreadable(item)
        if site.wal is not None:
            site.wal.flush()
        session.activate(new_session, self.kernel.now)
        site.become_operational()
        self.cluster.notify_recovered(site_id)

    # -- introspection helpers (tests, experiments, examples) ---------------------

    def nominal_view(self, site_id: int) -> dict[int, int]:
        """Site ``site_id``'s local copies of the nominal session vector."""
        copies = self.cluster.site(site_id).copies
        return {
            other: int(copies.get(ns_item(other)).value)  # type: ignore[call-overload]
            for other in self.cluster.site_ids
        }

    def recovery_records(self) -> list[RecoveryRecord]:
        """All recovery records across sites, in start order."""
        records = [
            record for manager in self.recoveries.values() for record in manager.records
        ]
        return sorted(records, key=lambda record: record.power_on_at)

    def unreadable_counts(self) -> dict[int, int]:
        """Per-site count of unreadable (non-NS) copies."""
        from repro.core.nominal import is_ns_item

        return {
            site_id: sum(
                1
                for item in self.cluster.site(site_id).copies.unreadable_items()
                if not is_ns_item(item)
            )
            for site_id in self.cluster.site_ids
        }

"""Nominal session numbers as replicated data items (§3.1).

``NS[k]`` is the session number of site *k* as perceived by the system.
Because they are "read very frequently (by user transactions) but only
updated occasionally (when sites fail and recover)", the paper assumes
full replication at all n sites; we follow that. The copies live in the
ordinary per-site :class:`~repro.storage.copies.CopyStore` under the
reserved names ``NS[1]..NS[n]``, so all reads and writes of nominal
session numbers go through the normal DM path — locks, session checks
where applicable, 2PC — exactly as the paper requires ("under
concurrency control like other data items").
"""

from __future__ import annotations

_PREFIX = "NS["
_SUFFIX = "]"


def ns_item(site_id: int) -> str:
    """The logical item name for site ``site_id``'s nominal session number."""
    return f"{_PREFIX}{site_id}{_SUFFIX}"


def is_ns_item(item: str) -> bool:
    """True for nominal-session-number items (used to scope §4 checks)."""
    return item.startswith(_PREFIX) and item.endswith(_SUFFIX)


def ns_site(item: str) -> int:
    """Inverse of :func:`ns_item`; raises ValueError on other items."""
    if not is_ns_item(item):
        raise ValueError(f"{item!r} is not a nominal session number item")
    return int(item[len(_PREFIX) : -len(_SUFFIX)])


def db_item_filter(item: str) -> bool:
    """Item filter selecting the user database (DB, excluding NS)."""
    return not is_ns_item(item)

"""Configuration of the ROWAA protocol layer."""

from __future__ import annotations

import dataclasses
import typing

CopierMode = typing.Literal["eager", "demand", "both", "none"]
CatchupMode = typing.Literal["item_copy", "log_ship"]
IdentifyMode = typing.Literal["mark-all", "fail-locks", "missing-lists"]
UnreadablePolicy = typing.Literal["redirect", "wait"]
ReadPreference = typing.Literal["local", "primary", "random"]


@dataclasses.dataclass
class RowaaConfig:
    """Knobs of the recovery protocol (§3, §5).

    Attributes
    ----------
    copier_mode:
        ``"eager"`` — the recovery procedure enqueues a copier for every
        unreadable copy as soon as the site is operational; ``"demand"``
        — copiers are triggered by reads hitting unreadable copies;
        ``"both"`` — eager plus demand; ``"none"`` — rely on user writes
        only (legal but slow to converge; useful as an ablation).
    copier_concurrency:
        Max copiers in flight per recovering site (eager mode).
    copier_retry_delay:
        Backoff before retrying a failed copier transaction.
    identify_mode:
        How recovery step 2 decides which copies are out of date:
        conservative ``"mark-all"`` (§3.4) or the §5 refinements.
    unreadable_policy:
        What a ROWAA read does when it hits an unreadable copy:
        ``"redirect"`` to another copy or ``"wait"`` for the copier and
        retry locally (§3.2 leaves this to the implementation).
    unreadable_wait:
        Retry delay for the ``"wait"`` policy.
    recovery_probe_timeout:
        RPC timeout when the recovering site probes for operational peers.
    recovery_retry_delay:
        Backoff between recovery attempts (e.g. after a type-1 abort).
    recovery_max_attempts:
        Give up (stay RECOVERING, raise) after this many type-1 attempts.
    version_skip:
        Enable the §5 optimisation: a copier first compares versions and
        skips the data transfer when the local copy is already current.
    read_preference:
        Which nominally-up copy READ(X) tries first: ``"local"`` (home
        site if resident — the paper's implied choice, zero network
        cost), ``"primary"`` (lowest site id — concentrates read locks),
        or ``"random"`` (load balancing across replicas).
    session_modulus:
        Optional session-number recycling bound (§3.1); None disables.
    """

    copier_mode: CopierMode = "both"
    copier_concurrency: int = 4
    copier_retry_delay: float = 10.0
    catchup_mode: CatchupMode = "item_copy"
    """How eager catch-up brings unreadable copies current:
    ``"item_copy"`` — one copier transaction per item reading a remote
    source copy (§3.2, the paper's scheme); ``"log_ship"`` — stream the
    missed redo-log suffix from one nominally-up peer in batches,
    falling back to per-item copy for anything the stream cannot cover
    (peer truncated the needed records, items not hosted at the peer)."""
    log_ship_batch: int = 16
    """Max log records (and validate items) per log-shipping page."""
    identify_mode: IdentifyMode = "mark-all"
    unreadable_policy: UnreadablePolicy = "redirect"
    unreadable_wait: float = 5.0
    unreadable_wait_attempts: int = 10
    recovery_probe_timeout: float = 20.0
    recovery_retry_delay: float = 10.0
    recovery_max_attempts: int = 25
    version_skip: bool = True
    read_preference: ReadPreference = "local"
    session_modulus: int | None = None
    batch_ns_read: bool = True
    """Materialise the implicit-begin ``NS[*]`` snapshot with one batched
    local request instead of one physical read per site. Semantically
    identical (same S locks in the same order, same session/unreadable
    checks, same history records) but O(1) round trips per transaction
    instead of O(n). Disable to reproduce the per-item read sequence of
    the unbatched protocol."""
    type2_verify_ping: float = 8.0
    """Timeout of the in-transaction liveness re-check a type-2 performs
    before each claim (abandons the claim if the target answers)."""
    post_announce_settle: float = 3.0
    """Pause between the type-1 commit and the precise policies' delta
    collection pass: a writer serialized just before the type-1 may have
    its commit-applications (which create the fail-lock/ML entries) still
    in flight to the tracker sites. One network round suffices under
    order-preserving latency; the fully general fix is concurrency-
    controlled tracker access, which §5 itself prescribes ("Access to
    elements should be under concurrency control")."""

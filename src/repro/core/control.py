"""Control transactions (§3.3): the only writers of nominal session numbers.

* **Type 1** — "this site is nominally up". Initiated by the recovering
  site itself: reads an available copy of the nominal session vector,
  refreshes its own NS copies (acting as a copier for them), then writes
  the freshly chosen session number into ``ns_j[k]`` at every nominally
  up site *j* and into its own ``ns_k[k]``.
* **Type 2** — "these sites are nominally down". Initiated by any site
  that is sure the targets are down (sound under crash-only failures):
  writes 0 into all available copies of their nominal session numbers.

Both run through the ordinary TM/DM path — strict 2PL plus 2PC — as the
paper requires; their operations are *privileged* so recovering sites
can process them (§3.3) and so they are exempt from the session check
they themselves maintain.

:class:`ControlService` automates type-2 initiation off the failure
detector, retrying through conflicts and secondary crashes.
"""

from __future__ import annotations

import typing

from repro.core.nominal import ns_item
from repro.errors import NetworkError, TransactionAborted, TransactionError
from repro.txn.manager import TransactionManager
from repro.txn.transaction import TxnKind

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.site.cluster import Cluster
    from repro.site.site import Site
    from repro.txn.context import TxnContext


def _write_each_ordered(
    ctx: "TxnContext",
    targets: typing.Sequence[tuple[int, int | None]],
    item: str,
    value: object,
) -> typing.Generator:
    """Sequential writes in ascending site order.

    Control transactions from different initiators X-lock the same NS
    copies at several sites; parallel fan-out acquires those locks in
    arrival order, which under load produces distributed deadlock cycles
    among the initiators (observed as minutes-long exclusion livelock in
    the operations-dashboard scenario). Classical ordered lock
    acquisition removes the cycles among control transactions entirely;
    the extra sequential round trips are irrelevant at control-
    transaction frequency ("only necessary when sites fail or recover",
    §6).
    """
    for site_id, expected in sorted(targets):
        yield from ctx.dm_write(
            site_id, item, value, expected=expected, privileged=True
        )
    return None


def make_type1_program(
    site_ids: typing.Sequence[int],
    recovering_site: int,
    source_site: int,
    new_session: int,
    observed: dict[int, int] | None = None,
):
    """Build the type-1 control transaction program (§3.3, §3.4 step 3).

    Returns the nominal session vector it observed. ``observed``, if
    given, is filled in-place with that vector as soon as it is read —
    the recovery manager uses it to bind a follow-up type-2 claim to the
    right incarnation even when this transaction subsequently aborts
    (§3.4 step 4). The program must be rebuilt fresh for every retry so
    that the vector is re-read.
    """

    def program(ctx: "TxnContext") -> typing.Generator:
        vector: dict[int, int] = {}
        versions: dict[int, object] = {}
        for site_id in site_ids:
            value, version = yield from ctx.dm_read(
                source_site, ns_item(site_id), privileged=True
            )
            vector[site_id] = int(value)  # type: ignore[call-overload]
            versions[site_id] = version
            if observed is not None:
                observed[site_id] = vector[site_id]

        # Refresh our own copies of the other sites' nominal session
        # numbers. These writes carry the source versions: with respect
        # to NS[j], j != k, this transaction "acts as a copier" (§4).
        for site_id in site_ids:
            if site_id == recovering_site:
                continue
            yield from ctx.dm_write(
                recovering_site,
                ns_item(site_id),
                vector[site_id],
                privileged=True,
                version_override=versions[site_id],  # type: ignore[arg-type]
            )

        # Claim nominally up: write the new session number to every
        # nominally up site's copy of NS[k], and to our own.
        targets = [
            (site_id, None)
            for site_id in site_ids
            if vector.get(site_id, 0) != 0 and site_id != recovering_site
        ]
        targets.append((recovering_site, None))
        yield from _write_each_ordered(
            ctx, targets, ns_item(recovering_site), new_session
        )
        return vector

    return program


def make_type2_program(
    site_ids: typing.Sequence[int],
    claims: typing.Mapping[int, int],
    source_site: int,
    confirm_down: typing.Callable[["TxnContext", int], typing.Generator] | None = None,
):
    """Build the type-2 control transaction program (§3.3).

    ``claims`` maps each site to be declared down to the session number
    its *crashed incarnation* was running when the initiator obtained its
    crash evidence. The paper requires the initiator to be "sure that the
    sites being claimed down are actually down"; binding the claim to an
    incarnation makes that sure-ness robust against the race where the
    target completes a type-1 recovery *between* detection and this
    transaction's commit — in that case the locked vector read below
    shows a newer session number and the claim is skipped, never
    delisting a live incarnation (which would break the session-check
    argument behind Theorem 3).

    ``source_site`` is where the nominal session vector is read — "likely
    the local copy" for an operational initiator, but a recovering site
    excluding a newly crashed peer (§3.4 step 4) must read from an
    operational site because its own copies are stale.

    ``confirm_down``, if given, is a generator function
    ``(ctx, site) -> bool`` run *inside* the transaction right before
    each claim; a False result (the site answered — it is alive) skips
    that claim. This is the last line of defence for the partition-mode
    extension: a partition that heals while an exclusion is in flight
    must not delist the now-reachable site (the partition soak found
    exactly that lost-update race). Under the paper's crash-only model
    the callback merely costs one unanswered ping per genuinely dead
    site.

    Returns the set of sites actually claimed down.
    """

    def program(ctx: "TxnContext") -> typing.Generator:
        vector: dict[int, int] = {}
        for site_id in site_ids:
            value, _version = yield from ctx.dm_read(
                source_site, ns_item(site_id), privileged=True
            )
            vector[site_id] = int(value)  # type: ignore[call-overload]

        claimed: set[int] = set()
        targets = [
            (site_id, None)
            for site_id in site_ids
            if vector.get(site_id, 0) != 0 and site_id not in claims
        ]
        for down in sorted(claims):
            expected_session = claims[down]
            current = vector.get(down, 0)
            if current == 0:
                continue  # already nominally down
            if expected_session != 0 and current != expected_session:
                continue  # a newer incarnation recovered meanwhile
            if confirm_down is not None:
                still_down = yield from confirm_down(ctx, down)
                if not still_down:
                    continue  # it answered: alive (e.g. partition healed)
            claimed.add(down)
            yield from _write_each_ordered(ctx, targets, ns_item(down), 0)
        return claimed

    return program


class ControlService:
    """Automatic type-2 initiation at one site.

    Listens to the site's failure detector; when a crash is detected and
    the local nominal view still believes the crashed site up, runs a
    type-2 control transaction, retrying through aborts (conflicting
    control transactions, further crashes) with backoff until the
    nominal view agrees or this site stops being operational.
    """

    def __init__(
        self,
        site: "Site",
        tm: TransactionManager,
        cluster: "Cluster",
        retry_delay: float = 10.0,
        max_attempts: int = 20,
        verify_ping_timeout: float = 8.0,
    ) -> None:
        self.site = site
        self.tm = tm
        self.cluster = cluster
        self.retry_delay = retry_delay
        self.max_attempts = max_attempts
        self.verify_ping_timeout = verify_ping_timeout
        self.type2_committed = 0
        self.type2_aborted = 0
        #: site -> session number of the incarnation observed *at
        #: detection time* (when the site was provably down). Claims are
        #: only ever bound to these values: capturing the current local
        #: value at retry time instead is unsound — in the window between
        #: a peer's type-1 commit and its recovery announcement, the
        #: local copy already holds the NEW session while the detector
        #: still says "down", and a claim bound to it would delist a
        #: live incarnation (observed as lost updates in the randomized
        #: soak before this fix).
        self._suspected: dict[int, int] = {}
        cluster.detector(site.site_id).on_down(self._on_down)
        site.crash_hooks.append(self._suspected.clear)

    def _local_ns_value(self, site_id: int) -> int:
        """Local, non-transactional peek used only as a scheduling hint."""
        item = ns_item(site_id)
        if not self.site.copies.has(item):
            return 0
        return int(self.site.copies.get(item).value)  # type: ignore[call-overload]

    def _on_down(self, crashed: int) -> None:
        if not self.site.is_operational:
            return
        expected = self._local_ns_value(crashed)
        if expected == 0:
            return  # already nominally down
        self._suspected[crashed] = expected
        self.site.spawn(self._exclude(crashed, expected), name=f"type2:{crashed}")

    def _confirm_down(self, ctx, target: int) -> typing.Generator:
        """In-transaction liveness re-check (see make_type2_program)."""
        try:
            yield self.site.rpc.call(
                target, "recovery.probe", None, timeout=self.verify_ping_timeout
            )
        except (NetworkError, TransactionError):
            return True  # still unreachable: the claim stands
        return False  # it answered: alive (partition healed) — abandon

    def _exclude(self, crashed: int, expected: int) -> typing.Generator:
        """Claim ``crashed``'s incarnation ``expected`` nominally down."""
        kernel = self.tm.kernel
        for _attempt in range(self.max_attempts):
            if not self.site.is_operational:
                return
            if self.cluster.detector(self.site.site_id).believes_up(crashed):
                self._suspected.pop(crashed, None)
                return  # the suspicion was withdrawn (reconnection)
            current = self._local_ns_value(crashed)
            if current == 0:
                self._suspected.pop(crashed, None)
                return  # someone's type 2 already committed
            if current != expected:
                self._suspected.pop(crashed, None)
                return  # a newer incarnation recovered; claim is moot
            # Piggyback claims for every other site currently known down
            # (type 2 may claim "one or more sites", §3.3) — each bound
            # to the incarnation recorded when ITS crash was detected.
            detector = self.cluster.detector(self.site.site_id)
            claims = {crashed: expected}
            for site_id, suspected_session in list(self._suspected.items()):
                if site_id == crashed or detector.believes_up(site_id):
                    continue
                if self._local_ns_value(site_id) != 0:
                    claims[site_id] = suspected_session
            program = make_type2_program(
                self.tm.catalog.site_ids, claims, self.site.site_id,
                confirm_down=self._confirm_down,
            )
            try:
                yield from self.tm.run(program, kind=TxnKind.CONTROL)
                self.type2_committed += 1
                return
            except TransactionAborted:
                self.type2_aborted += 1
                # Jittered backoff: concurrent initiators retrying in
                # lockstep re-collide forever.
                rng = kernel.rng.stream("control.backoff")
                yield kernel.timeout(self.retry_delay * (0.5 + rng.random()))
        return

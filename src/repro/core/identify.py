"""Identifying out-of-date copies at recovery (§3.4 step 2, §5).

The basic algorithm "simply assumes that all data at the recovering site
are out-of-date"; the §5 refinements track precisely which copies missed
updates so recovery marks (and copiers later refresh) only those. The
algorithm "can choose many different methods" — the policy is pluggable:

* :class:`MarkAllPolicy` — the conservative baseline;
* :class:`~repro.core.faillock.FailLockPolicy` — stable fail-lock tables;
* :class:`~repro.core.missinglist.MissingListPolicy` — volatile missing
  lists with the §5 add/remove rules.

A policy has two halves: a per-site *tracker* fed by the DM on every
committed write (``on_commit_write(item, applied, missed, value, version)``),
and a *collect* step run by the recovering site to compute the items to
mark. Soundness requirement: every item that missed a committed update
during the outage must be in the returned set (over-approximation is
allowed and costs only copier work — experiment E5 measures exactly
that).
"""

from __future__ import annotations

import typing

from repro.core.nominal import is_ns_item

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.recovery import RecoveryManager


class IdentificationPolicy(typing.Protocol):
    """Pluggable step-2 policy (see module docstring)."""

    name: str

    def on_commit_write(
        self,
        item: str,
        applied_sites: tuple[int, ...],
        missed_sites: tuple[int, ...],
        value: object = None,
        version: object = None,
    ) -> None:
        """Tracker half: called by the local DM at commit application."""
        ...  # pragma: no cover - protocol

    def collect_stale(self, manager: "RecoveryManager") -> typing.Generator:
        """Recovery half: return the local items to mark unreadable.

        Runs as a plain simulated process (may issue RPCs); returns an
        iterable of item names. Must be read-only with respect to remote
        tracker state: destructive cleanup belongs in
        :meth:`after_marked`, which runs only once the unreadable marks
        are safely (stably) applied — otherwise a crash between the two
        steps loses the staleness knowledge.
        """
        ...  # pragma: no cover - protocol

    def after_marked(
        self, manager: "RecoveryManager", items: typing.Sequence[str]
    ) -> typing.Generator:
        """Cleanup after the marks are applied (e.g. clear remote entries)."""
        ...  # pragma: no cover - protocol


class MarkAllPolicy:
    """§3.4's conservative default: every local copy may be stale.

    Nominal-session items are exempt — the type-1 control transaction
    refreshes them before any user transaction can run at this site.
    """

    name = "mark-all"
    #: Mark-all marks everything up front, so no write committed during
    #: the recovery window can slip through unmarked. The precise
    #: policies track *misses*, and a write serialized between their
    #: collection pass and the type-1 commit records a miss they have
    #: not seen yet — they need a delta pass after the announcement
    #: (see RecoveryManager._recover and DESIGN.md §6).
    needs_post_announce_pass = False

    def on_commit_write(
        self,
        item: str,
        applied_sites: tuple[int, ...],
        missed_sites: tuple[int, ...],
        value: object = None,
        version: object = None,
    ) -> None:
        return  # nothing to track

    def collect_stale(self, manager: "RecoveryManager") -> typing.Generator:
        yield from ()
        return [
            item
            for item in manager.site.copies.items()
            if not is_ns_item(item)
        ]

    def after_marked(
        self, manager: "RecoveryManager", items: typing.Sequence[str]
    ) -> typing.Generator:
        yield from ()
        return None

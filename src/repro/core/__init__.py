"""The paper's contribution: session-number-based site recovery.

Package map (paper section in parentheses):

* :mod:`repro.core.nominal` — nominal session numbers ``NS[k]`` as fully
  replicated data items (§3.1).
* :mod:`repro.core.session` — actual session numbers ``as[k]``: shared
  TM/DM variable + stable storage of the last used number (§3.1).
* :mod:`repro.core.rowaa` — the ROWAA interpretation of logical
  operations with the implicit nominal-session-vector read (§3.2).
* :mod:`repro.core.control` — control transactions of types 1 and 2
  (§3.3) and the service that initiates type 2 on failure detection.
* :mod:`repro.core.copier` — copier transactions, eager and on-demand
  scheduling, and the §5 version-skip optimisation (§3.2, §5).
* :mod:`repro.core.identify` / :mod:`~repro.core.faillock` /
  :mod:`~repro.core.missinglist` — the three policies for identifying
  out-of-date copies at recovery (§3.4 step 2, §5).
* :mod:`repro.core.recovery` — the four-step site recovery procedure
  with crash-during-recovery retries (§3.4).
* :mod:`repro.core.system` — :class:`~repro.core.system.RowaaSystem`,
  the fully assembled protocol on top of
  :class:`~repro.system.DatabaseSystem`.
"""

from repro.core.config import RowaaConfig
from repro.core.copier import CopierService
from repro.core.nominal import is_ns_item, ns_item, ns_site
from repro.core.recovery import RecoveryManager
from repro.core.rowaa import RowaaStrategy
from repro.core.session import SessionManager
from repro.core.system import RowaaSystem

__all__ = [
    "CopierService",
    "RecoveryManager",
    "RowaaConfig",
    "RowaaStrategy",
    "RowaaSystem",
    "SessionManager",
    "is_ns_item",
    "ns_item",
    "ns_site",
]

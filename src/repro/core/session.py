"""Actual session numbers ``as[k]`` (§3.1).

The actual session number is "a variable shared by the TM and DM at site
k" — here the DM holds it (:attr:`DataManager.actual_session`) and the
TM reads it through this manager. The *last used* session number is kept
in stable storage "so that the next time the site recovers, a new
session number can be assigned correctly"; zero is reserved for
not-operational, and numbers increase monotonically over a site's
lifetime (the paper permits recycling; we do not need it).
"""

from __future__ import annotations

from repro.sanitize import hooks as _san
from repro.site.site import Site
from repro.txn.data_manager import DataManager

_STABLE_KEY = "session.last"
_STABLE_STARTED = "session.started_at"


class SessionManager:
    """Owns session-number assignment for one site.

    Parameters
    ----------
    site, dm:
        The owning site and its data manager (holder of ``as[k]``).
    modulus:
        Optional recycling bound (§3.1: "In practice, session numbers
        can be recycled. Two different sessions can have the same
        session number as long as no single transaction is alive in
        both sessions."). With a modulus M, sessions cycle through
        1..M; the caller is responsible for choosing M large enough
        that no transaction can span M recoveries of one site — with
        short transactions and non-trivial recovery times even M = 2
        satisfies the paper's condition. ``None`` (default) never
        recycles.
    """

    def __init__(self, site: Site, dm: DataManager, modulus: int | None = None) -> None:
        if modulus is not None and modulus < 2:
            raise ValueError(f"session modulus must be >= 2, got {modulus}")
        self.site = site
        self.dm = dm
        self.modulus = modulus
        # as[k] is volatile: the DM's crash hook resets it to 0.

    @property
    def current(self) -> int:
        """The actual session number ``as[k]`` (0 when not operational)."""
        value = self.dm.actual_session
        if _san.ACTIVE is not None:
            _san.ACTIVE.on_access(
                self.site.site_id, ("session",), "read",
                "SessionManager.current", token=value,
            )
        return value

    @property
    def last_used(self) -> int:
        """The most recent session number ever used (stable)."""
        return int(self.site.stable.get(_STABLE_KEY, 0))  # type: ignore[arg-type]

    @property
    def session_started_at(self) -> float | None:
        """Stable record of when the current/last session began.

        Used by the missing-list refinement to bound the outage window
        (see :mod:`repro.core.missinglist`).
        """
        return self.site.stable.get(_STABLE_STARTED)  # type: ignore[return-value]

    def choose_next(self) -> int:
        """Reserve the next session number (recovery step 3, §3.4).

        Persisted before use: even if the site crashes immediately
        after, the number is never reused *within the recycling window*
        (never at all when ``modulus`` is None). Zero is reserved for
        not-operational and is skipped when wrapping.
        """
        next_number = self.last_used + 1
        if self.modulus is not None and next_number > self.modulus:
            next_number = 1
        self.site.stable.put(_STABLE_KEY, next_number)
        if self.site.wal is not None:
            # Session state must be reconstructible from checkpoint +
            # log alone: journal the reservation durably before use.
            self.site.wal.log_session(next_number)
        return next_number

    def activate(self, session_number: int, now: float) -> None:
        """Load ``as[k]`` with the new number (recovery step 4, §3.4)."""
        if _san.ACTIVE is not None:
            _san.ACTIVE.on_access(
                self.site.site_id, ("session",), "write",
                "SessionManager.activate", token=session_number,
            )
        self.dm.actual_session = session_number
        self.site.stable.put(_STABLE_STARTED, now)
        if self.site.wal is not None:
            self.site.wal.log_session(session_number, started_at=now)

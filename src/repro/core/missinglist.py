"""Missing lists (§5).

Conceptually ``ML: {item} × {site} → {0,1}`` at each site, where
``ML[X, k] = 1`` means x_k has missed updates; stored sparsely as a set
of pairs and — following the paper — in *volatile* storage only.

Write-time maintenance (§5): a committed write of X "removes (X, i), if
any, from the MLs at the sites to which it writes a copy of X
successfully, and adds (X, j) into these MLs for all j such that
x_j ∈ X and site j is not available for the transaction".

Recovery (§5): the recovering site *i* looks up the MLs at all
operational sites; entries (X, i) are removed there and x_i is marked
unreadable; entries (X, j), j ≠ i seed site i's own fresh ML.

Volatility is the mechanism's advertised economy, but it loses entries
when a tracker site crashes. Soundness is restored with two
conservative rules, checked per item X by the recovering site:

* some resident site of X is unreachable (can't rule out a missed
  update known only there), or
* a reachable resident site's ML has been valid only since *after* our
  outage began (``ml_valid_since > our previous session start``): its
  ML may have lost entries naming us.

Both rules only over-mark (extra copier work, measured by E5 against
stable fail-locks and mark-all).
"""

from __future__ import annotations

import typing

from repro.core.nominal import is_ns_item
from repro.errors import NetworkError
from repro.site.site import Site

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.recovery import RecoveryManager

CollectReply = tuple[list[str], list[tuple[str, int]], float]


class MissingListPolicy:
    """Tracker + recovery policy for the missing-list mechanism."""

    name = "missing-lists"
    needs_post_announce_pass = True

    def __init__(self, site: Site) -> None:
        self.site = site
        self._ml: set[tuple[str, int]] = set()
        self.ml_valid_since = 0.0
        self._reached: list[int] = []
        site.rpc.register("ml.collect", self._handle_collect)
        site.rpc.register("ml.clear", self._handle_clear)
        site.crash_hooks.append(self._on_crash)

    def _on_crash(self) -> None:
        self._ml.clear()  # volatile storage (§5)

    def entries(self) -> set[tuple[str, int]]:
        """Current ML at this site."""
        return set(self._ml)

    def seed(self, entries: typing.Iterable[tuple[str, int]], now: float) -> None:
        """Install a fresh ML (recovery) and stamp its validity epoch."""
        self._ml = set(entries)
        self.ml_valid_since = now

    # -- tracker half ---------------------------------------------------------

    def on_commit_write(
        self,
        item: str,
        applied_sites: tuple[int, ...],
        missed_sites: tuple[int, ...],
        value: object = None,
        version: object = None,
    ) -> None:
        for missed in missed_sites:
            self._ml.add((item, missed))
        for applied in applied_sites:
            self._ml.discard((item, applied))

    # -- RPC handler -------------------------------------------------------------

    def _handle_collect(self, recovering: int, src: int) -> CollectReply:
        """Read-only: (entries naming the recovering site, all other
        entries, ml_valid_since). Destructive removal happens via
        ``ml.clear`` only after the recovering site has applied its
        unreadable marks."""
        mine = sorted(item for item, site_id in self._ml if site_id == recovering)
        others = sorted(
            (item, site_id) for item, site_id in self._ml if site_id != recovering
        )
        return mine, others, self.ml_valid_since

    def _handle_clear(self, request: tuple[int, tuple[str, ...]], src: int) -> bool:
        recovering, items = request
        for item in items:
            self._ml.discard((item, recovering))
        return True

    # -- recovery half -----------------------------------------------------------------

    def collect_stale(self, manager: "RecoveryManager") -> typing.Generator:
        me = self.site.site_id
        down_since = manager.session.session_started_at or 0.0
        stale: set[str] = set()
        inherited: set[tuple[str, int]] = set()
        reached: dict[int, float] = {}

        for site_id in manager.operational_peers():
            try:
                mine, others, valid_since = yield manager.rpc.call(
                    site_id,
                    "ml.collect",
                    me,
                    timeout=manager.config.recovery_probe_timeout,
                )
            except NetworkError:
                continue
            reached[site_id] = valid_since
            stale.update(mine)
            inherited.update(tuple(entry) for entry in others)

        for item in self.site.copies.items():
            if is_ns_item(item):
                continue
            for resident in manager.catalog.sites_of(item):
                if resident == me:
                    continue
                if resident not in reached or reached[resident] > down_since:
                    stale.add(item)
                    break

        self.seed(inherited, manager.kernel.now)
        self._reached = list(reached)
        # Sorted: the stale list drives marking and copier scheduling
        # order, so set-hash order here would be run-to-run nondeterminism.
        return sorted(item for item in stale if self.site.copies.has(item))

    def after_marked(
        self, manager: "RecoveryManager", items: typing.Sequence[str]
    ) -> typing.Generator:
        """Drop the collected entries at peers now that marks are applied."""
        yield from ()
        me = self.site.site_id
        for site_id in self._reached:
            manager.rpc.call(site_id, "ml.clear", (me, tuple(sorted(items))))
        return None

"""End-state fingerprints and audit-alert signatures for schedule diffing.

``repro schedfuzz`` decides "did this perturbed schedule change
anything?" by comparing two artifacts against the canonical run:

* the **committed-state fingerprint** — per-site unreadable marks and
  stable session numbers, plus the **replica-agreement partition** of
  every item: which sites hold equal committed values, with the values
  themselves anonymised. Two legal schedules of a contended workload
  may serialize conflicting transactions in either order (and commit or
  time out different members of a lock race), so absolute committed
  values are schedule-dependent *by design*; what the tie-break must
  never change is the protocol's invariant structure — whether replicas
  mutually agree, which copies are marked unreadable, and where the
  session vector landed. Physical version stamps and WAL layout are
  excluded for the same reason. ``strict_values=True`` restores
  value-level comparison for scenarios whose committed values are
  schedule-independent (single-writer recovery drills like E2 — the
  ``repro.wal.determinism --cross-schedule`` gate).
* the **alert signature** — the multiset of ``(rule, severity)`` pairs
  fired by the protocol auditor. Alert *times* are schedule-dependent
  by nature and are excluded.
"""

from __future__ import annotations

import hashlib
import typing


def system_state(
    system: typing.Any, strict_values: bool = False
) -> dict:
    """Observable committed state, per site, in a diff-friendly shape.

    With ``strict_values`` each site's copies carry ``repr(value)``;
    otherwise values appear only through the per-item agreement
    partition under the ``"agreement"`` key (sites grouped by equal
    committed value, groups ordered by their lowest site id).
    """
    state: dict = {}
    per_item: dict[str, dict[int, str]] = {}
    for site_id in system.cluster.site_ids:
        site = system.cluster.site(site_id)
        copies = []
        for item in site.copies.items():
            copy = site.copies.get(item)
            per_item.setdefault(item, {})[site_id] = repr(copy.value)
            if strict_values:
                copies.append((item, repr(copy.value), copy.unreadable))
            else:
                copies.append((item, copy.unreadable))
        state[site_id] = {
            "copies": sorted(copies),
            "session_last": site.stable.get("session.last"),
        }
    state["agreement"] = {
        item: _partition(values) for item, values in sorted(per_item.items())
    }
    return state


def _partition(values: typing.Mapping[int, str]) -> tuple:
    """Sites grouped by equal value — the value-anonymous agreement shape."""
    groups: dict[str, list[int]] = {}
    for site_id, value in values.items():
        groups.setdefault(value, []).append(site_id)
    return tuple(sorted(tuple(sorted(sites)) for sites in groups.values()))


def fingerprint(state: typing.Mapping) -> str:
    """Stable hex digest of a :func:`system_state` structure."""
    blob = repr(sorted(state.items(), key=repr)).encode()
    return hashlib.sha256(blob).hexdigest()


def alert_signature(obs: typing.Any) -> list[tuple[str, str]]:
    """Sorted (rule, severity) multiset of the run's audit alerts."""
    auditor = getattr(obs, "audit", None)
    if auditor is None:
        return []
    return sorted(
        (alert.rule, alert.severity.value)
        for alert in auditor.alerts.alerts
    )


def diff_states(canonical: typing.Mapping, perturbed: typing.Mapping) -> list[str]:
    """Human-readable per-site differences (empty list when identical)."""
    lines: list[str] = []
    agree_a = canonical.get("agreement", {})
    agree_b = perturbed.get("agreement", {})
    for item in sorted(set(agree_a) | set(agree_b)):
        if agree_a.get(item) != agree_b.get(item):
            lines.append(
                f"agreement {item}: {agree_a.get(item)!r} "
                f"-> {agree_b.get(item)!r}"
            )
    site_ids = sorted(
        key for key in set(canonical) | set(perturbed) if key != "agreement"
    )
    for site_id in site_ids:
        a = canonical.get(site_id)
        b = perturbed.get(site_id)
        if a == b:
            continue
        if a is None or b is None:
            lines.append(f"site {site_id}: present in only one run")
            continue
        if a["session_last"] != b["session_last"]:
            lines.append(
                f"site {site_id}: session_last {a['session_last']!r} "
                f"-> {b['session_last']!r}"
            )
        copies_a = {entry[0]: entry[1:] for entry in a["copies"]}
        copies_b = {entry[0]: entry[1:] for entry in b["copies"]}
        for item in sorted(set(copies_a) | set(copies_b)):
            if copies_a.get(item) != copies_b.get(item):
                lines.append(
                    f"site {site_id}: {item} {copies_a.get(item)!r} "
                    f"-> {copies_b.get(item)!r}"
                )
    return lines


def diff_alerts(
    canonical: typing.Sequence[tuple[str, str]],
    perturbed: typing.Sequence[tuple[str, str]],
) -> list[str]:
    """Alert-signature differences as +/- count lines."""
    import collections

    a = collections.Counter(tuple(pair) for pair in canonical)
    b = collections.Counter(tuple(pair) for pair in perturbed)
    lines = []
    for key in sorted(set(a) | set(b)):
        if a[key] != b[key]:
            rule, severity = key
            lines.append(f"alert {rule} ({severity}): {a[key]} -> {b[key]}")
    return lines

"""``repro schedfuzz``: run K perturbed schedules, diff, shrink (layer 3).

The harness runs the canonical schedule of an experiment's traced
scenario under the protocol auditor, then K shuffled schedules (salts
``1..K``) of the *same* seed, and compares each against the canonical
run on two axes: the committed-state fingerprint and the audit-alert
signature (see :mod:`repro.sanitize.fingerprint`). Any mismatch is a
divergence: the protocol's outcome depended on a same-timestamp
tie-break.

On divergence the recorded decision list of the failing schedule is
delta-debugged (:mod:`repro.sanitize.shrink`) down to a minimal set of
non-canonical decisions that still reproduces the divergence, and the
whole story — canonical baseline, per-schedule verdicts, the failing
and minimal decision lists, and the rendered state/alert diff — is
exported as a replayable JSON artifact (``--replay`` re-runs it).

Race detection (:mod:`repro.sanitize.hb`) is opt-in via ``races=True``:
reports ride on the result but never gate the verdict, because the
detector intentionally over-approximates (benign races the protocol
resolves by design are still reported).
"""

from __future__ import annotations

import dataclasses
import json
import typing

from repro.sanitize import hooks
from repro.sanitize.fingerprint import (
    alert_signature,
    diff_alerts,
    diff_states,
    fingerprint,
    system_state,
)
from repro.sanitize.policy import ScheduleSpec, directed_spec, sparse_decisions
from repro.sanitize.shrink import ddmin

#: A traced scenario: the string name of an experiment (dispatched via
#: :mod:`repro.obs.scenarios`) or a callable with the same signature as
#: an experiment module's ``traced_scenario``.
Scenario = typing.Union[str, typing.Callable[..., tuple]]


@dataclasses.dataclass
class ScheduleRun:
    """One completed schedule: fingerprint + alerts + recorded decisions."""

    label: str
    fingerprint: str
    state: dict
    alerts: list[tuple[str, str]]
    decisions: list[int]
    summary: dict
    races: list = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class FuzzResult:
    """The verdict of one ``schedfuzz`` sweep."""

    experiment: str
    seed: int
    schedules: int
    canonical: ScheduleRun
    perturbed: list[ScheduleRun]
    divergent: ScheduleRun | None = None
    divergent_salt: int | None = None
    minimal_plan: dict[int, int] | None = None
    shrink_probes: int = 0
    races: list = dataclasses.field(default_factory=list)
    audit: bool = True

    @property
    def diverged(self) -> bool:
        return self.divergent is not None

    def render(self) -> str:
        lines = [
            f"schedfuzz {self.experiment} seed={self.seed}: "
            f"{len(self.perturbed)} perturbed schedule(s) vs canonical "
            f"{self.canonical.fingerprint[:16]}"
        ]
        for run in self.perturbed:
            verdict = "OK"
            if (run.fingerprint != self.canonical.fingerprint
                    or run.alerts != self.canonical.alerts):
                verdict = "DIVERGED  << VIOLATION"
            lines.append(
                f"  {run.label}: fingerprint={run.fingerprint[:16]} "
                f"alerts={len(run.alerts)} decisions={len(run.decisions)} "
                f"[{verdict}]"
            )
        if self.divergent is not None:
            lines.append(f"divergence ({self.divergent.label}):")
            lines.extend(
                "  " + line
                for line in diff_states(self.canonical.state, self.divergent.state)
            )
            lines.extend(
                "  " + line
                for line in diff_alerts(self.canonical.alerts, self.divergent.alerts)
            )
            if self.minimal_plan is not None:
                lines.append(
                    f"minimal failing schedule: {len(self.minimal_plan)} "
                    f"decision(s) after {self.shrink_probes} shrink probe(s): "
                    f"{sorted(self.minimal_plan.items())}"
                )
        if self.races:
            lines.append(f"race reports: {len(self.races)} (see artifact)")
        return "\n".join(lines)

    def artifact(self) -> dict:
        """The replayable JSON artifact."""
        document: dict = {
            "experiment": self.experiment,
            "seed": self.seed,
            "schedules": self.schedules,
            "audit": self.audit,
            "diverged": self.diverged,
            "canonical": {
                "fingerprint": self.canonical.fingerprint,
                "alerts": [list(pair) for pair in self.canonical.alerts],
                "summary": _jsonable(self.canonical.summary),
            },
            "runs": [
                {
                    "label": run.label,
                    "fingerprint": run.fingerprint,
                    "alerts": [list(pair) for pair in run.alerts],
                    "n_decisions": len(run.decisions),
                    "diverged": (
                        run.fingerprint != self.canonical.fingerprint
                        or run.alerts != self.canonical.alerts
                    ),
                }
                for run in self.perturbed
            ],
            "races": [dataclasses.asdict(report) for report in self.races],
        }
        if self.divergent is not None:
            plan = sparse_decisions(self.divergent.decisions)
            document["divergence"] = {
                "salt": self.divergent_salt,
                "state_diff": diff_states(self.canonical.state,
                                          self.divergent.state),
                "alert_diff": diff_alerts(self.canonical.alerts,
                                          self.divergent.alerts),
                "decisions": sorted(map(list, plan.items())),
                "replay": directed_spec(self.minimal_plan
                                        if self.minimal_plan is not None
                                        else plan).to_json(),
                "shrink_probes": self.shrink_probes,
            }
        return document


def _jsonable(value: typing.Any) -> typing.Any:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


def run_schedule(
    experiment: Scenario,
    seed: int,
    schedule: ScheduleSpec | None,
    label: str,
    audit: bool = True,
    races: bool = False,
) -> ScheduleRun:
    """Run one schedule of ``experiment`` and capture its artifacts."""
    from repro.obs.scenarios import run_traced

    try:
        if callable(experiment):
            kernel, system, obs, summary = experiment(
                seed, audit=audit, schedule=schedule, races=races
            )
            obs.spans.finish_open()
        else:
            traced = run_traced(
                experiment, seed=seed, audit=audit,
                schedule=schedule, races=races,
            )
            kernel, system, obs = traced.kernel, traced.system, traced.obs
            summary = traced.summary
    finally:
        if races:
            hooks.clear()
    state = system_state(system)
    policy = kernel._tiebreak
    detector = getattr(obs, "sanitizer", None)
    return ScheduleRun(
        label=label,
        fingerprint=fingerprint(state),
        state=state,
        alerts=alert_signature(obs),
        decisions=list(policy.decisions) if policy is not None else [],
        summary=dict(summary),
        races=list(detector.races) if detector is not None else [],
    )


def schedfuzz(
    experiment: Scenario,
    seed: int = 0,
    schedules: int = 8,
    shrink: bool = True,
    races: bool = False,
    shrink_budget: int = 48,
    audit: bool = True,
) -> FuzzResult:
    """The full sweep: canonical + K shuffled schedules + shrink."""
    name = experiment if isinstance(experiment, str) else getattr(
        experiment, "__name__", "custom"
    )
    canonical = run_schedule(
        experiment, seed, ScheduleSpec(mode="canonical"), "canonical",
        audit=audit, races=False,
    )
    result = FuzzResult(
        experiment=name, seed=seed, schedules=schedules,
        canonical=canonical, perturbed=[], audit=audit,
    )
    for salt in range(1, schedules + 1):
        run = run_schedule(
            experiment, seed, ScheduleSpec(mode="shuffle", salt=salt),
            f"shuffle[{salt}]", audit=audit, races=races,
        )
        result.perturbed.append(run)
        result.races.extend(run.races)
        if result.divergent is None and (
            run.fingerprint != canonical.fingerprint
            or run.alerts != canonical.alerts
        ):
            result.divergent = run
            result.divergent_salt = salt
    if result.divergent is not None and shrink:
        plan = sparse_decisions(result.divergent.decisions)

        def diverges(candidate: dict[int, int]) -> bool:
            probe = run_schedule(
                experiment, seed, directed_spec(candidate), "shrink-probe",
                audit=audit, races=False,
            )
            return (probe.fingerprint != canonical.fingerprint
                    or probe.alerts != canonical.alerts)

        if plan:
            result.minimal_plan, result.shrink_probes = ddmin(
                plan, diverges, budget=shrink_budget
            )
    return result


def replay_artifact(
    experiment: Scenario, seed: int, document: typing.Mapping
) -> tuple[ScheduleRun, ScheduleRun, bool]:
    """Re-run an artifact's minimal schedule; True iff it still diverges.

    The replay runs under the same ``audit`` setting the sweep recorded
    — the auditor schedules events of its own, so a directed decision
    plan only lands on the same ties when that setting matches.
    """
    audit = bool(document.get("audit", True))
    spec = ScheduleSpec.from_json(document["divergence"]["replay"])
    canonical = run_schedule(
        experiment, seed, ScheduleSpec(mode="canonical"), "canonical",
        audit=audit,
    )
    replayed = run_schedule(experiment, seed, spec, "replay", audit=audit)
    diverged = (replayed.fingerprint != canonical.fingerprint
                or replayed.alerts != canonical.alerts)
    return canonical, replayed, diverged

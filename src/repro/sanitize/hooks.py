"""Global access-hook seam for the schedule-space sanitizer.

Protocol-state containers (:class:`~repro.storage.copies.CopyStore`,
:class:`~repro.txn.locks.LockManager`, the WAL, the session vector) have
no kernel reference, so they cannot test ``kernel._sanitize`` the way
the scheduler seams do. They test this module's :data:`ACTIVE` instead —
one module-attribute load and a ``None`` check on the cold branch, the
same cost model as the ``obs``/``journal`` hooks those classes already
carry.

This module imports nothing from :mod:`repro` (it is imported *by* the
storage and protocol layers), and the package ``__init__`` stays free of
harness imports for the same reason.

Exactly one detector can be active per process at a time; the traced
harness (:func:`repro.obs.scenarios.run_traced`) clears it in a
``finally`` so a crashed scenario cannot leak tracking into the next
run.
"""

from __future__ import annotations

import typing

#: The attached :class:`~repro.sanitize.hb.RaceDetector`, or None.
#: Hot paths only ever test this for None-ness.
ACTIVE: typing.Any = None


def set_active(detector: typing.Any) -> None:
    """Install ``detector`` as the process-wide access-hook target."""
    global ACTIVE
    ACTIVE = detector


def clear() -> None:
    """Detach whatever detector is active (idempotent)."""
    global ACTIVE
    ACTIVE = None

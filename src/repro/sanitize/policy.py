"""Tie-break policies: the schedule-perturbation seam (schedsan layer 1).

The kernel orders same-timestamp heap entries by insertion sequence
(FIFO). That tie-break is an arbitrary-but-fixed choice the protocol's
correctness argument (PAPER.md §3) must not depend on. A
:class:`TieBreakPolicy` attached to a kernel intercepts exactly those
ties: whenever two or more *live* entries are ready at the same instant,
the policy picks which one runs next. Everything else — causality (an
event scheduled while another runs cannot be offered before it exists),
lazy cancellation, the clock — is untouched, so a policy only ever
explores **legal** schedules of the same program.

Every policy records its decisions: the index chosen into the
seq-ordered batch of ready entries, one entry per real choice point
(batches of one are not choices and are not recorded). A recorded run is
therefore replayable — feeding the list to a :class:`DirectedPolicy`
reproduces the exact schedule byte-for-byte — which is what the shrinker
and the ``repro schedfuzz`` artifacts rely on.

The :class:`ShufflePolicy` draws from the kernel's own
:class:`~repro.sim.rng.RngRegistry` (stream :data:`STREAM_NAME`, salted
per schedule), so perturbed runs are themselves deterministic functions
of ``(seed, salt)`` and never disturb any other consumer's stream.
"""

from __future__ import annotations

import dataclasses
import random
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel

#: RngRegistry stream the shuffle policy draws from. Salted schedules
#: append ``[salt]`` so each perturbed run is an independent — but
#: individually replayable — sequence.
STREAM_NAME = "sanitize.schedule"


class TieBreakPolicy:
    """Base policy: canonical FIFO choice (index 0), decisions recorded.

    Attaching the base class must not change the schedule: it always
    picks the lowest-seq entry of the batch, which is exactly what the
    unperturbed heap pop would have produced. It still records one
    decision per choice point, so a canonical run's decision list is
    all zeros of the right length — the identity the shrinker converges
    toward.
    """

    __slots__ = ("decisions",)

    def __init__(self) -> None:
        #: One entry per same-timestamp batch of >= 2 live entries: the
        #: index chosen into the seq-ordered batch.
        self.decisions: list[int] = []

    def choose(self, n: int) -> int:
        """Pick the batch index to run next (``0 <= index < n``)."""
        self.decisions.append(0)
        return 0


class ShufflePolicy(TieBreakPolicy):
    """Uniform random tie-break from a seeded stream (perturbed runs)."""

    __slots__ = ("rng",)

    def __init__(self, rng: random.Random) -> None:
        super().__init__()
        self.rng = rng

    def choose(self, n: int) -> int:
        index = self.rng.randrange(n)
        self.decisions.append(index)
        return index


class DirectedPolicy(TieBreakPolicy):
    """Replay a recorded decision list (or a shrunken subset of one).

    ``plan`` maps choice-point ordinal -> chosen index; missing ordinals
    take the canonical choice (0). A dense recorded list works too.
    Replaying the schedule that recorded the plan is byte-identical;
    replaying a *shrunken* plan may reach choice points with smaller
    batches than the original run, so out-of-range choices clamp to the
    last batch index instead of failing.
    """

    __slots__ = ("plan", "_cursor")

    def __init__(
        self, decisions: typing.Mapping[int, int] | typing.Sequence[int]
    ) -> None:
        super().__init__()
        if isinstance(decisions, typing.Mapping):
            self.plan: dict[int, int] = {
                int(k): int(v) for k, v in decisions.items() if int(v)
            }
        else:
            self.plan = {
                i: int(v) for i, v in enumerate(decisions) if int(v)
            }
        self._cursor = 0

    def choose(self, n: int) -> int:
        index = min(self.plan.get(self._cursor, 0), n - 1)
        self._cursor += 1
        self.decisions.append(index)
        return index


@dataclasses.dataclass(frozen=True)
class ScheduleSpec:
    """A serializable description of one schedule to run.

    ``mode`` is ``"canonical"`` (tie-break seam engaged but FIFO
    choices), ``"shuffle"`` (seeded perturbation; ``salt`` picks the
    stream), or ``"directed"`` (replay ``decisions``, a sparse
    ``(ordinal, index)`` pair list or dense index list).
    """

    mode: str = "shuffle"
    salt: int = 0
    decisions: tuple = ()

    def build(self, kernel: "Kernel") -> TieBreakPolicy:
        """Construct the policy for ``kernel`` (does not attach it)."""
        if self.mode == "canonical":
            return TieBreakPolicy()
        if self.mode == "shuffle":
            name = STREAM_NAME if not self.salt else f"{STREAM_NAME}[{self.salt}]"
            return ShufflePolicy(kernel.rng.stream(name))
        if self.mode == "directed":
            plan = self.decisions
            if plan and isinstance(plan[0], (tuple, list)):
                return DirectedPolicy({int(k): int(v) for k, v in plan})
            return DirectedPolicy(list(plan))  # type: ignore[arg-type]
        raise ValueError(f"unknown schedule mode {self.mode!r}")

    def to_json(self) -> dict:
        return {
            "mode": self.mode,
            "salt": self.salt,
            "decisions": [list(pair) for pair in self.decisions],
        }

    @classmethod
    def from_json(cls, data: typing.Mapping) -> "ScheduleSpec":
        return cls(
            mode=str(data.get("mode", "shuffle")),
            salt=int(data.get("salt", 0)),
            decisions=tuple(
                tuple(pair) if isinstance(pair, (list, tuple)) else pair
                for pair in data.get("decisions", ())
            ),
        )


def directed_spec(plan: typing.Mapping[int, int]) -> ScheduleSpec:
    """A directed :class:`ScheduleSpec` from a sparse decision mapping."""
    return ScheduleSpec(
        mode="directed",
        decisions=tuple(sorted((int(k), int(v)) for k, v in plan.items())),
    )


def sparse_decisions(decisions: typing.Sequence[int]) -> dict[int, int]:
    """Dense recorded decision list -> sparse non-canonical mapping."""
    return {i: v for i, v in enumerate(decisions) if v}


def attach_policy(kernel: "Kernel", spec: ScheduleSpec) -> TieBreakPolicy:
    """Build ``spec``'s policy and attach it to ``kernel``."""
    policy = spec.build(kernel)
    kernel.set_tiebreak(policy)
    return policy

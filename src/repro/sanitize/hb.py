"""Happens-before race detection over simulated strands (schedsan layer 2).

A *strand* is one logical thread of control: a simulated
:class:`~repro.sim.process.Process`. Each strand carries a vector clock
(``{strand_id: count}``); clocks advance at every resume and every
message send, and merge along the paths that actually order execution:

* **scheduling edges** — every heap entry (callback, future trigger,
  timeout) is stamped with the scheduler's clock when it enters the
  heap; the dispatch that pops it inherits that clock, and any strand
  resumed inside the dispatch joins it. This single mechanism covers
  future triggers, lock grants, timer hand-offs and process forks
  (a process's kick-off callback carries its parent's clock).
* **message edges** — :meth:`Network.send` stamps the sender's clock by
  ``msg_id`` (riding the envelope the way ``span_id`` does, without
  widening the frozen Message), and the RPC layer joins it when the
  serving/ completing site picks the message up. This closes the gap
  the scheduling edges leave open: the greedy inbox drain handles
  messages its wake-up event did not carry.

Conflicting accesses (two accesses to the same per-site key, at least
one a write) whose clocks are *incomparable* are flagged as races: the
outcome depends on the same-timestamp tie-break, which is exactly what
``repro schedfuzz`` perturbs. Access keys are protocol-level: committed
copies (``("copy", item)``) and the session vector (``("session",)``);
lock-table and WAL traffic is recorded as ordering *notes* (context for
reports) rather than race-checked — concurrent lock requests and log
appends are the protocol's normal operation, serialized by design.

The detector additionally runs a **coroutine-atomicity check**: a strand
that reads a tracked key (recording the value token and its yield
epoch), yields, and later writes the same key while the token changed
underneath it — without re-reading — acted on a stale pre-yield read.
That is the dynamic companion of replint rule REP007.

Reports over-approximate on purpose: the protocol *tolerates* some
unordered interleavings (e.g. an operation racing a session install is
resolved by SessionMismatch + retry), so race reports are opt-in
diagnostics while the schedfuzz gate proper compares end-state
fingerprints and audit alerts, which are immune to benign races.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

from repro.sanitize import hooks

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel
    from repro.sim.process import Process

#: Sentinel: access carries no value token (no atomicity bookkeeping).
_UNSET = object()

Key = typing.Tuple[object, ...]
Clock = typing.Dict[int, int]


def clock_leq(a: Clock, b: Clock) -> bool:
    """True iff ``a`` happens-before-or-equals ``b`` (componentwise <=)."""
    return all(count <= b.get(sid, 0) for sid, count in a.items())


@dataclasses.dataclass(frozen=True)
class RaceReport:
    """One conflicting, happens-before-unordered access pair."""

    kind: str  # "write-write" | "read-write" | "atomicity"
    site: int
    key: Key
    first_where: str  # the earlier-recorded access site
    second_where: str  # the access that exposed the conflict
    time: float

    def render(self) -> str:
        return (
            f"[{self.kind}] site {self.site} key {self.key!r} @t={self.time:g}: "
            f"{self.first_where} || {self.second_where}"
        )


class _Strand:
    """Per-process clock + yield-epoch + pre-yield read bookkeeping."""

    __slots__ = ("sid", "name", "vc", "epoch", "reads")

    def __init__(self, sid: int, name: str) -> None:
        self.sid = sid
        self.name = name
        self.vc: Clock = {}
        #: Resume counter: incremented on every step, so ``epoch`` is
        #: strictly larger after any intervening yield.
        self.epoch = 0
        #: key -> (epoch, token, where) of the strand's last tokened read.
        self.reads: dict[tuple[int, Key], tuple[int, object, str]] = {}


class RaceDetector:
    """Vector-clock race + atomicity checker for one kernel run."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.races: list[RaceReport] = []
        #: Recent lock/WAL boundary notes: (time, site, key, where).
        self.notes: collections.deque = collections.deque(maxlen=256)
        self.accesses_checked = 0
        self._next_sid = 1
        self._strands: dict[int, _Strand] = {}  # id(process) -> strand
        self._current: _Strand | None = None
        #: Clock inherited by the dispatch currently running (the entry's
        #: scheduler clock); accesses outside any strand use it, gaining
        #: a lazily-allocated pseudo-strand component on first use.
        self._ambient: Clock = {}
        self._ambient_sid: int | None = None
        self._entry_vc: dict[int, Clock] = {}  # heap seq -> scheduler clock
        self._msg_vc: dict[int, Clock] = {}  # msg_id -> sender clock
        #: (site, key) -> {sid: (clock, where)} of unordered last accesses.
        self._writes: dict[tuple[int, Key], dict[int, tuple[Clock, str]]] = {}
        self._reads: dict[tuple[int, Key], dict[int, tuple[Clock, str]]] = {}
        self._tokens: dict[tuple[int, Key], object] = {}
        self._seen: set[tuple] = set()

    # -- clock context -------------------------------------------------------

    def _snap(self) -> Clock:
        """Copy of the clock governing whatever code is running now."""
        if self._current is not None:
            return dict(self._current.vc)
        return dict(self._ambient)

    def _context(self) -> tuple[int, Clock, _Strand | None]:
        """(strand id, live clock, strand) for the running context."""
        if self._current is not None:
            return self._current.sid, self._current.vc, self._current
        if self._ambient_sid is None:
            # First tracked access of a strand-less dispatch: give the
            # dispatch its own identity so a second, causally unrelated
            # dispatch at the same instant is not mistaken for it.
            self._ambient_sid = self._next_sid
            self._next_sid += 1
            self._ambient[self._ambient_sid] = (
                self._ambient.get(self._ambient_sid, 0) + 1
            )
        return self._ambient_sid, self._ambient, None

    # -- kernel seams --------------------------------------------------------

    def on_scheduled(self, seq: int) -> None:
        """A heap entry ``seq`` was pushed by the running context."""
        self._entry_vc[seq] = self._snap()

    def begin_dispatch(self, seq: int) -> None:
        """Entry ``seq`` is about to be processed."""
        self._ambient = self._entry_vc.pop(seq, {})
        self._ambient_sid = None
        self._current = None

    def end_dispatch(self) -> None:
        self._ambient = {}
        self._ambient_sid = None
        self._current = None

    # -- process seams -------------------------------------------------------

    def enter_step(self, process: "Process") -> None:
        """``process`` resumes inside the current dispatch."""
        strand = self._strands.get(id(process))
        if strand is None:
            strand = _Strand(self._next_sid, process.name)
            self._next_sid += 1
            self._strands[id(process)] = strand
        vc = strand.vc
        for sid, count in self._ambient.items():
            if count > vc.get(sid, 0):
                vc[sid] = count
        vc[strand.sid] = vc.get(strand.sid, 0) + 1
        strand.epoch += 1
        self._current = strand

    def exit_step(self, process: "Process") -> None:
        self._current = None

    # -- message seams -------------------------------------------------------

    def on_send(self, msg_id: int) -> None:
        """Stamp the sender's clock on message ``msg_id`` (send event)."""
        if self._current is not None:
            strand = self._current
            strand.vc[strand.sid] = strand.vc.get(strand.sid, 0) + 1
        self._msg_vc[msg_id] = self._snap()

    def join_message(self, msg_id: int) -> None:
        """The receiving site picked up message ``msg_id``."""
        vc = self._msg_vc.pop(msg_id, None)
        if not vc:
            return
        target = self._current.vc if self._current is not None else self._ambient
        for sid, count in vc.items():
            if count > target.get(sid, 0):
                target[sid] = count

    # -- access tracking -----------------------------------------------------

    def on_access(
        self,
        site: int,
        key: Key,
        kind: str,
        where: str,
        token: object = _UNSET,
    ) -> None:
        """Record one protocol-state access and race-check it.

        ``kind`` is ``"read"``/``"write"`` (race-checked) or ``"note"``
        (ordering context only: lock table, WAL append).
        """
        if kind == "note":
            self.notes.append((self.kernel.now, site, key, where))
            return
        self.accesses_checked += 1
        sid, vc, strand = self._context()
        k = (site, key)
        if kind == "read":
            self._check_against(self._writes.get(k), sid, vc, site, key,
                                "read-write", where)
            slot = self._reads.setdefault(k, {})
            slot[sid] = (dict(vc), where)
            if strand is not None and token is not _UNSET:
                strand.reads[k] = (strand.epoch, token, where)
            return
        # write
        self._check_against(self._writes.get(k), sid, vc, site, key,
                            "write-write", where)
        self._check_against(self._reads.get(k), sid, vc, site, key,
                            "read-write", where)
        if strand is not None:
            self._check_atomicity(strand, k, where)
        if token is not _UNSET:
            self._tokens[k] = token
        slot = self._writes.setdefault(k, {})
        # FastTrack-style pruning: accesses ordered before this write
        # can never race anything this write does not also race.
        for other_sid in [s for s, (ovc, _w) in slot.items()
                          if clock_leq(ovc, vc)]:
            del slot[other_sid]
        slot[sid] = (dict(vc), where)

    def _check_against(
        self,
        slot: dict[int, tuple[Clock, str]] | None,
        sid: int,
        vc: Clock,
        site: int,
        key: Key,
        kind: str,
        where: str,
    ) -> None:
        if not slot:
            return
        for other_sid, (other_vc, other_where) in slot.items():
            if other_sid == sid or clock_leq(other_vc, vc):
                continue
            self._report(kind, site, key, other_where, where)

    def _check_atomicity(self, strand: _Strand, k: tuple[int, Key],
                         where: str) -> None:
        record = strand.reads.get(k)
        if record is None:
            return
        epoch, token, read_where = record
        if epoch >= strand.epoch:
            return  # read and write in the same resume: no yield between
        current = self._tokens.get(k, _UNSET)
        if current is _UNSET or current == token:
            return  # nothing changed underneath the strand
        del strand.reads[k]
        self._report("atomicity", k[0], k[1], read_where, where)

    def _report(self, kind: str, site: int, key: Key,
                first_where: str, second_where: str) -> None:
        dedupe = (kind, site, key, first_where, second_where)
        if dedupe in self._seen:
            return
        self._seen.add(dedupe)
        self.races.append(RaceReport(
            kind=kind, site=site, key=key, first_where=first_where,
            second_where=second_where, time=self.kernel.now,
        ))

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        kinds = collections.Counter(r.kind for r in self.races)
        return {
            "races": len(self.races),
            "by_kind": dict(kinds),
            "accesses_checked": self.accesses_checked,
        }

    def render(self) -> str:
        if not self.races:
            return "schedsan: no happens-before races detected"
        lines = [f"schedsan: {len(self.races)} race report(s)"]
        lines.extend("  " + report.render() for report in self.races)
        return "\n".join(lines)


def attach_detector(kernel: "Kernel") -> RaceDetector:
    """Create a detector, wire it into ``kernel`` and the global seam."""
    detector = RaceDetector(kernel)
    kernel.set_sanitizer(detector)
    hooks.set_active(detector)
    return detector


def detach_detector(kernel: "Kernel | None" = None) -> None:
    """Tear the global seam down (and the kernel's, when given)."""
    hooks.clear()
    if kernel is not None:
        kernel.set_sanitizer(None)

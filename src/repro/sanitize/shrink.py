"""Delta-debugging shrinker for failing schedules (schedsan layer 3).

A divergent shuffled run leaves behind a dense decision list — one index
per same-timestamp choice point. Most of those choices are irrelevant to
the divergence. The shrinker minimizes the *sparse* form (the
non-canonical choices only; everything else is the FIFO default) with
classic ddmin: drop chunks of decisions, re-run the scenario under a
:class:`~repro.sanitize.policy.DirectedPolicy` with the survivors, and
keep any subset that still diverges, until no single decision can be
removed (or the run budget is exhausted — each probe is a full scenario
run, so the budget is the knob that keeps shrinking bounded).

Note the usual delta-debugging caveat: removing an early decision shifts
every later choice point, so a surviving decision's *ordinal* is an
anchor into the replayed schedule, not a stable event identity. The
minimal plan is always re-validated by construction — it is only ever
returned if its own directed replay still diverges.
"""

from __future__ import annotations

import typing

Plan = typing.Dict[int, int]


def ddmin(
    plan: Plan,
    diverges: typing.Callable[[Plan], bool],
    budget: int = 64,
) -> tuple[Plan, int]:
    """Minimize ``plan`` (sparse decisions) preserving ``diverges``.

    Returns ``(minimal_plan, probes_used)``. ``diverges(plan)`` must
    re-run the scenario under the directed replay of ``plan`` and
    report whether the divergence reproduces; it is assumed true for
    the input plan (the caller observed the failure).
    """
    keys = sorted(plan)
    probes = 0

    def probe(subset: typing.Sequence[int]) -> bool:
        nonlocal probes
        probes += 1
        return diverges({k: plan[k] for k in subset})

    granularity = 2
    while len(keys) >= 2 and probes < budget:
        chunk = max(1, len(keys) // granularity)
        reduced = False
        start = 0
        while start < len(keys) and probes < budget:
            candidate = keys[:start] + keys[start + chunk:]
            if candidate and probe(candidate):
                keys = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # Re-scan from the front at the same granularity.
                start = 0
                continue
            start += chunk
        if not reduced:
            if granularity >= len(keys):
                break
            granularity = min(len(keys), granularity * 2)
    # Final one-at-a-time pass (1-minimality) while budget lasts.
    index = 0
    while index < len(keys) and probes < budget:
        candidate = keys[:index] + keys[index + 1:]
        if candidate and probe(candidate):
            keys = candidate
        else:
            index += 1
    return {k: plan[k] for k in keys}, probes

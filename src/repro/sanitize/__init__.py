"""schedsan: schedule-space sanitizer for the simulation kernel.

Three layers (see docs/STATIC_ANALYSIS.md, "Dynamic sanitizers"):

1. :mod:`repro.sanitize.policy` — tie-break perturbation: pluggable
   policies over same-timestamp heap batches (canonical / seeded
   shuffle / directed replay), every decision recorded and replayable.
2. :mod:`repro.sanitize.hb` — happens-before race detection: vector
   clocks over strands, message edges via the rpc envelope, conflicting
   unordered accesses to copies/session state, plus a coroutine
   atomicity check (dynamic REP007).
3. :mod:`repro.sanitize.fuzz` — the ``repro schedfuzz`` harness:
   K perturbed schedules diffed against the canonical run (committed
   state fingerprint + audit-alert signature), ddmin shrinking of
   failing decision lists, replayable JSON artifacts.

This package ``__init__`` deliberately imports only the leaf modules:
:mod:`repro.storage.copies` (and other hooked modules) import
``repro.sanitize.hooks`` at module load, so pulling :mod:`.fuzz` (which
imports the scenario registry) here would create an import cycle.
"""

from repro.sanitize import hooks
from repro.sanitize.hb import RaceDetector, RaceReport, attach_detector, detach_detector
from repro.sanitize.policy import (
    STREAM_NAME,
    DirectedPolicy,
    ScheduleSpec,
    ShufflePolicy,
    TieBreakPolicy,
    attach_policy,
    directed_spec,
    sparse_decisions,
)

__all__ = [
    "hooks",
    "RaceDetector",
    "RaceReport",
    "attach_detector",
    "detach_detector",
    "STREAM_NAME",
    "DirectedPolicy",
    "ScheduleSpec",
    "ShufflePolicy",
    "TieBreakPolicy",
    "attach_policy",
    "directed_spec",
    "sparse_decisions",
]

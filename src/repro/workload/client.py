"""Client drivers: issue generated transactions and collect outcomes."""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import Interrupt, NotOperational, TransactionAborted
from repro.sim.process import Process
from repro.workload.generator import WorkloadGenerator

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.system import DatabaseSystem


@dataclasses.dataclass
class ClientStats:
    """Aggregated client-side outcomes (the availability metrics of E1)."""

    attempted: int = 0
    committed: int = 0
    aborted: int = 0
    refused: int = 0  # home site not operational
    latencies: list[float] = dataclasses.field(default_factory=list)
    # Read-only (beginRO) outcomes, tracked separately so experiments
    # can report RO vs RW availability and latency side by side.
    ro_attempted: int = 0
    ro_committed: int = 0
    ro_aborted: int = 0
    ro_refused: int = 0
    ro_latencies: list[float] = dataclasses.field(default_factory=list)

    @property
    def availability(self) -> float:
        """Fraction of attempts that committed."""
        if self.attempted == 0:
            return 1.0
        return self.committed / self.attempted

    @property
    def ro_availability(self) -> float:
        """Fraction of read-only attempts that committed."""
        if self.ro_attempted == 0:
            return 1.0
        return self.ro_committed / self.ro_attempted

    def merge(self, other: "ClientStats") -> None:
        self.attempted += other.attempted
        self.committed += other.committed
        self.aborted += other.aborted
        self.refused += other.refused
        self.latencies.extend(other.latencies)
        self.ro_attempted += other.ro_attempted
        self.ro_committed += other.ro_committed
        self.ro_aborted += other.ro_aborted
        self.ro_refused += other.ro_refused
        self.ro_latencies.extend(other.ro_latencies)


class ClientPool:
    """Closed-loop clients: each runs one transaction at a time.

    Each client is pinned to a home site (round-robin). A transaction
    attempt that aborts may be retried (``retries``); refusal because the
    home site is down counts against availability (the user's terminal
    is wired to that site — the paper's availability story is about
    *data*, so experiments usually pin clients to surviving sites, but
    E1 also reports the refused counts).

    Programs flagged ``read_only`` (the workload's ``ro_fraction`` knob)
    are routed through ``submit_ro`` — the lock-free snapshot path — and
    are attempted even while the home site is still RECOVERING, since
    that is exactly when snapshot reads earn their keep. Setting
    ``force_locking=True`` sends them through the ordinary locking path
    instead (the E11 baseline).
    """

    def __init__(
        self,
        system: "DatabaseSystem",
        generator: WorkloadGenerator,
        n_clients: int,
        think_time: float = 1.0,
        retries: int = 2,
        retry_delay: float = 5.0,
        home_sites: typing.Sequence[int] | None = None,
        force_locking: bool = False,
        per_client_streams: bool = False,
    ) -> None:
        self.system = system
        self.generator = generator
        self.n_clients = n_clients
        self.think_time = think_time
        self.retries = retries
        self.retry_delay = retry_delay
        self.force_locking = force_locking
        self.home_sites = list(home_sites) if home_sites is not None else list(
            system.cluster.site_ids
        )
        self.stats = ClientStats()
        # With per_client_streams each client draws programs from its
        # own forked generator, so *which* transactions a client runs is
        # independent of the order clients interleave — required for
        # schedule-space fuzzing (repro schedfuzz), where a perturbed
        # tie-break may reorder execution but must not change the
        # programs. The forks happen here, in construction order, so
        # they are a pure function of the generator's seed either way.
        if per_client_streams:
            self._generators = [generator.fork(i) for i in range(n_clients)]
        else:
            self._generators = [generator] * n_clients
        self._procs: list[Process] = []
        self._stopping = False

    def start(self, duration: float) -> list[Process]:
        """Launch the clients; each stops after ``duration`` virtual time."""
        deadline = self.system.kernel.now + duration
        for index in range(self.n_clients):
            home = self.home_sites[index % len(self.home_sites)]
            proc = self.system.kernel.process(
                self._client_loop(home, deadline, self._generators[index]),
                name=f"client{index}@{home}",
            )
            proc.defuse()
            self._procs.append(proc)
        return self._procs

    def _client_loop(
        self, home: int, deadline: float, generator: WorkloadGenerator
    ) -> typing.Generator:
        kernel = self.system.kernel
        while kernel.now < deadline:
            program = generator.next_program()
            read_only = getattr(program, "read_only", False)
            start = kernel.now
            self.stats.attempted += 1
            if read_only:
                self.stats.ro_attempted += 1
            outcome = yield from self._attempt(home, program)
            if outcome == "committed":
                self.stats.committed += 1
                self.stats.latencies.append(kernel.now - start)
                if read_only:
                    self.stats.ro_committed += 1
                    self.stats.ro_latencies.append(kernel.now - start)
            elif outcome == "refused":
                self.stats.refused += 1
                if read_only:
                    self.stats.ro_refused += 1
            else:
                self.stats.aborted += 1
                if read_only:
                    self.stats.ro_aborted += 1
            if self.think_time > 0:
                yield kernel.timeout(self.think_time)

    def _attempt(self, home: int, program) -> typing.Generator:  # noqa: C901 - state machine
        kernel = self.system.kernel
        snapshot_path = (
            getattr(program, "read_only", False) and not self.force_locking
        )
        for attempt in range(1 + self.retries):
            # The client terminal is colocated with its home site: this is
            # a local attach to check status + submit, not remote access.
            site = self.system.cluster.site(home)  # replint: disable=REP003
            if snapshot_path:
                # Snapshot reads only need the site powered on: a
                # RECOVERING home still answers them from its durable
                # stale cut (the TM refuses if the mvcc subsystem is off).
                if site.is_down:
                    return "refused"
                proc = self.system.tms[home].submit_ro(program)
                try:
                    yield proc
                    return "committed"
                except NotOperational:
                    return "refused"
                except Interrupt:
                    return "refused"  # home site crashed mid-read
                except TransactionAborted:
                    if attempt < self.retries:
                        yield kernel.timeout(self.retry_delay)
                continue
            if not site.is_operational:
                return "refused"
            # Submit through the site so a crash interrupts the attempt
            # (instead of stranding this client on a dead RPC future).
            proc = self.system.tms[home].submit(program)
            try:
                yield proc
                return "committed"
            except NotOperational:
                return "refused"
            except Interrupt:
                return "refused"  # home site crashed mid-transaction
            except TransactionAborted:
                if attempt < self.retries:
                    yield kernel.timeout(self.retry_delay)
        return "aborted"


class OpenLoopClient:
    """Open-loop driver: Poisson arrivals, independent of completions.

    Unlike :class:`ClientPool` (closed loop: each client waits for its
    transaction before thinking), an open-loop source keeps injecting at
    the offered rate even when the system is slow — the right model for
    measuring behaviour *under* overload or during outages, where a
    closed loop would self-throttle and hide the backlog.
    """

    def __init__(
        self,
        system: "DatabaseSystem",
        generator: WorkloadGenerator,
        rate: float,
        home_sites: typing.Sequence[int] | None = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self.system = system
        self.generator = generator
        self.rate = rate
        self.home_sites = list(home_sites) if home_sites is not None else list(
            system.cluster.site_ids
        )
        self.stats = ClientStats()
        self._rng = system.kernel.rng.stream("openloop")

    def start(self, duration: float) -> Process:
        """Inject transactions until ``duration`` elapses."""
        proc = self.system.kernel.process(self._arrivals(duration), name="open-loop")
        proc.defuse()
        return proc

    def _arrivals(self, duration: float) -> typing.Generator:
        kernel = self.system.kernel
        deadline = kernel.now + duration
        index = 0
        while True:
            gap = self._rng.expovariate(self.rate)
            if kernel.now + gap > deadline:
                return
            yield kernel.timeout(gap)
            home = self.home_sites[index % len(self.home_sites)]
            index += 1
            self.stats.attempted += 1
            # Local attach at the arrival's home site (same as ClientPool).
            site = self.system.cluster.site(home)  # replint: disable=REP003
            if not site.is_operational:
                self.stats.refused += 1
                continue
            start = kernel.now
            proc = self.system.tms[home].submit(self.generator.next_program())
            proc.add_callback(lambda ev, s=start: self._finished(ev, s))

    def _finished(self, event, start: float) -> None:
        if event.ok:
            self.stats.committed += 1
            self.stats.latencies.append(self.system.kernel.now - start)
        else:
            exc = event.exception
            if isinstance(exc, (NotOperational, Interrupt)):
                self.stats.refused += 1
            else:
                self.stats.aborted += 1

"""Workload and failure-injection generators for the experiments.

* :class:`~repro.workload.generator.WorkloadSpec` /
  :class:`~repro.workload.generator.WorkloadGenerator` — random
  transaction programs (read/write mixes, uniform or zipfian access,
  per-site clients, Poisson arrivals).
* :class:`~repro.workload.failures.FailureSchedule` — scripted or random
  crash/recover sequences, applied to a running system.
* :class:`~repro.workload.client.ClientPool` — open-loop and closed-loop
  client drivers collecting commit/abort/latency outcomes.
"""

from repro.workload.client import ClientPool, ClientStats, OpenLoopClient
from repro.workload.failures import FailureEvent, FailureSchedule
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

__all__ = [
    "ClientPool",
    "ClientStats",
    "FailureEvent",
    "FailureSchedule",
    "OpenLoopClient",
    "WorkloadGenerator",
    "WorkloadSpec",
]

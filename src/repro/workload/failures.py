"""Crash/recover schedules and their application to a running system."""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.sim.process import Process
from repro.sim.rng import RngRegistry

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.system import DatabaseSystem


@dataclasses.dataclass(frozen=True, slots=True)
class FailureEvent:
    """One scheduled action: crash or power a site (back) on."""

    time: float
    action: typing.Literal["crash", "power_on"]
    site_id: int


class FailureSchedule:
    """An ordered list of failure events plus constructors and an applier."""

    def __init__(self, events: typing.Iterable[FailureEvent]) -> None:
        self.events = sorted(events, key=lambda event: event.time)
        self.last_skipped: list[FailureEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> typing.Iterator[FailureEvent]:
        return iter(self.events)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def single_outage(
        cls, site_id: int, crash_at: float, downtime: float
    ) -> "FailureSchedule":
        return cls(
            [
                FailureEvent(crash_at, "crash", site_id),
                FailureEvent(crash_at + downtime, "power_on", site_id),
            ]
        )

    @classmethod
    def periodic(
        cls,
        site_id: int,
        first_crash: float,
        period: float,
        downtime: float,
        horizon: float,
    ) -> "FailureSchedule":
        """Crash every ``period``, stay down ``downtime``, until horizon."""
        if downtime >= period:
            raise ValueError("downtime must be shorter than the period")
        events = []
        time = first_crash
        while time < horizon:
            events.append(FailureEvent(time, "crash", site_id))
            events.append(FailureEvent(time + downtime, "power_on", site_id))
            time += period
        return cls(events)

    #: RngRegistry stream name for schedule construction (see
    #: ``harness.placement`` for the precedent).
    RNG_STREAM = "workload.failures"

    @classmethod
    def random_failures(
        cls,
        site_ids: typing.Sequence[int],
        rng: random.Random | int,
        horizon: float,
        mtbf: float,
        mttr: float,
        min_up_sites: int = 1,
    ) -> "FailureSchedule":
        """Exponential times-to-failure and times-to-repair per site.

        ``rng`` may be a seed, which draws from the registry stream
        ``"workload.failures"`` — the same seed then yields the same
        schedule regardless of what else an experiment draws, instead of
        entangling the crash times with every other ``random.Random``
        consumer sharing the object. Passing a ``random.Random`` is
        still supported for callers managing their own streams.

        Guarantees (by construction, tracking scheduled state) that at
        least ``min_up_sites`` sites are up at any instant — the paper's
        algorithm requires one operational site for recovery, and total
        failure needs the out-of-band cold start.
        """
        if isinstance(rng, int):
            rng = RngRegistry(rng).stream(cls.RNG_STREAM)
        events: list[FailureEvent] = []
        next_action: list[tuple[float, str, int]] = [
            (rng.expovariate(1.0 / mtbf), "crash", site_id) for site_id in site_ids
        ]
        up = {site_id: True for site_id in site_ids}
        while next_action:
            next_action.sort()
            time, action, site_id = next_action.pop(0)
            if action == "crash":
                if time >= horizon:
                    continue  # no new outages past the horizon
                if sum(up.values()) <= min_up_sites:
                    # Postpone this crash until someone recovers.
                    next_action.append((time + mttr, "crash", site_id))
                    continue
                up[site_id] = False
                events.append(FailureEvent(time, "crash", site_id))
                next_action.append((time + rng.expovariate(1.0 / mttr), "power_on", site_id))
            else:
                # Repairs are emitted even past the horizon: every crash
                # this schedule injects is eventually repaired (the
                # paper's model — sites fail and *recover*). Dropping an
                # owed repair used to leave a site down from early in
                # the run until the experiment's quiesce, which reads as
                # a permanent site loss, not an outage — and wedges any
                # in-doubt 2PC participant whose coordinator it was.
                up[site_id] = True
                events.append(FailureEvent(time, "power_on", site_id))
                next_action.append((time + rng.expovariate(1.0 / mtbf), "crash", site_id))
        return cls(events)

    # -- application -----------------------------------------------------------------

    def apply(self, system: "DatabaseSystem", min_operational: int = 1) -> Process:
        """Drive the schedule against ``system`` as a background process.

        ``min_operational`` is a runtime guard: a crash that would leave
        fewer than this many *operational* sites is skipped. The static
        ``min_up_sites`` guarantee of :meth:`random_failures` counts
        powered sites, but a powered site may still be mid-recovery —
        and total operational failure is unrecoverable without the
        out-of-band cold start, which experiments don't want to trip by
        accident. Skipped events are collected on ``self.last_skipped``.
        """
        skipped: list[FailureEvent] = []
        self.last_skipped = skipped

        def driver():
            for event in self.events:
                delay = event.time - system.kernel.now
                if delay > 0:
                    yield system.kernel.timeout(delay)
                # The failure injector is the scenario's hand of fate, not
                # protocol code: it crashes/restarts sites from outside.
                site = system.cluster.site(event.site_id)  # replint: disable=REP003
                if event.action == "crash":
                    if site.is_down:
                        continue
                    operational = system.cluster.operational_sites()
                    if (
                        site.is_operational
                        and len(operational) <= min_operational
                    ):
                        skipped.append(event)
                        continue
                    system.crash(event.site_id)
                else:
                    if site.is_down:
                        system.power_on(event.site_id)

        return system.kernel.process(driver(), name="failure-schedule")

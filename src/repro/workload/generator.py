"""Random transaction-program generation."""

from __future__ import annotations

import dataclasses
import math
import random
import typing


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Shape of the synthetic workload.

    Attributes
    ----------
    n_items:
        Database size; items are named ``X0 .. X{n-1}``.
    ops_per_txn:
        Logical operations per transaction.
    write_fraction:
        Probability that an individual operation is a WRITE.
    zipf_s:
        Skew of the access distribution (0 = uniform; ~0.8-1.2 = typical
        hotspot skew). Item 0 is the hottest.
    read_modify_write:
        If True, writes are preceded by a read of the same item (the
        bank/inventory pattern); otherwise blind writes.
    ro_fraction:
        Probability that a whole transaction is a read-only *snapshot*
        transaction (``beginRO``): the client routes it through
        ``submit_ro`` where it reads a pinned committed snapshot with no
        locks and no 2PC. 0 disables the path entirely (and draws
        nothing from the RNG, so existing workloads replay unchanged).
    """

    n_items: int = 32
    ops_per_txn: int = 4
    write_fraction: float = 0.3
    zipf_s: float = 0.0
    read_modify_write: bool = True
    ro_fraction: float = 0.0

    def item_names(self) -> list[str]:
        return [f"X{i}" for i in range(self.n_items)]

    def initial_items(self, value: object = 0) -> dict[str, object]:
        return {name: value for name in self.item_names()}


class ZipfSampler:
    """Zipf-distributed item indices via inverse CDF (s=0 is uniform)."""

    def __init__(self, n: int, s: float) -> None:
        if n < 1:
            raise ValueError("need at least one item")
        self.n = n
        self.s = s
        weights = [1.0 / math.pow(rank + 1, s) for rank in range(n)]
        total = sum(weights)
        self._cdf: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo


class WorkloadGenerator:
    """Builds random transaction programs from a spec.

    Deterministic given the RNG stream passed in; each generated program
    is self-contained (captures its op list at creation).
    """

    def __init__(self, spec: WorkloadSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng
        self._sampler = ZipfSampler(spec.n_items, spec.zipf_s)
        self.generated = 0

    def fork(self, index: int) -> "WorkloadGenerator":
        """An independent, deterministically-seeded child generator.

        Forking draws one seed from this generator's stream, so a set
        of children created in a fixed order (client pool construction)
        is itself a pure function of the parent's seed. Each child then
        evolves independently: *which* programs a consumer draws no
        longer depends on the order consumers happen to interleave —
        the property ``repro schedfuzz`` needs, where a perturbed
        schedule may reorder execution but must never change the
        program being executed.
        """
        return WorkloadGenerator(
            self.spec, random.Random(self.rng.getrandbits(64) ^ index)
        )

    def _pick_items(self, count: int) -> list[str]:
        chosen: list[int] = []
        # Distinct items per transaction: avoids trivial self-conflicts
        # and matches how benchmarks (TPC-like) draw access sets.
        while len(chosen) < min(count, self.spec.n_items):
            index = self._sampler.sample(self.rng)
            if index not in chosen:
                chosen.append(index)
        return [f"X{i}" for i in sorted(chosen)]

    def next_program(self) -> typing.Callable:
        """A fresh random transaction program.

        Programs flagged ``read_only`` must be routed via ``submit_ro``
        (they call the snapshot-read context API); the clients in
        :mod:`repro.workload.client` check the flag.
        """
        spec = self.spec
        # Guarded draw: workloads with ro_fraction == 0 consume exactly
        # the same RNG sequence as before the knob existed, keeping
        # e1-e10 replays byte-identical.
        if spec.ro_fraction > 0 and self.rng.random() < spec.ro_fraction:
            return self._next_ro_program()
        ops: list[tuple[str, str]] = []
        items = self._pick_items(spec.ops_per_txn)
        for item in items:
            if self.rng.random() < spec.write_fraction:
                ops.append(("w", item))
            else:
                ops.append(("r", item))
        token = self.generated
        self.generated += 1

        def program(ctx):
            results = {}
            for op, item in ops:
                if op == "r":
                    results[item] = yield from ctx.read(item)
                else:
                    if spec.read_modify_write:
                        current = yield from ctx.read(item)
                        base = current if isinstance(current, int) else 0
                        yield from ctx.write(item, base + 1)
                    else:
                        yield from ctx.write(item, token)
            return results

        return program

    def _next_ro_program(self) -> typing.Callable:
        """A read-only snapshot program over a random item batch."""
        items = tuple(self._pick_items(self.spec.ops_per_txn))
        self.generated += 1

        def ro_program(ctx):
            values = yield from ctx.read_many(items)
            return dict(zip(items, values))

        ro_program.read_only = True  # type: ignore[attr-defined]
        return ro_program

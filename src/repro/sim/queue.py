"""An unbounded FIFO queue connecting simulated processes."""

from __future__ import annotations

import collections
import typing

from repro.sim.events import Future

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel


class Queue:
    """FIFO of items with future-based ``get``.

    ``put`` never blocks (the queue is unbounded, matching a network inbox);
    ``get`` returns a future that succeeds with the next item, waking
    waiters in FIFO order.
    """

    __slots__ = ("kernel", "name", "_get_name", "_items", "_getters")

    def __init__(self, kernel: "Kernel", name: str = "") -> None:
        self.kernel = kernel
        self.name = name
        self._get_name = f"get({name})"  # precomputed: get() is a hot path
        self._items: collections.deque[object] = collections.deque()
        self._getters: collections.deque[Future] = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: object) -> None:
        """Append ``item``; delivers immediately to a waiting getter if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:  # skip cancelled waiters
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Future:
        """Return a future for the next item.

        If the waiting process is interrupted away before an item arrives,
        the getter is forgotten (see :meth:`Future.on_abandoned`) so it
        cannot swallow an item meant for a later consumer.
        """
        future = Future(self.kernel, name=self._get_name)
        if self._items:
            future.succeed(self._items.popleft())
        else:
            self._getters.append(future)
            future.on_abandoned(self._forget_getter)
        return future

    def get_nowait(self) -> object:
        """Pop the next item without waiting; raises IndexError when empty.

        Lets a consumer that just woke up drain everything already
        delivered in one go instead of paying one kernel event per item.
        """
        return self._items.popleft()

    def _forget_getter(self, future: Future) -> None:
        try:
            self._getters.remove(future)
        except ValueError:
            pass

    def clear(self) -> None:
        """Drop all queued items (e.g. when a site crashes)."""
        self._items.clear()

    def cancel_waiters(self) -> None:
        """Forget all waiting getters; their futures never trigger.

        Used when the consumer of this queue is being torn down (site
        crash): a stale getter left behind would otherwise steal the first
        item delivered after a restart.
        """
        self._getters.clear()

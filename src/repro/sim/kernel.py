"""The simulation event loop and virtual clock."""

from __future__ import annotations

import heapq
import typing

from repro.errors import SimError, UnhandledFailure
from repro.sim.events import F_CANCELLED, Future, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry


class Callback:
    """A lightweight scheduled callback: a heap entry, not a future.

    Hot paths (``call_soon``, RPC timeout expiry, lock wait backstops)
    schedule thousands of these per simulated second; unlike a
    :class:`~repro.sim.events.Future` there is no name, no value, no
    callback list and no unhandled-failure bookkeeping — just a function
    and its arguments.

    ``cancel()`` is lazy: the entry stays in the heap and is skipped when
    it reaches the top, which is O(1) instead of an O(n) re-heapify. This
    is what makes per-call RPC timeouts affordable — the common case is a
    reply arriving first and the timer dying untouched.
    """

    __slots__ = ("fn", "args", "_flags")

    #: Class-level sentinel: the profiled drain loop reads
    #: ``entry._callbacks`` on every heap entry with a single attribute
    #: load to form the run signature. ``None`` here means "a Callback —
    #: use ``entry.fn`` instead" (a Future's ``_callbacks`` is never
    #: ``None`` while it sits in the heap; ``_process`` only clears it
    #: after the entry is popped).
    _callbacks: typing.Any = None

    def __init__(
        self, fn: typing.Callable[..., None], args: tuple[object, ...]
    ) -> None:
        self.fn = fn
        self.args = args
        self._flags = 0

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return (self._flags & F_CANCELLED) != 0

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call repeatedly."""
        self._flags = F_CANCELLED

    def _process(self) -> None:
        self.fn(*self.args)

    def __repr__(self) -> str:
        state = "cancelled" if self._flags & F_CANCELLED else "scheduled"
        return f"<Callback {getattr(self.fn, '__name__', self.fn)!r} {state}>"


class Kernel:
    """A deterministic discrete-event scheduler.

    Time is a float starting at 0.0 and only moves forward. Events scheduled
    for the same instant are processed in scheduling order (FIFO), which
    makes runs fully deterministic for a fixed seed.

    Parameters
    ----------
    seed:
        Master seed for the :class:`~repro.sim.rng.RngRegistry` exposed as
        :attr:`rng`.
    """

    __slots__ = (
        "_now", "_heap", "_seq", "rng", "_unhandled", "events_processed",
        "_prof", "_tiebreak", "_sanitize",
    )

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Future | Callback]] = []
        self._seq = 0
        self.rng = RngRegistry(seed)
        self._unhandled: list[Future] = []
        #: Count of entries processed by :meth:`step` (skipped cancelled
        #: entries excluded); the events/sec basis of the perf trajectory.
        self.events_processed = 0
        #: The attached host-CPU profiler
        #: (:class:`repro.obs.profiler.HostProfiler`), or None. When set,
        #: :meth:`run`/:meth:`step` dispatch through the profiled path,
        #: reading the profiler's host clock at run boundaries — the
        #: kernel itself never imports a wall clock (REP001).
        self._prof: typing.Any = None
        #: Attached tie-break policy
        #: (:class:`repro.sanitize.policy.TieBreakPolicy`), or None. When
        #: set, same-timestamp heap batches are resolved by the policy
        #: instead of insertion order; the default ``None`` path is
        #: byte-identical to the unperturbed kernel.
        self._tiebreak: typing.Any = None
        #: Attached schedule sanitizer
        #: (:class:`repro.sanitize.hb.RaceDetector`), or None. When set,
        #: every heap push and every dispatch is reported so the detector
        #: can thread vector clocks along scheduling edges.
        self._sanitize: typing.Any = None

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    # -- scheduling ------------------------------------------------------------

    def _schedule(self, event: Future | Callback, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1
        if self._sanitize is not None:
            self._sanitize.on_scheduled(self._seq - 1)

    def schedule_callback(
        self, delay: float, fn: typing.Callable[..., None], *args: object
    ) -> Callback:
        """Run ``fn(*args)`` after ``delay``; returns a cancellable handle.

        This is the cheap path for internal machinery (timers that are
        usually cancelled, zero-delay dispatch). Processes cannot wait on
        the handle — use :meth:`timeout` for that.
        """
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        entry = Callback(fn, args)
        heapq.heappush(self._heap, (self._now + delay, self._seq, entry))
        self._seq += 1
        if self._sanitize is not None:
            self._sanitize.on_scheduled(self._seq - 1)
        return entry

    def call_soon(
        self, fn: typing.Callable[..., None], *args: object, delay: float = 0.0
    ) -> Callback:
        """Run ``fn(*args)`` at the current time (or after ``delay``)."""
        return self.schedule_callback(delay, fn, *args)

    # -- sanitizer seams -----------------------------------------------------

    def set_tiebreak(self, policy: typing.Any) -> None:
        """Attach (or with ``None`` detach) a same-timestamp tie-break policy.

        The policy (:mod:`repro.sanitize.policy`) decides which member of
        a batch of live entries ready at the same instant runs next.
        Entries scheduled at distinct times, and entries scheduled *by*
        a running dispatch (they did not exist when the batch formed),
        are never reordered — only genuinely concurrent ties are.
        """
        self._tiebreak = policy

    def set_sanitizer(self, sanitizer: typing.Any) -> None:
        """Attach (or with ``None`` detach) a schedule sanitizer.

        The sanitizer (:class:`repro.sanitize.hb.RaceDetector`) is told
        about every heap push (:meth:`~RaceDetector.on_scheduled`) and
        bracketed around every dispatch, which is how happens-before
        scheduling edges are threaded.
        """
        self._sanitize = sanitizer

    # -- factories ---------------------------------------------------------------

    def event(self, name: str = "") -> Future:
        """Create a new pending future."""
        return Future(self, name=name)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create a future that succeeds ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: typing.Generator[Future, object, object], name: str = ""
    ) -> Process:
        """Start a new simulated process running ``generator``."""
        return Process(self, generator, name=name)

    # -- execution -----------------------------------------------------------

    def peek(self) -> float:
        """Time of the next live scheduled event, or ``inf`` if none.

        Cancelled entries at the top of the heap are discarded as a side
        effect (they are invisible either way).
        """
        heap = self._heap
        while heap and heap[0][2]._flags & F_CANCELLED:
            heapq.heappop(heap)
        return heap[0][0] if heap else float("inf")

    def step(self) -> None:
        """Process exactly one event, advancing the clock to its time.

        Cancelled entries encountered on the way are discarded without
        advancing the clock; if only cancelled entries remained, the call
        returns having processed nothing.
        """
        if self._tiebreak is not None or self._sanitize is not None:
            self._step_sanitized()
            return
        heap = self._heap
        if not heap:
            raise SimError("step() on an empty event queue")
        pop = heapq.heappop
        while True:
            when, _seq, entry = pop(heap)
            if not entry._flags & F_CANCELLED:
                break
            if not heap:
                return  # drained nothing but dead timers
        self._now = when
        self.events_processed += 1
        prof = self._prof
        if prof is None:
            entry._process()
        else:
            sig = entry._callbacks
            if sig is None:
                sig = entry.fn  # type: ignore[union-attr]
            start = prof.clock()
            try:
                entry._process()
            finally:
                elapsed = prof.clock() - start
                prof.charge(sig, entry, elapsed, 1)
                prof.dispatch_wall_s += elapsed
        if self._unhandled:
            self._raise_unhandled()

    def run(self, until: float | Future | None = None) -> object:
        """Run the event loop.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a float — run until virtual time reaches it (clock ends exactly
          there);
        * a :class:`Future` — run until it is processed, returning its value
          (or raising its exception).
        """
        if isinstance(until, Future):
            return self._run_until_event(until)
        if self._tiebreak is not None or self._sanitize is not None:
            # Sanitized runs take precedence over profiling: the two
            # drain loops do not compose, and perturbed schedules would
            # skew host-CPU attribution anyway.
            return self._run_sanitized(until)
        if self._prof is not None:
            return self._run_profiled(until)
        # Inlined drain loop: this is the innermost loop of every
        # simulation, so the per-event cost of calling step() (attribute
        # lookups, the empty-heap recheck) is paid millions of times.
        heap = self._heap
        pop = heapq.heappop
        while heap:
            if until is not None and heap[0][0] > until:
                break
            when, _seq, entry = pop(heap)
            if entry._flags & F_CANCELLED:
                continue
            self._now = when
            self.events_processed += 1
            entry._process()
            if self._unhandled:
                self._raise_unhandled()
        if until is not None and self._now < until:
            self._now = float(until)
        return None

    def _run_profiled(self, until: float | None) -> object:
        """The drain loop with a host-CPU profiler attached.

        Identical event semantics to :meth:`run`; the additions are
        host-clock reads at *run boundaries*. A run is a maximal
        stretch of consecutive events sharing one dispatch signature —
        ``entry._callbacks`` (the waiter-list identity of a Future;
        the class sentinel redirects a Callback to its ``fn``) — so a
        storm of bare timeouts or repeated resumes of one process costs
        two clock reads total, not two per event. That batching is what
        keeps the profiled bench twin under the <5% overhead gate, and
        because charges tile the loop's wall time exactly (each
        boundary's clock read both closes one run and opens the next),
        the per-subsystem ``cpu_s`` sum to ``dispatch_wall_s`` up to
        float rounding.
        """
        prof = self._prof
        heap = self._heap
        pop = heapq.heappop
        clock = prof.clock
        charge = prof.charge
        cur_sig: typing.Any = None
        cur_entry: typing.Any = None
        run_start = self.events_processed
        loop_start = prev = clock()
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    break
                when, _seq, entry = pop(heap)
                if entry._flags & F_CANCELLED:
                    continue
                sig = entry._callbacks
                if sig is None:
                    sig = entry.fn  # type: ignore[union-attr]
                if sig is not cur_sig:
                    if cur_entry is None:
                        # First live event: open the run without a clock
                        # read so the pre-loop sliver lands in it and
                        # the charges still tile the whole loop.
                        cur_sig = sig
                        cur_entry = entry
                    else:
                        now = clock()
                        charge(cur_sig, cur_entry, now - prev,
                               self.events_processed - run_start)
                        prev = now
                        cur_sig = sig
                        cur_entry = entry
                        run_start = self.events_processed
                self._now = when
                self.events_processed += 1
                entry._process()
                if self._unhandled:
                    self._raise_unhandled()
        finally:
            now = clock()
            if cur_entry is not None:
                charge(cur_sig, cur_entry, now - prev,
                       self.events_processed - run_start)
            else:
                # No live events: the loop still cost a sliver of wall
                # time; book it against the kernel so the charges keep
                # summing to dispatch_wall_s exactly.
                charge(None, None, now - prev, 0)
            prof.dispatch_wall_s += now - loop_start
        if until is not None and self._now < until:
            self._now = float(until)
        return None

    def _pop_perturbed(
        self, until: float | None = None
    ) -> tuple[float, int, "Future | Callback"] | None:
        """Pop the next live entry, honoring the tie-break policy.

        Returns ``(when, seq, entry)``, or ``None`` when the heap is
        drained (or holds only events past ``until``). The ``until``
        bound is re-checked here — not just by the caller — because the
        canonical drain loop re-checks ``heap[0]`` before every pop and
        this path must never process events the canonical one would not.

        Only entries *simultaneously live at the same instant* form a
        batch: the first live pop anchors the timestamp, every further
        live entry at that exact time joins, and the policy picks one.
        The rest go back under their original ``(time, seq)`` keys, so a
        canonical (index-0) choice reproduces FIFO order exactly.
        """
        heap = self._heap
        pop = heapq.heappop
        while True:
            if not heap or (until is not None and heap[0][0] > until):
                return None
            when, seq, entry = pop(heap)
            if not entry._flags & F_CANCELLED:
                break
        policy = self._tiebreak
        if policy is None or not heap or heap[0][0] != when:
            return when, seq, entry
        batch = [(seq, entry)]
        while heap and heap[0][0] == when:
            _when2, seq2, entry2 = pop(heap)
            if not entry2._flags & F_CANCELLED:
                batch.append((seq2, entry2))
        if len(batch) == 1:
            return when, seq, entry
        index = policy.choose(len(batch))
        chosen_seq, chosen = batch.pop(index)
        push = heapq.heappush
        for seq2, entry2 in batch:
            push(heap, (when, seq2, entry2))
        return when, chosen_seq, chosen

    def _step_sanitized(self) -> None:
        """One :meth:`step` with the tie-break policy / sanitizer engaged."""
        if not self._heap:
            raise SimError("step() on an empty event queue")
        popped = self._pop_perturbed()
        if popped is None:
            return  # drained nothing but dead timers
        when, seq, entry = popped
        self._now = when
        self.events_processed += 1
        san = self._sanitize
        if san is None:
            entry._process()
        else:
            san.begin_dispatch(seq)
            try:
                entry._process()
            finally:
                san.end_dispatch()
        if self._unhandled:
            self._raise_unhandled()

    def _run_sanitized(self, until: float | None) -> object:
        """The drain loop with the tie-break policy / sanitizer engaged.

        Same event semantics as :meth:`run` modulo the policy's choice
        among same-instant ties; not speed-tuned — sanitized runs are a
        diagnostic mode, never the measured path.
        """
        san = self._sanitize
        while True:
            popped = self._pop_perturbed(until)
            if popped is None:
                break
            when, seq, entry = popped
            self._now = when
            self.events_processed += 1
            if san is None:
                entry._process()
            else:
                san.begin_dispatch(seq)
                try:
                    entry._process()
                finally:
                    san.end_dispatch()
            if self._unhandled:
                self._raise_unhandled()
        if until is not None and self._now < until:
            self._now = float(until)
        return None

    def _run_until_event(self, until: Future) -> object:
        # The caller observes success/failure through ``until.value`` below,
        # so a failure of the target is not "unhandled".
        until.defuse()
        while not until.processed:
            if not self._heap:
                raise SimError(f"event queue exhausted before {until!r} was processed")
            self.step()
        return until.value

    def _report_unhandled(self, event: Future) -> None:
        self._unhandled.append(event)

    def _raise_unhandled(self) -> typing.NoReturn:
        failed = list(self._unhandled)
        self._unhandled.clear()
        primary = failed[0]
        if len(failed) == 1:
            message = f"unobserved failure in {primary!r}"
        else:
            others = ", ".join(repr(event) for event in failed[1:])
            message = (
                f"{len(failed)} unobserved failures in one event: "
                f"{primary!r} (also: {others})"
            )
        error = UnhandledFailure(message)
        error.failures = tuple(event.exception for event in failed)  # type: ignore[attr-defined]
        raise error from primary.exception

"""The simulation event loop and virtual clock."""

from __future__ import annotations

import heapq
import typing

from repro.errors import SimError, UnhandledFailure
from repro.sim.events import Future, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry


class Kernel:
    """A deterministic discrete-event scheduler.

    Time is a float starting at 0.0 and only moves forward. Events scheduled
    for the same instant are processed in scheduling order (FIFO), which
    makes runs fully deterministic for a fixed seed.

    Parameters
    ----------
    seed:
        Master seed for the :class:`~repro.sim.rng.RngRegistry` exposed as
        :attr:`rng`.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Future]] = []
        self._seq = 0
        self.rng = RngRegistry(seed)
        self._unhandled: list[Future] = []

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    # -- scheduling ------------------------------------------------------------

    def _schedule(self, event: Future, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    def call_soon(
        self, fn: typing.Callable[..., None], *args: object, delay: float = 0.0
    ) -> Future:
        """Run ``fn(*args)`` at the current time (or after ``delay``)."""
        event = Future(self, name=f"call_soon({getattr(fn, '__name__', fn)!r})")
        event.add_callback(lambda _ev: fn(*args))
        event.succeed(delay=delay)
        return event

    # -- factories ---------------------------------------------------------------

    def event(self, name: str = "") -> Future:
        """Create a new pending future."""
        return Future(self, name=name)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create a future that succeeds ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: typing.Generator, name: str = "") -> Process:
        """Start a new simulated process running ``generator``."""
        return Process(self, generator, name=name)

    # -- execution -----------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event, advancing the clock to its time."""
        if not self._heap:
            raise SimError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        event._process()
        if self._unhandled:
            failed = self._unhandled.pop()
            self._unhandled.clear()
            exc = failed.exception
            raise UnhandledFailure(f"unobserved failure in {failed!r}") from exc

    def run(self, until: float | Future | None = None) -> object:
        """Run the event loop.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a float — run until virtual time reaches it (clock ends exactly
          there);
        * a :class:`Future` — run until it is processed, returning its value
          (or raising its exception).
        """
        if isinstance(until, Future):
            return self._run_until_event(until)
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            self.step()
        if until is not None and self._now < until:
            self._now = float(until)
        return None

    def _run_until_event(self, until: Future) -> object:
        # The caller observes success/failure through ``until.value`` below,
        # so a failure of the target is not "unhandled".
        until.defuse()
        while not until.processed:
            if not self._heap:
                raise SimError(f"event queue exhausted before {until!r} was processed")
            self.step()
        return until.value

    def _report_unhandled(self, event: Future) -> None:
        self._unhandled.append(event)

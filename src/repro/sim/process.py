"""Simulated processes: generators that yield futures.

A process body is a generator. Each ``yield future`` suspends the process
until the future is processed; the yield expression evaluates to the
future's value, or re-raises the future's exception inside the generator so
normal ``try/except`` works::

    def worker(kernel):
        yield kernel.timeout(5)
        try:
            reply = yield rpc_call(...)
        except RpcTimeout:
            ...

A :class:`Process` is itself a :class:`~repro.sim.events.Future` that
succeeds with the generator's return value, so processes can wait on each
other by yielding them.
"""

from __future__ import annotations

import typing

from repro.errors import Interrupt, SimError
from repro.sim.events import Future

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel


class Process(Future):
    """A simulated thread of control driving a generator."""

    __slots__ = ("_generator", "_waiting_on")

    def __init__(
        self,
        kernel: "Kernel",
        generator: typing.Generator[Future, object, object],
        name: str = "",
    ) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process body must be a generator, got {type(generator).__name__}; "
                "did you forget a 'yield'?"
            )
        super().__init__(kernel, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Future | None = None
        # Kick off on a scheduled callback so creation order, not call
        # depth, determines execution order.
        kernel.schedule_callback(0.0, self._start)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`~repro.errors.Interrupt` into the process.

        The process is detached from whatever future it was waiting on (the
        wait may be re-issued by the handler). Interrupting a finished
        process is an error; interrupting a process that is about to resume
        delivers the interrupt first.
        """
        if not self.is_alive:
            raise SimError(f"cannot interrupt finished process {self!r}")
        self.kernel.schedule_callback(0.0, self._deliver_interrupt, cause)

    def _start(self) -> None:
        if not self.is_alive:
            return  # interrupted (and failed) before its first step
        self._step(lambda: self._generator.send(None))

    def _deliver_interrupt(self, cause: object) -> None:
        if not self.is_alive:
            return  # finished between scheduling and delivery
        if self._waiting_on is not None:
            target = self._waiting_on
            self._waiting_on = None
            target.remove_callback(self._resume)
            target._notify_abandoned_if_orphan()
        self._step(lambda: self._generator.throw(Interrupt(cause)))

    def _resume(self, event: Future) -> None:
        if not self.is_alive:
            return  # stale wakeup delivered after the process finished
        if self._waiting_on is not None and event is not self._waiting_on:
            return  # stale wakeup after an interrupt re-targeted the wait
        self._waiting_on = None
        if event.ok:
            self._step(lambda: self._generator.send(event.value))
        else:
            exc = event.exception
            assert exc is not None
            self._step(lambda: self._generator.throw(exc))

    def _step(self, advance: typing.Callable[[], object]) -> None:
        san = self.kernel._sanitize
        if san is None:
            self._advance(advance)
            return
        # Bracket the resume so the sanitizer can attribute every state
        # access inside it to this strand (and tick its vector clock).
        san.enter_step(self)
        try:
            self._advance(advance)
        finally:
            san.exit_step(self)

    def _advance(self, advance: typing.Callable[[], object]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - failure propagates via the future
            self.fail(exc)
            return
        if not isinstance(target, Future):
            self.fail(
                SimError(f"process {self.name!r} yielded {target!r}, expected a Future")
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)

"""Discrete-event simulation kernel.

A small, deterministic, generator-based DES in the style of simpy, built
from scratch so the whole stack is self-contained:

* :class:`~repro.sim.kernel.Kernel` — the event loop and virtual clock.
* :class:`~repro.sim.events.Future` — one-shot events carrying a value or
  an exception.
* :class:`~repro.sim.events.Timeout` — a future that fires after a delay.
* :class:`~repro.sim.process.Process` — a simulated thread of control,
  written as a Python generator that yields futures.
* :class:`~repro.sim.queue.Queue` — an unbounded FIFO connecting processes.
* :class:`~repro.sim.rng.RngRegistry` — named, independently seeded random
  streams so component randomness is reproducible and decoupled.

Determinism: given a seed, every run produces the identical event order.
Ties in time are broken by scheduling sequence number.
"""

from repro.sim.events import AllOf, AnyOf, Future, Timeout
from repro.sim.kernel import Callback, Kernel
from repro.sim.process import Process
from repro.sim.queue import Queue
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Callback",
    "Future",
    "Kernel",
    "Process",
    "Queue",
    "RngRegistry",
    "Timeout",
]

"""Named, independently seeded random streams.

Components ask for a stream by name (``rng.stream("net.latency")``); each
name yields an independent :class:`random.Random` derived deterministically
from the master seed. Adding a new consumer of randomness therefore never
perturbs the draws seen by existing consumers — essential for reproducible
experiments and for bisecting behaviour changes.
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """Factory of deterministic per-name random streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

"""One-shot events (futures) for the simulation kernel.

A :class:`Future` is created pending, later *triggered* exactly once with
either a value (:meth:`Future.succeed`) or an exception
(:meth:`Future.fail`), and then *processed* by the kernel: its callbacks run
at the virtual time the trigger was scheduled for.

Processes wait on futures by yielding them; composite futures
(:class:`AllOf`, :class:`AnyOf`) let a process wait for several at once.
"""

from __future__ import annotations

import typing
from heapq import heappush as _heappush

from repro.errors import SimError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel

_PENDING = object()

#: Shared sentinel for "no callbacks registered yet". Futures are created
#: by the hundred-thousand and most (timeouts, fire-and-forget sends)
#: never receive a callback, so the per-instance list is allocated lazily
#: on the first ``add_callback``. ``None`` still means "already processed".
_NO_CALLBACKS: tuple = ()

# Bit flags packed into the single ``_flags`` slot: one attribute store at
# construction instead of three, on objects created hundreds of thousands
# of times per run. The kernel's drain loop reads ``_flags & F_CANCELLED``
# directly on every heap entry.
F_PROCESSED = 1
F_DEFUSED = 2
F_CANCELLED = 4


class Future:
    """A one-shot event that will eventually hold a value or an exception.

    Parameters
    ----------
    kernel:
        The kernel whose event loop processes this future.
    name:
        Optional label used in ``repr`` for debugging.
    """

    __slots__ = (
        "kernel",
        "name",
        "_value",
        "_exc",
        "_callbacks",
        "_flags",
        "_abandon_hook",
    )

    def __init__(self, kernel: "Kernel", name: str = "") -> None:
        self.kernel = kernel
        self.name = name
        self._value: object = _PENDING
        self._exc: BaseException | None = None
        self._callbacks: typing.Sequence[typing.Callable[[Future], None]] | None = _NO_CALLBACKS
        self._flags = 0
        self._abandon_hook: typing.Callable[[Future], None] | None = None

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._callbacks is None or self._value is not _PENDING or self._exc is not None

    @property
    def processed(self) -> bool:
        """True once the kernel has run this future's callbacks."""
        return (self._flags & F_PROCESSED) != 0

    @property
    def ok(self) -> bool:
        """True if the future succeeded. Only meaningful once triggered."""
        return self._exc is None

    @property
    def value(self) -> object:
        """The success value. Raises if the future failed or is pending."""
        if self._exc is not None:
            raise self._exc
        if self._value is _PENDING:
            raise SimError(f"{self!r} has no value yet")
        return self._value

    @property
    def exception(self) -> BaseException | None:
        """The failure exception, or None."""
        return self._exc

    def defuse(self) -> "Future":
        """Mark a potential failure of this future as intentionally ignored.

        A failed future whose exception is never observed by any callback
        raises :class:`~repro.errors.UnhandledFailure` in the kernel loop;
        defusing suppresses that check (e.g. fire-and-forget sends).
        """
        self._flags |= F_DEFUSED
        return self

    # -- triggering --------------------------------------------------------

    def succeed(self, value: object = None, delay: float = 0.0) -> "Future":
        """Trigger the future with ``value``; callbacks run after ``delay``."""
        if self._callbacks is None or self._value is not _PENDING or self._exc is not None:
            raise SimError(f"{self!r} has already been triggered")
        self._value = value
        self.kernel._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Future":
        """Trigger the future with exception ``exc``."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() requires an exception, got {exc!r}")
        if self._callbacks is None or self._value is not _PENDING or self._exc is not None:
            raise SimError(f"{self!r} has already been triggered")
        self._exc = exc
        self._value = None
        self.kernel._schedule(self, delay)
        return self

    # -- callbacks ---------------------------------------------------------

    def add_callback(self, fn: typing.Callable[["Future"], None]) -> None:
        """Run ``fn(self)`` when this future is processed.

        If the future has already been processed the callback is scheduled
        to run immediately (at the current virtual time) rather than being
        invoked synchronously, preserving run-to-completion semantics.
        """
        if self._flags & F_PROCESSED:
            self.kernel.call_soon(fn, self)
            return
        callbacks = self._callbacks
        assert callbacks is not None
        if callbacks is _NO_CALLBACKS:
            self._callbacks = [fn]
        else:
            callbacks.append(fn)  # type: ignore[union-attr]

    def remove_callback(self, fn: typing.Callable[["Future"], None]) -> None:
        """Remove a previously added callback; no-op if absent."""
        callbacks = self._callbacks
        if callbacks and fn in callbacks:
            callbacks.remove(fn)  # type: ignore[union-attr]

    def on_abandoned(self, hook: typing.Callable[["Future"], None]) -> None:
        """Register a hook called if the last waiter detaches before trigger.

        Used by resources that hand out futures (e.g. queue getters, lock
        grants): when the waiting process is interrupted away, the resource
        must forget the future or it would absorb a later grant.
        """
        self._abandon_hook = hook

    def _notify_abandoned_if_orphan(self) -> None:
        if (
            self._abandon_hook is not None
            and not self.triggered
            and self._callbacks is not None
            and not self._callbacks
        ):
            hook, self._abandon_hook = self._abandon_hook, None
            hook(self)

    # -- kernel hook --------------------------------------------------------

    def _process(self) -> None:
        callbacks = self._callbacks
        self._callbacks = None
        self._flags |= F_PROCESSED
        if callbacks:
            for fn in callbacks:
                fn(self)
        elif self._exc is not None and not self._flags & F_DEFUSED:
            # Nobody is listening for this failure: surface it loudly.
            self.kernel._report_unhandled(self)

    def __repr__(self) -> str:
        label = self.name or self.__class__.__name__
        if not self.triggered:
            state = "pending"
        elif self._exc is not None:
            state = f"failed({self._exc!r})"
        else:
            state = f"ok({self._value!r})"
        return f"<{label} {state}>"


class Timeout(Future):
    """A future that succeeds automatically ``delay`` time units from now.

    Construction is a hot path (one per RPC wait, per think-time pause,
    per retry backoff), so the constructor writes the slots directly and
    schedules itself without going through :meth:`Future.succeed`'s
    already-triggered check — a fresh timeout is untriggered by
    construction.
    """

    __slots__ = ("delay",)

    def __init__(self, kernel: "Kernel", delay: float, value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.kernel = kernel
        self.name = ""
        self._value = value
        self._exc = None
        self._callbacks = _NO_CALLBACKS
        self._flags = 0
        self._abandon_hook = None
        self.delay = delay
        _heappush(kernel._heap, (kernel._now + delay, kernel._seq, self))
        kernel._seq += 1
        if kernel._sanitize is not None:
            kernel._sanitize.on_scheduled(kernel._seq - 1)

    def cancel(self) -> None:
        """Lazily cancel the timeout: it never fires, callbacks never run.

        The heap entry is skipped when popped instead of being removed
        eagerly, so cancellation is O(1). Only meaningful before the
        timeout fires, and only when no process is waiting on it (a
        waiter would never be resumed).
        """
        if not self._flags & F_PROCESSED:
            self._flags |= F_CANCELLED

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return (self._flags & F_CANCELLED) != 0

    def __repr__(self) -> str:
        if self._flags & F_CANCELLED:
            state = "cancelled"
        elif not self._flags & F_PROCESSED:
            state = "pending"
        else:
            state = f"ok({self._value!r})"
        return f"<Timeout({self.delay}) {state}>"


class AllOf(Future):
    """Succeeds when all child futures have been processed.

    The value is a list of the children's values, in the order given. If any
    child fails, :class:`AllOf` fails with that child's exception (the first
    failure to be processed wins).
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, kernel: "Kernel", children: typing.Sequence[Future]) -> None:
        super().__init__(kernel, name=f"AllOf[{len(children)}]")
        self._children = list(children)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Future) -> None:
        if self.triggered:
            return
        if not child.ok:
            assert child.exception is not None
            self.fail(child.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Future):
    """Succeeds when the first child future is processed.

    The value is the pair ``(index, value)`` of the winning child. Fails if
    the first processed child failed.
    """

    __slots__ = ("_children",)

    def __init__(self, kernel: "Kernel", children: typing.Sequence[Future]) -> None:
        if not children:
            raise ValueError("AnyOf requires at least one child")
        super().__init__(kernel, name=f"AnyOf[{len(children)}]")
        self._children = list(children)
        for index, child in enumerate(self._children):
            child.add_callback(lambda c, i=index: self._on_child(i, c))

    def _on_child(self, index: int, child: Future) -> None:
        if self.triggered:
            return
        if child.ok:
            self.succeed((index, child.value))
        else:
            assert child.exception is not None
            self.fail(child.exception)

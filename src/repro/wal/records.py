"""Redo-log record types.

One :class:`LogRecord` is appended for every committed mutation of a
site's copy store:

* ``"write"`` — a committed physical write (value + version), including
  copier renovations and NS/control updates;
* ``"mark"`` / ``"clear"`` — unreadable-mark transitions outside a
  value write (recovery step 2 marking, equal-version validations under
  timestamp ordering), so a restart preserves §3.4's readability state;
* ``"session"`` — a session-number event (reservation or activation),
  making session state recoverable from the log alone.

Records are redo-only (no undo: only committed state is ever journaled,
matching the repository's no-undo copy store) and totally ordered per
site by ``lsn``.
"""

from __future__ import annotations

import dataclasses

from repro.storage.copies import Version

#: Fixed cost of lsn + kind tag + flags in the wire/stable size model
#: (same style as repro.txn.payloads).
_RECORD_HEADER_BYTES = 16


@dataclasses.dataclass(frozen=True, slots=True)
class LogRecord:
    """One redo record. ``lsn`` is site-local and strictly increasing."""

    lsn: int
    kind: str  # "write" | "mark" | "clear" | "session"
    item: str | None = None
    value: object = None
    version: Version | None = None
    session: int | None = None
    session_started_at: float | None = None

    @property
    def wire_size(self) -> int:
        """Nominal serialized size (one word per number, 1 B/char names)."""
        size = _RECORD_HEADER_BYTES + len(self.item or "")
        if self.kind == "write":
            size += 8  # the value, modeled as one word
        if self.version is not None:
            size += 16
        if self.session is not None:
            size += 8
        if self.session_started_at is not None:
            size += 8
        return size

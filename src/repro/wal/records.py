"""Redo-log record types.

One :class:`LogRecord` is appended for every committed mutation of a
site's copy store:

* ``"write"`` — a committed physical write (value + version), including
  copier renovations and NS/control updates;
* ``"mark"`` / ``"clear"`` — unreadable-mark transitions outside a
  value write (recovery step 2 marking, equal-version validations under
  timestamp ordering), so a restart preserves §3.4's readability state;
* ``"session"`` — a session-number event (reservation or activation),
  making session state recoverable from the log alone.
* ``"prepare"`` — a durably prepared write intent under the
  ``async_quorum`` commit mode: the buffered value plus enough 2PC
  context (coordinator, participant set) to re-arm the participation as
  *in-doubt* after a crash and resolve it cooperatively;
* ``"resolve"`` — the observed decision for a previously prepared
  transaction; a restart treats prepares without a matching resolve as
  in-doubt.

Records are redo-only (no undo for committed state: only committed
copy mutations are journaled as ``"write"``; a prepare record journals
an *intent*, which replay re-arms rather than applies) and totally
ordered per site by ``lsn``.
"""

from __future__ import annotations

import dataclasses

from repro.storage.copies import Version

#: Fixed cost of lsn + kind tag + flags in the wire/stable size model
#: (same style as repro.txn.payloads).
_RECORD_HEADER_BYTES = 16


@dataclasses.dataclass(frozen=True, slots=True)
class LogRecord:
    """One redo record. ``lsn`` is site-local and strictly increasing."""

    lsn: int
    kind: str  # "write" | "mark" | "clear" | "session" | "prepare" | "resolve"
    item: str | None = None
    value: object = None
    version: Version | None = None
    session: int | None = None
    session_started_at: float | None = None
    # 2PC context, populated on "prepare"/"resolve" records only. The
    # version field doubles as the intent's version_override; item and
    # value carry the buffered write itself.
    txn_id: str | None = None
    txn_seq: int = 0
    coordinator: int | None = None
    participants: tuple[int, ...] = ()
    applied_sites: tuple[int, ...] = ()
    missed_sites: tuple[int, ...] = ()
    outcome: str | None = None  # "committed" | "aborted" on "resolve"

    @property
    def wire_size(self) -> int:
        """Nominal serialized size (one word per number, 1 B/char names)."""
        size = _RECORD_HEADER_BYTES + len(self.item or "")
        if self.kind in ("write", "prepare"):
            size += 8  # the value, modeled as one word
        if self.version is not None:
            size += 16
        if self.session is not None:
            size += 8
        if self.session_started_at is not None:
            size += 8
        if self.txn_id is not None:
            size += len(self.txn_id) + 8
        size += 8 * (
            len(self.participants)
            + len(self.applied_sites)
            + len(self.missed_sites)
        )
        if self.outcome is not None:
            size += 1
        return size

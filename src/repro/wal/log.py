"""The append-only redo log, group-committed through stable storage.

Layout in the site's :class:`~repro.storage.stable.StableStorage`:

* ``wal.meta`` — log metadata: next LSN, durable LSN, the segment
  directory, truncation watermarks, and the highest commit sequence
  number among durable write records;
* ``wal.seg.<n>`` — one *segment* per group commit: the tuple of
  records flushed together (every :meth:`flush` is exactly one stable
  segment write plus the metadata write — the group-commit cost model);
* ``wal.ckpt`` — the last fuzzy checkpoint (written by
  :class:`~repro.wal.wal.SiteWal`, not here).

Invariants:

* LSNs are strictly increasing; a record is *durable* iff
  ``lsn <= durable_lsn`` (everything above sits in the volatile append
  buffer and is lost by a crash — the owner counts those losses);
* segments partition the durable LSN range ``(truncated_through,
  durable_lsn]`` in order;
* ``truncated_max_commit`` is the highest commit sequence number among
  ever-truncated write records: a catch-up request anchored at or below
  it cannot be served completely from the log and must fall back to
  per-item copy.
"""

from __future__ import annotations

import typing

from repro.storage.stable import StableStorage
from repro.wal.records import LogRecord

META_KEY = "wal.meta"
SEGMENT_PREFIX = "wal.seg."
CHECKPOINT_KEY = "wal.ckpt"


class RedoLog:
    """Per-site append-only redo log over a :class:`StableStorage`."""

    def __init__(self, stable: StableStorage) -> None:
        self.stable = stable
        self._buffer: list[LogRecord] = []
        self.next_lsn = 1
        self.durable_lsn = 0
        #: Segment directory: ``(segment_id, first_lsn, last_lsn)``.
        self.segments: list[tuple[int, int, int]] = []
        self._next_segment = 1
        self.truncated_through_lsn = 0
        self.truncated_max_commit = 0
        self.truncated_records = 0
        #: Per-item highest commit sequence ever truncated (write records
        #: only). Lets a catch-up server gate precisely: only truncated
        #: commits of items the *requester* hosts can invalidate a stream.
        self.truncated_commit_by_item: dict[str, int] = {}
        self.high_commit = 0  # max Version.commit among durable+buffered writes
        self.load_meta()

    # -- metadata persistence -------------------------------------------------

    def load_meta(self) -> None:
        """Re-sync in-memory metadata from stable storage (restart path)."""
        meta = self.stable.get(META_KEY)
        if meta is None:
            return
        meta = typing.cast(dict, meta)
        self.next_lsn = meta["next_lsn"]
        self.durable_lsn = meta["durable_lsn"]
        self.segments = [tuple(entry) for entry in meta["segments"]]
        self._next_segment = meta["next_segment"]
        self.truncated_through_lsn = meta["truncated_through_lsn"]
        self.truncated_max_commit = meta["truncated_max_commit"]
        self.truncated_records = meta["truncated_records"]
        self.truncated_commit_by_item = dict(meta["truncated_commit_by_item"])
        self.high_commit = meta["high_commit"]

    def _store_meta(self) -> int:
        return self.stable.put(
            META_KEY,
            {
                "next_lsn": self.next_lsn,
                "durable_lsn": self.durable_lsn,
                "segments": [list(entry) for entry in self.segments],
                "next_segment": self._next_segment,
                "truncated_through_lsn": self.truncated_through_lsn,
                "truncated_max_commit": self.truncated_max_commit,
                "truncated_records": self.truncated_records,
                "truncated_commit_by_item": dict(self.truncated_commit_by_item),
                "high_commit": self.high_commit,
            },
        )

    # -- appending ------------------------------------------------------------

    def append(
        self,
        kind: str,
        item: str | None = None,
        value: object = None,
        version=None,
        session: int | None = None,
        session_started_at: float | None = None,
        txn_id: str | None = None,
        txn_seq: int = 0,
        coordinator: int | None = None,
        participants: tuple[int, ...] = (),
        applied_sites: tuple[int, ...] = (),
        missed_sites: tuple[int, ...] = (),
        outcome: str | None = None,
    ) -> LogRecord:
        """Append one record to the volatile tail; durable at next flush."""
        record = LogRecord(
            lsn=self.next_lsn,
            kind=kind,
            item=item,
            value=value,
            version=version,
            session=session,
            session_started_at=session_started_at,
            txn_id=txn_id,
            txn_seq=txn_seq,
            coordinator=coordinator,
            participants=participants,
            applied_sites=applied_sites,
            missed_sites=missed_sites,
            outcome=outcome,
        )
        self.next_lsn += 1
        if kind == "write" and version is not None:
            self.high_commit = max(self.high_commit, version.commit)
        self._buffer.append(record)
        return record

    def flush(self) -> int:
        """Group-commit the buffered tail as one segment; returns count."""
        if not self._buffer:
            return 0
        segment_id = self._next_segment
        self._next_segment += 1
        records = tuple(self._buffer)
        self.stable.put(f"{SEGMENT_PREFIX}{segment_id}", records)
        self.segments.append((segment_id, records[0].lsn, records[-1].lsn))
        self.durable_lsn = records[-1].lsn
        self._buffer.clear()
        self._store_meta()
        return len(records)

    def discard_unflushed(self) -> int:
        """Crash path: drop the volatile tail; returns records lost."""
        lost = len(self._buffer)
        self._buffer.clear()
        # Re-issue the lost LSNs: nothing durable ever carried them.
        self.next_lsn = self.durable_lsn + 1
        if lost:
            self._store_meta()
        return lost

    # -- reading --------------------------------------------------------------

    def records_after(self, lsn: int) -> typing.Iterator[LogRecord]:
        """Durable records with ``record.lsn > lsn``, in LSN order."""
        for segment_id, _first, last in self.segments:
            if last <= lsn:
                continue
            records = typing.cast(
                tuple, self.stable.get(f"{SEGMENT_PREFIX}{segment_id}", ())
            )
            for record in records:
                if record.lsn > lsn:
                    yield record

    # -- truncation -----------------------------------------------------------

    def truncate(self, through_lsn: int) -> int:
        """Drop whole segments whose records all have ``lsn <= through_lsn``.

        Returns the number of records dropped. Tracks the highest commit
        sequence number ever truncated so catch-up requests anchored
        behind it can be refused (they would silently miss updates).
        """
        if through_lsn <= self.truncated_through_lsn:
            return 0
        dropped = 0
        keep: list[tuple[int, int, int]] = []
        for segment_id, first, last in self.segments:
            if last > through_lsn:
                keep.append((segment_id, first, last))
                continue
            records = typing.cast(
                tuple, self.stable.get(f"{SEGMENT_PREFIX}{segment_id}", ())
            )
            for record in records:
                if record.kind == "write" and record.version is not None:
                    self.truncated_max_commit = max(
                        self.truncated_max_commit, record.version.commit
                    )
                    if record.item is not None:
                        self.truncated_commit_by_item[record.item] = max(
                            self.truncated_commit_by_item.get(record.item, 0),
                            record.version.commit,
                        )
            dropped += len(records)
            self.stable.delete(f"{SEGMENT_PREFIX}{segment_id}")
            self.truncated_through_lsn = max(self.truncated_through_lsn, last)
        if dropped:
            self.segments = keep
            self.truncated_records += dropped
            self._store_meta()
        return dropped

    @property
    def buffered(self) -> int:
        """Records appended but not yet durable."""
        return len(self._buffer)

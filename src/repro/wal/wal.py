"""Per-site durability facade: journaling, group commit, checkpoints, restart.

:class:`SiteWal` sits between a site's :class:`~repro.storage.copies.CopyStore`
and its :class:`~repro.storage.stable.StableStorage`:

* every committed copy mutation (write / mark / clear) is journaled as a
  redo record through the copy store's ``journal`` hook;
* the DM calls :meth:`on_commit` once per applied commit — the whole
  transaction's records become durable in **one** stable segment write
  (group commit);
* after ``checkpoint_every`` durable records a *fuzzy checkpoint* is
  taken: the full ``{item → (value, version, unreadable)}`` image plus
  the stable session state, after which the log is truncated down to
  the configured retention tail;
* on power-on, :meth:`restore` rebuilds copies, versions, unreadable
  marks and session state **purely** from checkpoint + log replay
  (the in-memory copy store is explicitly reset first — nothing that
  "magically survived" the crash is consulted).

A site whose stable storage holds no checkpoint (never initialised by a
:class:`~repro.system.DatabaseSystem`, e.g. a bare ``Site`` in a unit
test) keeps the legacy crash semantics: restore is a no-op.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.sanitize import hooks as _san
from repro.sim.events import Future
from repro.wal.config import WalConfig
from repro.wal.log import CHECKPOINT_KEY, RedoLog
from repro.wal.records import LogRecord

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.site.site import Site

# Stable keys owned by repro.core.session; the WAL rewrites them at
# restore so session state is reproducible from checkpoint + log alone.
_SESSION_KEY = "session.last"
_SESSION_STARTED = "session.started_at"


@dataclasses.dataclass
class WalStats:
    """Durability work accounting (surfaced by repro metrics / E9)."""

    records_appended: int = 0
    flushes: int = 0  # group commits (stable segment writes)
    records_flushed: int = 0
    bytes_flushed: int = 0  # serialized bytes of segments + metadata
    checkpoints: int = 0
    replays: int = 0  # restarts that went through checkpoint + replay
    records_replayed: int = 0
    records_lost_unflushed: int = 0  # volatile tail dropped by crashes
    prepares_logged: int = 0  # durable prepare intents (async_quorum)
    in_doubt_restored: int = 0  # prepares re-armed as in-doubt at restore


@dataclasses.dataclass
class RestoreResult:
    """What one power-on reconstruction did."""

    checkpoint_lsn: int
    durable_lsn: int
    records_replayed: int
    high_commit: int  # max commit seq durably known at this site
    session_last: int
    session_started_at: float | None
    in_doubt: int = 0  # prepared-undecided transactions re-armed


class SiteWal:
    """The write-ahead redo log of one site."""

    def __init__(self, site: "Site", config: WalConfig | None = None) -> None:
        self.site = site
        self.config = config if config is not None else WalConfig()
        self.log = RedoLog(site.stable)
        self.stats = WalStats()
        self._records_since_checkpoint = 0
        self._restoring = False
        self.last_checkpoint_lsn = 0
        #: Durable knowledge at the last restore: the highest commit
        #: sequence number reconstructible from checkpoint + log. This —
        #: not the current high commit, which post-recovery writes keep
        #: advancing — anchors log-shipping catch-up requests.
        self.restore_high_commit = 0
        #: Read-only auditor taps, called (with no arguments) after every
        #: group commit / checkpoint; empty and skipped unless a protocol
        #: auditor is attached.
        self.flush_hooks: list[typing.Callable[[], None]] = []
        self.checkpoint_hooks: list[typing.Callable[[], None]] = []
        #: Durable-but-undecided prepare records, by transaction. Mirrors
        #: the durable log (kept exact at checkpoint time, when the
        #: buffer is flushed first) so checkpoints can carry in-doubt
        #: state across log truncation.
        self._unresolved: dict[str, list[LogRecord]] = {}
        self._flush_soon: Future | None = None
        site.copies.journal = self._journal
        site.crash_hooks.append(self._on_crash)

    # -- journaling (CopyStore hook) -------------------------------------------

    def _journal(self, op: str, item: str, value: object = None, version=None) -> None:
        if self._restoring:
            return  # replay must not re-journal what it applies
        if _san.ACTIVE is not None:
            # WAL appends are serialized by the log itself; record them
            # as ordering notes (report context), never race-checked.
            _san.ACTIVE.on_access(
                self.site.site_id, ("wal", item), "note",
                f"SiteWal._journal[{op}]",
            )
        self.log.append(op, item=item, value=value, version=version)
        self.stats.records_appended += 1

    def log_session(self, session: int, started_at: float | None = None) -> None:
        """Journal a session reservation/activation and make it durable."""
        if _san.ACTIVE is not None:
            _san.ACTIVE.on_access(
                self.site.site_id, ("wal", "session"), "note",
                f"SiteWal.log_session[{session}]",
            )
        self.log.append("session", session=session, session_started_at=started_at)
        self.stats.records_appended += 1
        self.flush()

    # -- durable prepares (async_quorum commit mode) ---------------------------

    def log_prepare(
        self,
        txn_id: str,
        txn_seq: int,
        coordinator: int,
        participants: tuple[int, ...],
        item: str,
        value: object,
        version_override=None,
        applied_sites: tuple[int, ...] = (),
        missed_sites: tuple[int, ...] = (),
    ) -> LogRecord:
        """Journal one prepared write intent (durable at the next flush).

        Callers group-commit via :meth:`flush_soon`, so concurrent
        prepares landing in the same kernel timestep share one stable
        segment write.
        """
        record = self.log.append(
            "prepare",
            item=item,
            value=value,
            version=version_override,
            txn_id=txn_id,
            txn_seq=txn_seq,
            coordinator=coordinator,
            participants=participants,
            applied_sites=applied_sites,
            missed_sites=missed_sites,
        )
        self.stats.records_appended += 1
        self.stats.prepares_logged += 1
        self._unresolved.setdefault(txn_id, []).append(record)
        return record

    def log_resolve(self, txn_id: str, outcome: str) -> None:
        """Journal the decision for a prepared transaction.

        Lazy durability: the record rides the next group commit (for a
        commit, the apply's own ``on_commit`` flush). Losing an
        unflushed resolve merely re-arms the transaction as in-doubt at
        restart, and resolution is idempotent.
        """
        if self._unresolved.pop(txn_id, None) is None:
            return  # never durably prepared here — nothing to resolve
        self.log.append("resolve", txn_id=txn_id, outcome=outcome)
        self.stats.records_appended += 1

    def unresolved_prepares(self) -> dict[str, tuple[LogRecord, ...]]:
        """Durably prepared, undecided transactions (restart re-arming)."""
        return {txn: tuple(records) for txn, records in self._unresolved.items()}

    def flush_soon(self) -> Future:
        """A future that succeeds once the current tail is group-committed.

        All callers within one kernel timestep share a single flush (and
        thus one stable segment write) on a kernel microtask — the
        group-commit path for pipelined prepares, costing no simulated
        time.
        """
        future = self._flush_soon
        if future is None:
            future = Future(self.site.kernel, name=f"wal.flush@{self.site.site_id}")
            self._flush_soon = future
            self.site.kernel.call_soon(self._run_flush_soon)
        return future

    def _run_flush_soon(self) -> None:
        future, self._flush_soon = self._flush_soon, None
        if future is None:  # pragma: no cover - defensive
            return
        self.flush()
        future.succeed()

    # -- group commit ----------------------------------------------------------

    def on_commit(self) -> None:
        """DM hook: one applied commit — group-commit its records."""
        self.flush()

    def flush(self) -> int:
        """Make all buffered records durable; maybe checkpoint after."""
        if not self.log.buffered:
            return 0
        before = self.site.stable.bytes_written
        flushed = self.log.flush()
        self.stats.flushes += 1
        self.stats.records_flushed += flushed
        self.stats.bytes_flushed += self.site.stable.bytes_written - before
        self._records_since_checkpoint += flushed
        if self._records_since_checkpoint >= self.config.checkpoint_every:
            self.checkpoint()
        for hook in self.flush_hooks:
            hook()
        return flushed

    # -- checkpoints -----------------------------------------------------------

    def checkpoint(self) -> int:
        """Write a fuzzy checkpoint and truncate the log behind it.

        Returns the checkpoint LSN. The image covers every copy (value,
        version, unreadable mark) plus the stable session state; replay
        therefore only needs records *after* this LSN. The log keeps a
        ``retain_records`` tail behind the checkpoint for log-shipping.
        """
        self.log.flush()  # the image must not predate buffered records
        stable = self.site.stable
        span = None
        obs = self.site.obs
        if obs.spans_on:
            span = obs.spans.start("wal.checkpoint", "wal", self.site.site_id)
        items = {
            name: (copy.value, copy.version, copy.unreadable)
            for name, copy in (
                (name, self.site.copies.get(name)) for name in self.site.copies.items()
            )
        }
        checkpoint_lsn = self.log.durable_lsn
        stable.put(
            CHECKPOINT_KEY,
            {
                "lsn": checkpoint_lsn,
                "high_commit": self.log.high_commit,
                "items": items,
                "session_last": stable.get(_SESSION_KEY, 0),
                "session_started_at": stable.get(_SESSION_STARTED),
                # In-doubt prepares survive log truncation through the
                # image (the flush above made _unresolved exact).
                "in_doubt": {
                    txn: tuple(records)
                    for txn, records in self._unresolved.items()
                },
                # Multiversion chain tails + the durable snapshot cut
                # (repro.mvcc); None when the subsystem is off. Duck-typed
                # so the WAL has no dependency on repro.mvcc.
                "mvcc": (
                    self.site.mvcc.checkpoint_payload()  # type: ignore[attr-defined]
                    if getattr(self.site, "mvcc", None) is not None
                    else None
                ),
            },
        )
        self.last_checkpoint_lsn = checkpoint_lsn
        self.log.truncate(checkpoint_lsn - self.config.retain_records)
        self.stats.checkpoints += 1
        self._records_since_checkpoint = 0
        if span is not None:
            obs.spans.finish(span)
        for hook in self.checkpoint_hooks:
            hook()
        return checkpoint_lsn

    @property
    def checkpoint_lag(self) -> int:
        """Durable records not yet covered by a checkpoint."""
        return self.log.durable_lsn - self.last_checkpoint_lsn

    # -- restart ---------------------------------------------------------------

    def restore(self) -> RestoreResult | None:
        """Rebuild copies/versions/marks/session from checkpoint + replay.

        Returns None (and touches nothing) when stable storage holds no
        checkpoint — the site was never initialised through a
        DatabaseSystem and keeps legacy crash semantics.
        """
        stable = self.site.stable
        checkpoint = typing.cast("dict | None", stable.get(CHECKPOINT_KEY))
        if checkpoint is None:
            return None
        obs = self.site.obs
        span = None
        if obs.spans_on:
            span = obs.spans.start("wal.restore", "wal", self.site.site_id)
        self.log.load_meta()  # stable metadata is the authority after a crash
        self._restoring = True
        try:
            copies = self.site.copies
            copies.reset()
            for name, (value, version, unreadable) in checkpoint["items"].items():
                copies.install(name, value, version, unreadable)
            session_last = checkpoint["session_last"]
            session_started = checkpoint["session_started_at"]
            high_commit = checkpoint["high_commit"]
            unresolved: dict[str, list[LogRecord]] = {
                txn: list(records)
                for txn, records in checkpoint.get("in_doubt", {}).items()
            }
            replayed = 0
            for record in self.log.records_after(checkpoint["lsn"]):
                replayed += 1
                if record.kind == "write":
                    copies.install(record.item, record.value, record.version, False)
                    if record.version is not None:
                        high_commit = max(high_commit, record.version.commit)
                elif record.kind == "mark":
                    if copies.has(record.item):
                        copies.mark_unreadable(record.item)
                elif record.kind == "clear":
                    if copies.has(record.item):
                        copies.clear_unreadable(record.item)
                elif record.kind == "session":
                    session_last = record.session
                    if record.session_started_at is not None:
                        session_started = record.session_started_at
                elif record.kind == "prepare":
                    unresolved.setdefault(record.txn_id, []).append(record)
                elif record.kind == "resolve":
                    unresolved.pop(record.txn_id, None)
            self._unresolved = unresolved
            self.stats.in_doubt_restored += len(unresolved)
            stable.put(_SESSION_KEY, session_last)
            stable.put(_SESSION_STARTED, session_started)
        finally:
            self._restoring = False
            if span is not None:
                obs.spans.finish(span)
        self.last_checkpoint_lsn = checkpoint["lsn"]
        self._records_since_checkpoint = self.checkpoint_lag
        self.restore_high_commit = high_commit
        mvcc = getattr(self.site, "mvcc", None)
        if mvcc is not None:
            # The reset/install hooks rebuilt single-version chains during
            # the replay above; hand over the checkpointed chain tails and
            # let the store re-derive its durable snapshot cut.
            mvcc.on_restore(checkpoint.get("mvcc"))
        self.stats.replays += 1
        self.stats.records_replayed += replayed
        return RestoreResult(
            checkpoint_lsn=checkpoint["lsn"],
            durable_lsn=self.log.durable_lsn,
            records_replayed=replayed,
            high_commit=high_commit,
            session_last=session_last,
            session_started_at=session_started,
            in_doubt=len(self._unresolved),
        )

    # -- crash -----------------------------------------------------------------

    def _on_crash(self) -> None:
        lost = self.log.discard_unflushed()
        self.stats.records_lost_unflushed += lost
        if lost and self._unresolved:
            # Prepares in the dropped volatile tail were never durable
            # (their flush future gated the prepare ack, never sent).
            durable = self.log.durable_lsn
            for txn in list(self._unresolved):
                kept = [r for r in self._unresolved[txn] if r.lsn <= durable]
                if kept:
                    self._unresolved[txn] = kept
                else:
                    del self._unresolved[txn]

"""Crash-replay determinism check (CI gate).

Runs the traced log-shipping recovery scenario twice with the same seed
and asserts the durable outcome is **byte-identical**: per-site final
LSNs, the serialized log metadata and checkpoint blobs, the
reconstructed copies (value, version, unreadable mark), and the stable
session state. Any nondeterminism in the journal/replay path — record
ordering, fuzzy-checkpoint contents, truncation watermarks — shows up
as a digest mismatch here long before it shows up as a flaky recovery.

Usage::

    python -m repro.wal.determinism [--seed N]

Exit code 0 on byte-identical runs, 1 on divergence.
"""

from __future__ import annotations

import argparse
import hashlib
import pickle
import typing

from repro.wal.log import CHECKPOINT_KEY, META_KEY


def site_durable_state(site: typing.Any) -> dict:
    """Everything that must be reproducible about one site's durability."""
    wal = site.wal
    return {
        "durable_lsn": wal.log.durable_lsn if wal is not None else None,
        "next_lsn": wal.log.next_lsn if wal is not None else None,
        "truncated_through": (
            wal.log.truncated_through_lsn if wal is not None else None
        ),
        "meta_blob": site.stable._blobs.get(META_KEY),
        "checkpoint_blob": site.stable._blobs.get(CHECKPOINT_KEY),
        "session_last": site.stable.get("session.last"),
        "copies": sorted(
            (name, copy.value, tuple(copy.version), copy.unreadable)
            for name, copy in (
                (name, site.copies.get(name)) for name in site.copies.items()
            )
        ),
        # Multiversion chain image (repro.mvcc): the rebuilt version
        # chains and the durable snapshot cut must replay identically too.
        "mvcc": (
            site.mvcc.digest_state()
            if getattr(site, "mvcc", None) is not None
            else None
        ),
    }


def run_digest(seed: int) -> tuple[str, dict]:
    """One scenario run -> (hex digest, per-site summary for diagnostics)."""
    from repro.harness.experiments.e9_catchup import traced_scenario

    _kernel, system, _obs, summary = traced_scenario(seed)
    state = {
        site_id: site_durable_state(system.cluster.site(site_id))
        for site_id in system.cluster.site_ids
    }
    blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    lsns = {
        site_id: entry["durable_lsn"] for site_id, entry in state.items()
    }
    return hashlib.sha256(blob).hexdigest(), {"summary": summary, "lsns": lsns}


def check(seed: int = 3) -> bool:
    """Run twice, compare. Prints a verdict; True iff byte-identical."""
    first, info_a = run_digest(seed)
    second, info_b = run_digest(seed)
    print(f"run 1: digest={first[:16]} lsns={info_a['lsns']}")
    print(f"run 2: digest={second[:16]} lsns={info_b['lsns']}")
    if first == second:
        print(f"crash-replay determinism: OK (seed={seed})")
        return True
    print(f"crash-replay determinism: DIVERGED (seed={seed})  << REGRESSION")
    return False


def main(argv: typing.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Assert crash-replay recovery is byte-identical "
        "across same-seed runs."
    )
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args(argv)
    return 0 if check(args.seed) else 1


if __name__ == "__main__":
    raise SystemExit(main())

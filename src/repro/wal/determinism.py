"""Crash-replay determinism check (CI gate).

Runs the traced log-shipping recovery scenario twice with the same seed
and asserts the durable outcome is **byte-identical**: per-site final
LSNs, the serialized log metadata and checkpoint blobs, the
reconstructed copies (value, version, unreadable mark), and the stable
session state. Any nondeterminism in the journal/replay path — record
ordering, fuzzy-checkpoint contents, truncation watermarks — shows up
as a digest mismatch here long before it shows up as a flaky recovery.

Usage::

    python -m repro.wal.determinism [--seed N] [--cross-schedule]

Exit code 0 on byte-identical runs, 1 on divergence.

``--cross-schedule`` asserts a *robustness* property instead of a
reproducibility one: the crash/resume scenario (E2) run under two
different same-timestamp tie-break salts (see
:mod:`repro.sanitize.policy`) must converge to **identical committed
state fingerprints** — same values, same unreadable marks, same stable
session numbers. Unlike the byte-level digest above, physical version
stamps and WAL layout are excluded: legal schedules may commit the same
values in a different physical order, and that is not a divergence.
"""

from __future__ import annotations

import argparse
import hashlib
import pickle
import typing

from repro.wal.log import CHECKPOINT_KEY, META_KEY


def site_durable_state(site: typing.Any) -> dict:
    """Everything that must be reproducible about one site's durability."""
    wal = site.wal
    return {
        "durable_lsn": wal.log.durable_lsn if wal is not None else None,
        "next_lsn": wal.log.next_lsn if wal is not None else None,
        "truncated_through": (
            wal.log.truncated_through_lsn if wal is not None else None
        ),
        "meta_blob": site.stable._blobs.get(META_KEY),
        "checkpoint_blob": site.stable._blobs.get(CHECKPOINT_KEY),
        "session_last": site.stable.get("session.last"),
        "copies": sorted(
            (name, copy.value, tuple(copy.version), copy.unreadable)
            for name, copy in (
                (name, site.copies.get(name)) for name in site.copies.items()
            )
        ),
        # Multiversion chain image (repro.mvcc): the rebuilt version
        # chains and the durable snapshot cut must replay identically too.
        "mvcc": (
            site.mvcc.digest_state()
            if getattr(site, "mvcc", None) is not None
            else None
        ),
    }


def run_digest(seed: int) -> tuple[str, dict]:
    """One scenario run -> (hex digest, per-site summary for diagnostics)."""
    from repro.harness.experiments.e9_catchup import traced_scenario

    _kernel, system, _obs, summary = traced_scenario(seed)
    state = {
        site_id: site_durable_state(system.cluster.site(site_id))
        for site_id in system.cluster.site_ids
    }
    blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    lsns = {
        site_id: entry["durable_lsn"] for site_id, entry in state.items()
    }
    return hashlib.sha256(blob).hexdigest(), {"summary": summary, "lsns": lsns}


def check(seed: int = 3) -> bool:
    """Run twice, compare. Prints a verdict; True iff byte-identical."""
    first, info_a = run_digest(seed)
    second, info_b = run_digest(seed)
    print(f"run 1: digest={first[:16]} lsns={info_a['lsns']}")
    print(f"run 2: digest={second[:16]} lsns={info_b['lsns']}")
    if first == second:
        print(f"crash-replay determinism: OK (seed={seed})")
        return True
    print(f"crash-replay determinism: DIVERGED (seed={seed})  << REGRESSION")
    return False


def cross_schedule_digest(seed: int, salt: int) -> tuple[str, int]:
    """One E2 run under shuffle ``salt`` -> (fingerprint, choice points).

    Salt 0 runs the canonical (FIFO) schedule with the tie-break seam
    engaged, so the comparison also covers the seam itself.
    """
    from repro.obs.scenarios import run_traced
    from repro.sanitize.fingerprint import fingerprint, system_state
    from repro.sanitize.policy import ScheduleSpec

    mode = "canonical" if salt == 0 else "shuffle"
    run = run_traced("e2", seed=seed, schedule=ScheduleSpec(mode=mode, salt=salt))
    # strict_values: E2 is a single-writer recovery drill, so even the
    # committed *values* must be schedule-independent — a stronger claim
    # than the agreement-partition gate schedfuzz applies to contended
    # workloads.
    return (
        fingerprint(system_state(run.system, strict_values=True)),
        len(run.kernel._tiebreak.decisions),
    )


def check_cross_schedule(seed: int = 3, salts: tuple[int, ...] = (0, 1, 2)) -> bool:
    """Same seed, different tie-break salts, identical committed state."""
    digests = []
    for salt in salts:
        digest, choices = cross_schedule_digest(seed, salt)
        label = "canonical" if salt == 0 else f"shuffle[{salt}]"
        print(f"{label}: fingerprint={digest[:16]} choice_points={choices}")
        digests.append(digest)
    if len(set(digests)) == 1:
        print(f"cross-schedule determinism: OK (seed={seed}, "
              f"{len(salts)} schedules)")
        return True
    print(f"cross-schedule determinism: DIVERGED (seed={seed})  << REGRESSION")
    return False


def main(argv: typing.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Assert crash-replay recovery is byte-identical "
        "across same-seed runs."
    )
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--cross-schedule", action="store_true",
        help="instead: assert E2 committed state is identical across "
        "perturbed same-timestamp tie-break schedules",
    )
    args = parser.parse_args(argv)
    if args.cross_schedule:
        return 0 if check_cross_schedule(args.seed) else 1
    return 0 if check(args.seed) else 1


if __name__ == "__main__":
    raise SystemExit(main())

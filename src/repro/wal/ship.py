"""Log-shipping catch-up protocol payloads (``wal.ship`` RPC).

A recovering site anchors its request at the highest commit sequence
number it could reconstruct durably (``after_commit``) and pages through
the serving peer's retained log with an LSN cursor. The peer filters the
suffix to write records of items the requester hosts, whose commit
sequence the requester has not seen, and tags each with whether the
record's version is the peer's *current* version of the item — only
current records may clear the requester's unreadable mark (an
intermediate version is still stale data and must stay unreadable).

The peer refuses (``truncated=True``) when it has truncated any write
record the requester might need (``after_commit <=
truncated_max_commit``): the stream would silently skip updates, so the
requester must fall back to per-item copy.

This transport is also how the ``async_quorum`` commit mode covers its
lagging copies: a drained site that missed its asynchronous apply (it
crashed, or lost the commit ack) recovers the committed write from a
peer's log exactly as it recovers any other missed update. The stream
carries only ``"write"`` records — ``"prepare"``/``"resolve"`` records
are a site-local matter (in-doubt re-arming) and are filtered out by the
serving side along with session records.
"""

from __future__ import annotations

import dataclasses

from repro.storage.copies import Version

_HEADER_BYTES = 24  # request/reply framing, same model as txn.payloads


@dataclasses.dataclass(frozen=True, slots=True)
class ShipRequest:
    """One page request of the missed-update stream."""

    requester: int
    after_commit: int  # ship only write records with version.commit above this
    cursor_lsn: int  # resume the peer-log scan after this LSN
    batch: int  # max records per reply

    @property
    def wire_size(self) -> int:
        return _HEADER_BYTES + 8 * 4


@dataclasses.dataclass(frozen=True, slots=True)
class ShipRecord:
    """One shipped committed write. ``current`` means the serving peer's
    copy still carries exactly this version (safe to install + clear)."""

    item: str
    value: object
    version: Version
    current: bool

    @property
    def wire_size(self) -> int:
        return len(self.item) + 8 + 16 + 1


@dataclasses.dataclass(frozen=True, slots=True)
class ShipReply:
    """One page of the stream.

    ``versions`` is only populated on the final page (``done=True``): the
    peer's current version of every requester-hosted item it can vouch
    for (readable copy), letting the requester validate-clear untouched
    items in one local transaction instead of one remote read each.
    """

    serving: bool  # False: peer not operational / no WAL — try another
    truncated: bool  # True: peer's log cannot cover after_commit
    records: tuple[ShipRecord, ...] = ()
    next_cursor: int = 0
    done: bool = False
    versions: dict[str, Version] | None = None

    @property
    def wire_size(self) -> int:
        size = _HEADER_BYTES + sum(record.wire_size for record in self.records)
        if self.versions:
            size += sum(len(item) + 16 for item in self.versions)
        return size

"""Per-site durability: write-ahead redo log, checkpoints, log shipping.

See docs/DURABILITY.md for the log format and invariants.
"""

from repro.wal.config import WalConfig
from repro.wal.log import RedoLog
from repro.wal.records import LogRecord
from repro.wal.ship import ShipRecord, ShipReply, ShipRequest
from repro.wal.wal import RestoreResult, SiteWal, WalStats

__all__ = [
    "LogRecord",
    "RedoLog",
    "RestoreResult",
    "ShipRecord",
    "ShipReply",
    "ShipRequest",
    "SiteWal",
    "WalConfig",
    "WalStats",
]

"""Configuration of the per-site durability (WAL) layer."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class WalConfig:
    """Knobs of the redo log / checkpoint subsystem.

    Attributes
    ----------
    enabled:
        Turn the WAL off entirely (the site keeps the legacy
        "stable-by-construction copy store" semantics). Used by
        ablations and by the obs-overhead bench.
    checkpoint_every:
        Take a fuzzy checkpoint after this many records have been
        group-committed since the last one. Smaller values shorten
        replay at the cost of more checkpoint writes (and of a shorter
        shippable log tail).
    retain_records:
        How many LSNs of log to keep *behind* the checkpoint when
        truncating. The retained tail is what log-shipping catch-up
        serves from; ``0`` truncates everything behind the checkpoint
        (forcing recovering peers onto per-item copy whenever they
        crashed before it).
    """

    enabled: bool = True
    checkpoint_every: int = 64
    retain_records: int = 512

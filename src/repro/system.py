"""Assembly of a complete replicated database system.

:class:`DatabaseSystem` wires the substrates together — cluster, catalog,
copy stores, history recorder, per-site DM/TM, global deadlock detector —
parameterized by a replication strategy. The paper's full protocol
(sessions + control transactions + recovery procedure) is assembled on
top by :class:`repro.core.system.RowaaSystem`; the baselines use this
class directly.
"""

from __future__ import annotations

import typing

from repro.errors import TransactionAborted
from repro.histories.recorder import HistoryRecorder
from repro.net.latency import LatencyModel
from repro.obs import Observability
from repro.obs.instrument import instrument_system
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.site.cluster import Cluster
from repro.storage.catalog import Catalog
from repro.txn.config import TxnConfig
from repro.txn.data_manager import DataManager
from repro.txn.deadlock import GlobalDeadlockDetector
from repro.txn.manager import TransactionManager, TxnProgram
from repro.txn.strategy import ReplicationStrategy
from repro.txn.transaction import TxnKind
from repro.wal import WalConfig

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mvcc import MultiVersionStore, SnapshotManager

StrategyFactory = typing.Callable[["DatabaseSystem"], ReplicationStrategy]


class DatabaseSystem:
    """A running replicated DDBS instance inside one simulation kernel.

    Parameters
    ----------
    kernel:
        The simulation kernel.
    n_sites:
        Sites are numbered ``1..n_sites``.
    items:
        Mapping of logical item name to initial value. Every copy starts
        with this value at version 0 (written by the implicit initial
        transaction of §4's augmented history).
    strategy_factory:
        Called with the partially built system; returns the replication
        strategy shared by all TMs.
    catalog:
        Copy placement; defaults to full replication of ``items``.
    config:
        Transaction-substrate tunables.
    latency, detection_delay, loss_probability:
        Forwarded to the cluster/network.
    concurrency:
        ``"2pl"`` (strict two-phase locking, default) or ``"to"``
        (timestamp ordering) — the recovery protocol composes with
        either (§1's "large group of concurrency control algorithms").
    """

    def __init__(
        self,
        kernel: Kernel,
        n_sites: int,
        items: dict[str, object],
        strategy_factory: StrategyFactory,
        catalog: Catalog | None = None,
        config: TxnConfig | None = None,
        latency: LatencyModel | None = None,
        detection_delay: float = 5.0,
        loss_probability: float = 0.0,
        concurrency: str = "2pl",
        obs: Observability | None = None,
        wal_config: "WalConfig | None" = None,
    ) -> None:
        from repro.net.messages import reset_msg_counter
        from repro.txn.transaction import reset_txn_counter

        reset_txn_counter()
        reset_msg_counter()
        self.kernel = kernel
        self.config = config if config is not None else TxnConfig()
        if concurrency == "to" and self.config.commit_mode == "async_quorum":
            # The async safety argument leans on strict 2PL holding X
            # locks until the drained apply lands; TO has no such fence.
            raise ValueError("commit_mode='async_quorum' requires 2PL concurrency")
        self.obs = obs if obs is not None else Observability(kernel)
        self.cluster = Cluster(
            kernel,
            n_sites,
            latency=latency,
            detection_delay=detection_delay,
            loss_probability=loss_probability,
            obs=self.obs,
            wal_config=wal_config,
        )
        self.catalog = (
            catalog
            if catalog is not None
            else Catalog.fully_replicated(self.cluster.site_ids, items)
        )
        self.recorder = HistoryRecorder()
        self.items = dict(items)

        for item, value in items.items():
            for site_id in self.catalog.sites_of(item):
                self.cluster.site(site_id).copies.create(item, value)
        # Genesis checkpoint: the initial database image is durable from
        # the start, so every later power-on can rebuild purely from
        # checkpoint + log replay.
        for site_id in self.cluster.site_ids:
            site = self.cluster.site(site_id)
            if site.wal is not None:
                site.wal.checkpoint()

        if concurrency == "2pl":
            dm_class = DataManager
        elif concurrency == "to":
            from repro.txn.timestamp import TimestampDataManager

            dm_class = TimestampDataManager
        else:
            raise ValueError(f"unknown concurrency control {concurrency!r}")
        self.concurrency = concurrency
        self.dms: dict[int, DataManager] = {
            site_id: dm_class(kernel, self.cluster.site(site_id), self.recorder, self.config)
            for site_id in self.cluster.site_ids
        }
        self.strategy = strategy_factory(self)
        self.tms: dict[int, TransactionManager] = {
            site_id: TransactionManager(
                kernel,
                self.cluster.site(site_id),
                self.catalog,
                self.strategy,
                self.recorder,
                self.config,
            )
            for site_id in self.cluster.site_ids
        }
        if concurrency == "to":
            for tm in self.tms.values():
                tm.version_policy = "timestamp"
        # Multiversion snapshot reads (repro.mvcc): 2PL only — commit
        # versions then order by decision instant, which is what makes
        # the ``now - D`` time cut a consistent committed prefix. The TO
        # scheduler's timestamp versions (txn start time) break that
        # argument, so the subsystem stays off there.
        self.mvcc: dict[int, "MultiVersionStore"] = {}
        self.snapshots: dict[int, "SnapshotManager"] = {}
        if self.config.mvcc and concurrency == "2pl":
            from repro.mvcc import MultiVersionStore, SnapshotManager

            for site_id in self.cluster.site_ids:
                site = self.cluster.site(site_id)
                store = MultiVersionStore(
                    kernel,
                    site,
                    floor_delay=self.config.ro_staleness_floor,
                    gc_period=self.config.mvcc_gc_period,
                )
                site.mvcc = store  # type: ignore[attr-defined]
                site.power_on_hooks.append(store.on_power_on)
                manager = SnapshotManager(kernel, site, store)
                self.mvcc[site_id] = store
                self.snapshots[site_id] = manager
                self.tms[site_id].snapshots = manager
        self.deadlock_detector = GlobalDeadlockDetector(
            kernel, self._live_lock_managers, interval=self.config.deadlock_interval
        )
        # Detector-driven 2PC termination: when a site is declared down
        # or announces recovery, every DM promptly resolves the
        # transactions it coordinated (instead of waiting out the
        # periodic watcher's timeout) — the up-transition path is what
        # unblocks in-doubt prepared participants the moment their
        # coordinator's stable decision log is reachable again.
        for site_id, dm in self.dms.items():
            detector = self.cluster.detector(site_id)
            detector.on_down(
                lambda changed, dm=dm: dm.resolve_coordinated_by(changed)
            )
            detector.on_up(
                lambda changed, dm=dm: dm.resolve_coordinated_by(changed)
            )
        instrument_system(self)

    def _live_lock_managers(self):
        return [
            dm.lock_manager
            for site_id, dm in self.dms.items()
            if not self.cluster.site(site_id).is_down
        ]

    # -- lifecycle ------------------------------------------------------------

    def boot(self) -> None:
        """Cold boot: all sites come up operational with fresh copies."""
        self.cluster.boot_all()

    def stop(self) -> None:
        """Stop housekeeping processes so ``kernel.run()`` can drain."""
        self.deadlock_detector.stop()
        for store in self.mvcc.values():
            store.stop_gc()
        if self.obs.sampler is not None:
            self.obs.sampler.stop()

    def crash(self, site_id: int) -> None:
        """Inject a crash at ``site_id``."""
        self.cluster.crash_site(site_id)

    def power_on(self, site_id: int) -> object:
        """Bring a crashed site back per this system's recovery protocol.

        The base implementation is *instant* recovery — power on and
        immediately accept user transactions — which is correct for
        strict ROWA (a down site's copies never miss writes) and quorum
        (stale copies are outvoted), and is exactly the bug for the
        naive baseline. Protocols with a real recovery procedure
        (ROWAA §3.4, directories, spooler) override this.
        """
        self.cluster.power_on_site(site_id)
        self.cluster.site(site_id).become_operational()
        self.cluster.notify_recovered(site_id)
        return None

    # -- introspection ---------------------------------------------------------

    def copy_value(self, site_id: int, item: str) -> object:
        """Direct (non-transactional) peek at a committed copy value."""
        return self.cluster.site(site_id).copies.get(item).value

    # -- transaction entry points ----------------------------------------------

    def submit(
        self, site_id: int, program: TxnProgram, kind: TxnKind = TxnKind.USER
    ) -> Process:
        """Run ``program`` as a single transaction attempt at ``site_id``."""
        return self.tms[site_id].submit(program, kind)

    def submit_ro(self, site_id: int, program: typing.Callable) -> Process:
        """Run ``program`` as a read-only snapshot transaction at
        ``site_id`` (``beginRO``; requires the mvcc subsystem)."""
        return self.tms[site_id].submit_ro(program)

    def submit_with_retry(
        self,
        site_id: int,
        program: TxnProgram,
        attempts: int = 3,
        retry_delay: float = 5.0,
    ) -> Process:
        """Run a user transaction, retrying aborts as fresh transactions.

        Retries matter to the protocol: an abort caused by a stale view
        (session mismatch) is transient — the retry re-reads the nominal
        session vector and sees the new configuration.
        """

        def body():
            last: TransactionAborted | None = None
            for _attempt in range(attempts):
                try:
                    result = yield from self.tms[site_id].run(program)
                    return result
                except TransactionAborted as exc:
                    last = exc
                    yield self.kernel.timeout(retry_delay)
            assert last is not None
            raise last

        return self.cluster.site(site_id).spawn(body(), name="txn-retry")

"""Exception hierarchy for the repro library.

Every exception raised by the library derives from :class:`ReproError` so
that callers can catch library failures without catching unrelated bugs.
Simulation-control exceptions (:class:`Interrupt`) deliberately derive from
``BaseException``-adjacent ``Exception`` but are grouped here for
discoverability.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Simulation kernel errors
# ---------------------------------------------------------------------------


class SimError(ReproError):
    """Base class for simulation-kernel errors."""


class UnhandledFailure(SimError):
    """A failed :class:`~repro.sim.events.Future` was never observed.

    Raised by the kernel's main loop so that programming errors inside
    simulated processes surface instead of being silently dropped.
    """


class Interrupt(Exception):
    """Thrown into a simulated process by :meth:`Process.interrupt`.

    Carries the ``cause`` supplied by the interrupter. Not a
    :class:`ReproError` because it is control flow, not a failure.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class SimTimeout(SimError):
    """An operation guarded by a timeout did not complete in time."""


# ---------------------------------------------------------------------------
# Network errors
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for network-substrate errors."""


class RpcTimeout(NetworkError):
    """An RPC did not receive a reply within its deadline."""

    def __init__(self, dst: int, what: str = "") -> None:
        super().__init__(f"rpc to site {dst} timed out{': ' + what if what else ''}")
        self.dst = dst


class SiteUnreachable(NetworkError):
    """The destination site is down and cannot receive messages."""

    def __init__(self, dst: int) -> None:
        super().__init__(f"site {dst} is unreachable")
        self.dst = dst


# ---------------------------------------------------------------------------
# Transaction errors
# ---------------------------------------------------------------------------


class TransactionError(ReproError):
    """Base class for transaction-processing errors."""


class TransactionAborted(TransactionError):
    """The transaction was aborted; ``reason`` says why."""

    def __init__(self, txn_id: str, reason: str) -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class DeadlockDetected(TransactionError):
    """The lock manager chose this transaction as a deadlock victim."""

    def __init__(self, txn_id: str) -> None:
        super().__init__(f"transaction {txn_id} chosen as deadlock victim")
        self.txn_id = txn_id


class TimestampOrderViolation(TransactionError):
    """Timestamp-ordering rejection: the operation arrived too late.

    Raised by the TO scheduler when a read or write would contradict
    the timestamp serialization order; the transaction aborts and may
    retry with a fresh (larger) timestamp.
    """

    def __init__(self, txn_id: str, item: str, detail: str) -> None:
        super().__init__(f"{txn_id}: {detail} on {item}")
        self.txn_id = txn_id
        self.item = item


class SessionMismatch(TransactionError):
    """A physical request carried a session number != the DM's ``as[k]``.

    This is the §3.1 validity check of the paper: the requester's view of
    the target site is stale, so the request must be rejected.
    """

    def __init__(self, site_id: int, expected: int, actual: int) -> None:
        super().__init__(
            f"site {site_id}: request expected session {expected}, actual is {actual}"
        )
        self.site_id = site_id
        self.expected = expected
        self.actual = actual


class NotOperational(TransactionError):
    """A user-transaction request reached a site that is not operational."""

    def __init__(self, site_id: int) -> None:
        super().__init__(f"site {site_id} is not operational")
        self.site_id = site_id


class CopyUnreadable(TransactionError):
    """A read hit a copy marked unreadable and redirection was disabled."""

    def __init__(self, item: str, site_id: int) -> None:
        super().__init__(f"copy of {item} at site {site_id} is unreadable")
        self.item = item
        self.site_id = site_id


class SnapshotUnavailable(TransactionError):
    """A snapshot read found no committed version at-or-below its cut.

    Happens when garbage collection (or a chain that never reached this
    site) leaves no floor version for the transaction's pinned cut; the
    read-only transaction aborts and may retry with a fresh snapshot.
    """

    def __init__(self, item: str, site_id: int, cut_ts: float) -> None:
        super().__init__(
            f"no version of {item} at site {site_id} at-or-below cut {cut_ts:g}"
        )
        self.item = item
        self.site_id = site_id
        self.cut_ts = cut_ts


class TotalFailure(TransactionError):
    """No readable copy of a data item exists at any operational site.

    The paper (§3.2) notes a separate protocol is needed for this case and
    does not discuss it; we surface it explicitly.
    """

    def __init__(self, item: str) -> None:
        super().__init__(f"data item {item} has totally failed")
        self.item = item


# ---------------------------------------------------------------------------
# Recovery errors
# ---------------------------------------------------------------------------


class RecoveryError(ReproError):
    """Base class for recovery-procedure errors."""


class NoOperationalSite(RecoveryError):
    """Recovery cannot proceed: no operational site exists in the system.

    The paper's algorithm requires at least one operational site; total
    failure needs the out-of-band cold-start path (see DESIGN.md §2).
    """


class InvalidStateTransition(RecoveryError):
    """A site lifecycle method was called in the wrong state."""


# ---------------------------------------------------------------------------
# History / serializability checker errors
# ---------------------------------------------------------------------------


class HistoryError(ReproError):
    """Base class for history-recording and checking errors."""


class MalformedHistory(HistoryError):
    """The recorded history violates a structural assumption of §4."""

"""The transaction manager (TM): supervises transaction execution (§2).

The TM at a site runs each transaction as a simulated process:

1. gate by transaction class (user transactions only at operational
   sites; control transactions also while recovering — §3.3);
2. let the replication strategy establish the transaction's view
   (for ROWAA: the implicit read of the local nominal session vector);
3. drive the user program, whose logical operations the strategy
   interprets into physical DM requests;
4. terminate via presumed-abort two-phase commit over the written sites.

Any protocol-level failure (session mismatch, deadlock victim, copy
unreadable after redirects, RPC timeout, vote no) aborts the transaction
and surfaces as :class:`~repro.errors.TransactionAborted` carrying the
reason — callers and the experiment harness classify aborts by it.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

from repro.errors import (
    NetworkError,
    NotOperational,
    TransactionAborted,
    TransactionError,
)
from repro.histories.recorder import HistoryRecorder
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.site.site import Site
from repro.storage.catalog import Catalog
from repro.storage.copies import Version
from repro.txn.commit import AsyncQuorumCommit, Sync2pcCommit
from repro.txn.config import COMMIT_MODES, TxnConfig
from repro.txn.context import ReadOnlyTxnContext, TxnContext
from repro.txn.payloads import (
    CommitRequest,
    FinishRequest,
    MarkMissedRequest,
    OutcomeQuery,
)
from repro.txn.strategy import CommitStrategy, ReplicationStrategy
from repro.txn.transaction import Transaction, TxnKind, TxnStatus, next_commit_seq

TxnProgram = typing.Callable[[TxnContext], typing.Generator]

#: Exceptions that abort the transaction (vs. programming errors, which
#: propagate unchanged so they surface as bugs).
ABORT_CAUSES = (TransactionError, NetworkError)


@dataclasses.dataclass
class TmStats:
    """Per-TM counters for the experiment harness."""

    committed: int = 0
    aborted: int = 0
    refused: int = 0  # user txns refused because the site was not operational
    aborts_by_reason: collections.Counter = dataclasses.field(
        default_factory=collections.Counter
    )
    commit_latencies: list[float] = dataclasses.field(default_factory=list)
    #: Begin-to-client-ack latency per committed user transaction: unlike
    #: ``commit_latencies`` (begin to decision), this includes whatever
    #: the commit strategy keeps on the client path — the full 2PC tail
    #: under sync_2pc, only the quorum check under async_quorum.
    ack_latencies: list[float] = dataclasses.field(default_factory=list)
    #: Final-decision notifications lost to a participant (previously
    #: swallowed silently); recovery marks cover each miss, but an
    #: async-drain backlog must be observable, not invisible.
    commit_ack_lost: int = 0
    abort_ack_lost: int = 0
    async_commits: int = 0  # decisions taken under async_quorum
    drains_spawned: int = 0
    drains_completed: int = 0
    #: Read-only (``beginRO``) transactions, counted apart from the RW
    #: numbers above: they take no locks and never enter 2PC, so mixing
    #: them into ``committed`` would flatter every RW latency statistic.
    ro_committed: int = 0
    ro_aborted: int = 0
    ro_refused: int = 0  # submitted while the site was down or frozen
    ro_latencies: list[float] = dataclasses.field(default_factory=list)


class TransactionManager:
    """One site's TM."""

    def __init__(
        self,
        kernel: Kernel,
        site: Site,
        catalog: Catalog,
        strategy: ReplicationStrategy,
        recorder: HistoryRecorder,
        config: TxnConfig,
    ) -> None:
        self.kernel = kernel
        self.site = site
        self.catalog = catalog
        self.strategy = strategy
        self.recorder = recorder
        self.config = config
        self.stats = TmStats()
        #: "commit" (default): versions order by 2PC decision instant —
        #: correct for 2PL, where conflict order equals commit order.
        #: "timestamp": versions order by transaction timestamp — the
        #: serialization order of the TO scheduler
        #: (:mod:`repro.txn.timestamp`).
        self.version_policy: str = "commit"
        #: Observers called with the finished Transaction after every
        #: commit or abort (tracing, experiment instrumentation).
        self.finish_hooks: list[typing.Callable[[Transaction], None]] = []
        #: Observers called as ``hook(txn, acked_sites, lost_sites)``
        #: when an async drain finishes (auditor coverage check).
        self.drain_hooks: list[typing.Callable] = []
        if config.commit_mode not in COMMIT_MODES:
            raise ValueError(
                f"unknown commit_mode {config.commit_mode!r}; one of {COMMIT_MODES}"
            )
        #: The commit seam (see :class:`repro.txn.strategy.CommitStrategy`).
        #: User transactions use ``config.commit_mode``; control and
        #: copier transactions always terminate synchronously.
        self.commit_strategies: dict[str, CommitStrategy] = {
            Sync2pcCommit.name: Sync2pcCommit(self),
            AsyncQuorumCommit.name: AsyncQuorumCommit(self),
        }
        #: The site's :class:`~repro.mvcc.snapshot.SnapshotManager`; wired
        #: by the system when multiversion snapshot reads are enabled
        #: (``config.mvcc`` and 2PL concurrency), else None and
        #: :meth:`submit_ro` refuses.
        self.snapshots: typing.Any = None
        self._active: set[str] = set()
        self._outcomes: dict[str, tuple[str, Version | None]] = {}
        site.rpc.register("tm.outcome", self._handle_outcome)
        site.crash_hooks.append(self._on_crash)

    @property
    def site_id(self) -> int:
        return self.site.site_id

    @property
    def rpc(self):
        return self.site.rpc

    @property
    def prepare_on_write(self) -> bool:
        """Pipelined 2PC: user-transaction writes carry a prepare vote."""
        return self.config.commit_mode == AsyncQuorumCommit.name

    # -- crash semantics ----------------------------------------------------

    def _on_crash(self) -> None:
        # Presumed abort: abort outcomes are volatile and forgotten; an
        # in-doubt participant asking a restarted coordinator about an
        # unlogged transaction gets "aborted", which is correct because
        # commit decisions are *stably logged before any COMMIT message
        # is sent* (see :meth:`_finish`).
        self._active.clear()
        self._outcomes.clear()

    def _handle_outcome(self, query: OutcomeQuery, src: int) -> tuple[str, Version | None]:
        if query.txn_id in self._active:
            return ("active", None)
        committed = self.site.stable.get(f"tm.commit.{query.txn_id}")
        if committed is not None:
            return ("committed", committed)  # type: ignore[return-value]
        outcome = self._outcomes.get(query.txn_id)
        if outcome is not None:
            return outcome
        return ("aborted", None)  # presumed abort

    # -- public API -----------------------------------------------------------

    def submit(self, program: TxnProgram, kind: TxnKind = TxnKind.USER) -> Process:
        """Run ``program`` as a transaction in its own process.

        The returned process succeeds with the program's return value or
        fails with :class:`TransactionAborted` (or the original exception
        for non-protocol bugs). The process dies silently if the site
        crashes mid-flight — in-doubt state is cleaned up by participant
        termination.
        """
        return self.site.spawn(self.run(program, kind), name=f"txn:{kind.value}")

    def submit_ro(self, program: typing.Callable) -> Process:
        """Run ``program`` as a read-only snapshot transaction (``beginRO``).

        The program receives a
        :class:`~repro.txn.context.ReadOnlyTxnContext` and reads at one
        pinned committed snapshot: no locks, no 2PC, no deadlock
        participation. Unlike :meth:`submit`, a RECOVERING home site is
        allowed — it serves the versions it provably holds (the durable
        stale cut) while copiers drain its missing list.
        """
        return self.site.spawn(self.run_ro(program), name="txn:ro")

    def run_ro(
        self, program: typing.Callable, parent_span: int | None = None
    ) -> typing.Generator:
        """Read-only transaction body (see :meth:`submit_ro`)."""
        if self.site.is_down or self.site.user_frozen or self.snapshots is None:
            self.stats.ro_refused += 1
            raise NotOperational(self.site_id)
        txn = Transaction(
            home_site=self.site_id, kind=TxnKind.USER, read_only=True,
            start_time=self.kernel.now,
        )
        obs = self.site.obs
        if obs.spans_on:
            txn.span = obs.spans.start(
                f"txn:{txn.txn_id}", TxnKind.USER.value, self.site_id,
                parent=parent_span, txn_id=txn.txn_id,
            )
            obs.spans.annotate(txn.span, read_only=True)
        snapshot = self.snapshots.begin()
        ctx = ReadOnlyTxnContext(self, txn, snapshot)
        self._active.add(txn.txn_id)
        try:
            try:
                result = yield from program(ctx)
            except ABORT_CAUSES as exc:
                self._finish_ro(txn, TxnStatus.ABORTED, reason=_reason_of(exc))
                raise TransactionAborted(txn.txn_id, _reason_of(exc)) from exc
            except BaseException:
                if not txn.is_finished:
                    self._finish_ro(txn, TxnStatus.ABORTED, reason="crash-or-bug")
                raise
            self._finish_ro(txn, TxnStatus.COMMITTED)
            return result
        finally:
            # Unpin whatever happened — a leaked pin would wedge GC.
            self.snapshots.release(snapshot)

    def _finish_ro(
        self, txn: Transaction, status: TxnStatus, reason: str | None = None
    ) -> None:
        """Terminate a read-only transaction.

        Deliberately disjoint from :meth:`_finish`: no stable commit
        record, no history-recorder outcome, and none of the RW stats —
        a snapshot read commits locally by construction, and mixing it
        into the RW counters would flatter every 2PC statistic.
        """
        txn.status = status
        txn.end_time = self.kernel.now
        txn.abort_reason = reason
        self._active.discard(txn.txn_id)
        obs = self.site.obs
        obs.registry.histogram("txn.latency", self.site_id).observe(
            txn.end_time - txn.start_time
        )
        if txn.span is not None:
            obs.spans.finish(txn.span, status=status.value, reason=reason)
            if status is TxnStatus.COMMITTED:
                obs.spans.annotate(txn.span, ack_time=self.kernel.now)
        if status is TxnStatus.COMMITTED:
            self.stats.ro_committed += 1
            self.stats.ro_latencies.append(txn.end_time - txn.start_time)
        else:
            self.stats.ro_aborted += 1
        for hook in list(self.finish_hooks):
            hook(txn)

    def run(
        self,
        program: TxnProgram,
        kind: TxnKind = TxnKind.USER,
        parent_span: int | None = None,
    ) -> typing.Generator:
        """Transaction body; drive with ``yield from`` or via :meth:`submit`.

        ``parent_span`` nests the transaction's root span under another
        span when tracing is on (e.g. a copier refresh round or a
        recovery run spawning control transactions).
        """
        if kind is TxnKind.USER and (
            not self.site.is_operational or self.site.user_frozen
        ):
            self.stats.refused += 1
            raise NotOperational(self.site_id)
        txn = Transaction(home_site=self.site_id, kind=kind, start_time=self.kernel.now)
        obs = self.site.obs
        if obs.spans_on:
            txn.span = obs.spans.start(
                f"txn:{txn.txn_id}", kind.value, self.site_id,
                parent=parent_span, txn_id=txn.txn_id,
            )
        ctx = TxnContext(self, txn)
        self._active.add(txn.txn_id)
        try:
            if kind is TxnKind.USER:
                yield from self.strategy.begin(ctx)
            result = yield from program(ctx)
        except ABORT_CAUSES as exc:
            yield from self._abort(ctx, exc)
            raise TransactionAborted(txn.txn_id, _reason_of(exc)) from exc
        except BaseException:
            # Programming error or site crash (Interrupt): release what we
            # can and re-raise unchanged.
            if not txn.is_finished:
                self._abort_fire_and_forget(ctx, "crash-or-bug")
            raise
        yield from self._commit(ctx)
        if kind is TxnKind.USER:
            # The commit strategy has returned: this is the moment the
            # client ack leaves, whatever the commit mode kept on the
            # client path.
            self.stats.ack_latencies.append(self.kernel.now - txn.start_time)
            if txn.span is not None:
                # Critpath's window end: under sync 2PC the root span
                # closed at the *decision*, before the commit round the
                # client still waited on.
                obs.spans.annotate(txn.span, ack_time=self.kernel.now)
        return result

    # -- termination --------------------------------------------------------------

    def _commit(self, ctx: TxnContext) -> typing.Generator:
        txn = ctx.txn
        write_sites = sorted(txn.wrote_sites)
        read_only_sites = sorted(txn.touched_sites - txn.wrote_sites)

        if not write_sites:
            self._finish(txn, TxnStatus.COMMITTED, None)
            for site_id in read_only_sites:
                ctx.release_site(site_id)
            return

        strategy = self.commit_strategies[Sync2pcCommit.name]
        if txn.kind is TxnKind.USER:
            strategy = self.commit_strategies[self.config.commit_mode]

        obs = self.site.obs
        two_pc = None
        if obs.spans_on and txn.span is not None:
            two_pc = obs.spans.start(
                "2pc", "2pc", self.site_id, parent=txn.span.span_id
            )
        try:
            # Under async_quorum this returns at the decision (the span
            # then measures time-to-decision; the drain has its own).
            yield from strategy.commit(ctx, write_sites, read_only_sites, two_pc)
        finally:
            if two_pc is not None:
                obs.spans.finish(two_pc, outcome=txn.status.value)

    def decide_version(self, txn: Transaction) -> Version:
        """The committed version under the active version policy."""
        if self.version_policy == "timestamp":
            return Version(txn.start_time, txn.seq, txn.seq)
        return Version(self.kernel.now, next_commit_seq(), txn.seq)

    def mark_missed(
        self,
        txn: Transaction,
        lost_sites: typing.Iterable[int],
        acked_sites: typing.Iterable[int],
    ) -> None:
        """Repair staleness knowledge after commit-ack loss.

        A site that voted yes and then crashed before the COMMIT arrived
        never applied the writes, yet the sites that did apply carry
        write-time ``applied_sites`` naming it — their stale trackers
        recorded nothing. The coordinator is the only party that saw the
        loss, so it fans the ``(item, lost_site)`` pairs out to every
        acked site (and its own); any one surviving entry is enough for
        the lost site's recovery identification to mark the copy.
        Fire-and-forget: the marks only need to land before that site's
        recovery runs, which is bounded below by failure detection.
        """
        lost = sorted(set(lost_sites))
        pairs = tuple(
            (item, site_id)
            for site_id in lost
            for item in sorted(txn.written_items)
            if site_id in self.catalog.sites_of(item)
        )
        if not pairs:
            return
        request = MarkMissedRequest(txn.txn_id, pairs)
        for site_id in sorted(set(acked_sites) | {self.site_id}):
            self.rpc.call(
                site_id, "dm.mark_missed", request, span_parent=txn.span_id
            )

    # -- async drain (async_quorum commit mode) -------------------------------

    def spawn_drain(
        self,
        ctx: TxnContext,
        write_sites: list[int],
        read_only_sites: list[int],
        version: Version,
    ) -> Process:
        """Start the background apply stream for a decided transaction."""
        self.stats.drains_spawned += 1
        return self.site.spawn(
            self._drain(ctx, write_sites, read_only_sites, version),
            name=f"drain:{ctx.txn.txn_id}",
        )

    def _drain(
        self,
        ctx: TxnContext,
        write_sites: list[int],
        read_only_sites: list[int],
        version: Version,
    ) -> typing.Generator:
        """Apply a decided commit at every write site, off the client path.

        Lagging sites are retried ``drain_retries`` times; a site still
        unreachable after that is given up to recovery — its prepared
        participation resolves through the coordinator's stable decision
        record, and its copies catch up through the normal marks +
        ``wal.ship`` transport. Every give-up increments
        ``tm.commit_ack_lost``.
        """
        txn = ctx.txn
        obs = self.site.obs
        span = None
        if obs.spans_on:
            span = obs.spans.start(
                "drain", "drain", self.site_id,
                parent=txn.span_id, txn_id=txn.txn_id,
            )
        span_parent = span.span_id if span is not None else None
        request = CommitRequest(txn.txn_id, version)
        remaining = list(write_sites)
        acked: list[int] = []
        try:
            for site_id in read_only_sites:
                ctx.release_site(site_id)
            attempts = self.config.drain_retries + 1
            for attempt in range(attempts):
                acks = self.rpc.call_many(
                    remaining, "dm.commit", request,
                    timeout=self.config.rpc_timeout, span_parent=span_parent,
                )
                failed: list[int] = []
                for site_id, future in acks:
                    try:
                        yield future
                        acked.append(site_id)
                    except (NetworkError, TransactionError):
                        failed.append(site_id)
                remaining = failed
                if not remaining:
                    break
                if attempt + 1 < attempts:
                    yield self.kernel.timeout(self.config.drain_retry_delay)
            self.stats.commit_ack_lost += len(remaining)
            if remaining:
                self.mark_missed(txn, remaining, acked)
            self.stats.drains_completed += 1
            for hook in list(self.drain_hooks):
                hook(txn, tuple(acked), tuple(remaining))
        finally:
            # Also runs when the coordinator crashes mid-drain: the span
            # closes, and the participants finish via in-doubt
            # resolution against the stable decision record.
            if span is not None:
                obs.spans.finish(span, acked=len(acked), lost=len(remaining))

    def _abort(self, ctx: TxnContext, cause: BaseException) -> typing.Generator:
        txn = ctx.txn
        self._finish(txn, TxnStatus.ABORTED, None, reason=_reason_of(cause))
        acks = self.rpc.call_many(
            sorted(txn.touched_sites), "dm.abort", FinishRequest(txn.txn_id),
            timeout=self.config.rpc_timeout, span_parent=txn.span_id,
        )
        for _site_id, future in acks:
            try:
                yield future
            except (NetworkError, TransactionError):
                # Presumed abort keeps the miss safe (the participant
                # re-derives "aborted"), but count it for observability.
                self.stats.abort_ack_lost += 1
        return None

    def _abort_fire_and_forget(self, ctx: TxnContext, reason: str) -> None:
        txn = ctx.txn
        self._finish(txn, TxnStatus.ABORTED, None, reason=reason)
        if self.site.rpc.running:
            self.rpc.call_many(
                sorted(txn.touched_sites), "dm.abort", FinishRequest(txn.txn_id),
                span_parent=txn.span_id,
            )

    def _finish(
        self,
        txn: Transaction,
        status: TxnStatus,
        version: Version | None,
        reason: str | None = None,
    ) -> None:
        txn.status = status
        txn.end_time = self.kernel.now
        txn.abort_reason = reason
        self._active.discard(txn.txn_id)
        obs = self.site.obs
        obs.registry.histogram("txn.latency", self.site_id).observe(
            txn.end_time - txn.start_time
        )
        if txn.span is not None:
            obs.spans.finish(txn.span, status=status.value, reason=reason)
        if status is TxnStatus.COMMITTED:
            if txn.wrote_sites:
                # The commit point: force the decision to stable storage
                # BEFORE any COMMIT message leaves this site, so a
                # restarted coordinator answers in-doubt participants
                # correctly (presumed abort's one logging requirement).
                self.site.stable.put(f"tm.commit.{txn.txn_id}", version)
            self._outcomes[txn.txn_id] = ("committed", version)
            self.recorder.mark_committed(txn.txn_id)
            self.stats.committed += 1
            self.stats.commit_latencies.append(txn.end_time - txn.start_time)
        else:
            self._outcomes[txn.txn_id] = ("aborted", None)
            self.recorder.mark_aborted(txn.txn_id)
            self.stats.aborted += 1
            self.stats.aborts_by_reason[reason or "unknown"] += 1
        for hook in list(self.finish_hooks):
            hook(txn)


def _reason_of(exc: BaseException) -> str:
    """Stable, kebab-cased abort-reason label for metrics."""
    name = type(exc).__name__
    out = []
    for index, char in enumerate(name):
        if char.isupper() and index > 0:
            out.append("-")
        out.append(char.lower())
    return "".join(out)

"""The transaction manager (TM): supervises transaction execution (§2).

The TM at a site runs each transaction as a simulated process:

1. gate by transaction class (user transactions only at operational
   sites; control transactions also while recovering — §3.3);
2. let the replication strategy establish the transaction's view
   (for ROWAA: the implicit read of the local nominal session vector);
3. drive the user program, whose logical operations the strategy
   interprets into physical DM requests;
4. terminate via presumed-abort two-phase commit over the written sites.

Any protocol-level failure (session mismatch, deadlock victim, copy
unreadable after redirects, RPC timeout, vote no) aborts the transaction
and surfaces as :class:`~repro.errors.TransactionAborted` carrying the
reason — callers and the experiment harness classify aborts by it.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

from repro.errors import (
    NetworkError,
    NotOperational,
    TransactionAborted,
    TransactionError,
)
from repro.histories.recorder import HistoryRecorder
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.site.site import Site
from repro.storage.catalog import Catalog
from repro.storage.copies import Version
from repro.txn.config import TxnConfig
from repro.txn.context import TxnContext
from repro.txn.payloads import CommitRequest, FinishRequest, OutcomeQuery, PrepareRequest
from repro.txn.strategy import ReplicationStrategy
from repro.txn.transaction import Transaction, TxnKind, TxnStatus, next_commit_seq

TxnProgram = typing.Callable[[TxnContext], typing.Generator]

#: Exceptions that abort the transaction (vs. programming errors, which
#: propagate unchanged so they surface as bugs).
ABORT_CAUSES = (TransactionError, NetworkError)


@dataclasses.dataclass
class TmStats:
    """Per-TM counters for the experiment harness."""

    committed: int = 0
    aborted: int = 0
    refused: int = 0  # user txns refused because the site was not operational
    aborts_by_reason: collections.Counter = dataclasses.field(
        default_factory=collections.Counter
    )
    commit_latencies: list[float] = dataclasses.field(default_factory=list)


class TransactionManager:
    """One site's TM."""

    def __init__(
        self,
        kernel: Kernel,
        site: Site,
        catalog: Catalog,
        strategy: ReplicationStrategy,
        recorder: HistoryRecorder,
        config: TxnConfig,
    ) -> None:
        self.kernel = kernel
        self.site = site
        self.catalog = catalog
        self.strategy = strategy
        self.recorder = recorder
        self.config = config
        self.stats = TmStats()
        #: "commit" (default): versions order by 2PC decision instant —
        #: correct for 2PL, where conflict order equals commit order.
        #: "timestamp": versions order by transaction timestamp — the
        #: serialization order of the TO scheduler
        #: (:mod:`repro.txn.timestamp`).
        self.version_policy: str = "commit"
        #: Observers called with the finished Transaction after every
        #: commit or abort (tracing, experiment instrumentation).
        self.finish_hooks: list[typing.Callable[[Transaction], None]] = []
        self._active: set[str] = set()
        self._outcomes: dict[str, tuple[str, Version | None]] = {}
        site.rpc.register("tm.outcome", self._handle_outcome)
        site.crash_hooks.append(self._on_crash)

    @property
    def site_id(self) -> int:
        return self.site.site_id

    @property
    def rpc(self):
        return self.site.rpc

    # -- crash semantics ----------------------------------------------------

    def _on_crash(self) -> None:
        # Presumed abort: abort outcomes are volatile and forgotten; an
        # in-doubt participant asking a restarted coordinator about an
        # unlogged transaction gets "aborted", which is correct because
        # commit decisions are *stably logged before any COMMIT message
        # is sent* (see :meth:`_finish`).
        self._active.clear()
        self._outcomes.clear()

    def _handle_outcome(self, query: OutcomeQuery, src: int) -> tuple[str, Version | None]:
        if query.txn_id in self._active:
            return ("active", None)
        committed = self.site.stable.get(f"tm.commit.{query.txn_id}")
        if committed is not None:
            return ("committed", committed)  # type: ignore[return-value]
        outcome = self._outcomes.get(query.txn_id)
        if outcome is not None:
            return outcome
        return ("aborted", None)  # presumed abort

    # -- public API -----------------------------------------------------------

    def submit(self, program: TxnProgram, kind: TxnKind = TxnKind.USER) -> Process:
        """Run ``program`` as a transaction in its own process.

        The returned process succeeds with the program's return value or
        fails with :class:`TransactionAborted` (or the original exception
        for non-protocol bugs). The process dies silently if the site
        crashes mid-flight — in-doubt state is cleaned up by participant
        termination.
        """
        return self.site.spawn(self.run(program, kind), name=f"txn:{kind.value}")

    def run(
        self,
        program: TxnProgram,
        kind: TxnKind = TxnKind.USER,
        parent_span: int | None = None,
    ) -> typing.Generator:
        """Transaction body; drive with ``yield from`` or via :meth:`submit`.

        ``parent_span`` nests the transaction's root span under another
        span when tracing is on (e.g. a copier refresh round or a
        recovery run spawning control transactions).
        """
        if kind is TxnKind.USER and (
            not self.site.is_operational or self.site.user_frozen
        ):
            self.stats.refused += 1
            raise NotOperational(self.site_id)
        txn = Transaction(home_site=self.site_id, kind=kind, start_time=self.kernel.now)
        obs = self.site.obs
        if obs.spans_on:
            txn.span = obs.spans.start(
                f"txn:{txn.txn_id}", kind.value, self.site_id,
                parent=parent_span, txn_id=txn.txn_id,
            )
        ctx = TxnContext(self, txn)
        self._active.add(txn.txn_id)
        try:
            if kind is TxnKind.USER:
                yield from self.strategy.begin(ctx)
            result = yield from program(ctx)
        except ABORT_CAUSES as exc:
            yield from self._abort(ctx, exc)
            raise TransactionAborted(txn.txn_id, _reason_of(exc)) from exc
        except BaseException:
            # Programming error or site crash (Interrupt): release what we
            # can and re-raise unchanged.
            if not txn.is_finished:
                self._abort_fire_and_forget(ctx, "crash-or-bug")
            raise
        yield from self._commit(ctx)
        return result

    # -- termination --------------------------------------------------------------

    def _commit(self, ctx: TxnContext) -> typing.Generator:
        txn = ctx.txn
        write_sites = sorted(txn.wrote_sites)
        read_only_sites = sorted(txn.touched_sites - txn.wrote_sites)

        if not write_sites:
            self._finish(txn, TxnStatus.COMMITTED, None)
            for site_id in read_only_sites:
                ctx.release_site(site_id)
            return

        obs = self.site.obs
        two_pc = None
        if obs.spans_on and txn.span is not None:
            two_pc = obs.spans.start(
                "2pc", "2pc", self.site_id, parent=txn.span.span_id
            )
        try:
            yield from self._commit_2pc(ctx, write_sites, read_only_sites, two_pc)
        finally:
            if two_pc is not None:
                obs.spans.finish(two_pc, outcome=txn.status.value)

    def _commit_2pc(
        self,
        ctx: TxnContext,
        write_sites: list[int],
        read_only_sites: list[int],
        two_pc,
    ) -> typing.Generator:
        txn = ctx.txn
        span_parent = two_pc.span_id if two_pc is not None else None
        prepare = PrepareRequest(txn_id=txn.txn_id, participants=tuple(write_sites))
        votes = self.rpc.call_many(
            write_sites, "dm.prepare", prepare, timeout=self.config.rpc_timeout,
            span_parent=span_parent,
        )
        all_yes = True
        for _site_id, future in votes:
            try:
                vote = yield future
            except (NetworkError, TransactionError):
                vote = False
            all_yes = all_yes and bool(vote)

        if not all_yes:
            yield from self._abort(ctx, TransactionError("prepare phase failed"))
            raise TransactionAborted(txn.txn_id, "prepare-failed")

        if self.version_policy == "timestamp":
            version = Version(txn.start_time, txn.seq, txn.seq)
        else:
            version = Version(self.kernel.now, next_commit_seq(), txn.seq)
        self._finish(txn, TxnStatus.COMMITTED, version)
        acks = self.rpc.call_many(
            write_sites, "dm.commit", CommitRequest(txn.txn_id, version),
            timeout=self.config.rpc_timeout, span_parent=span_parent,
        )
        for site_id in read_only_sites:
            ctx.release_site(site_id)
        for _site_id, future in acks:
            try:
                yield future
            except (NetworkError, TransactionError):
                pass  # decision is final; recovery marks cover the miss

    def _abort(self, ctx: TxnContext, cause: BaseException) -> typing.Generator:
        txn = ctx.txn
        self._finish(txn, TxnStatus.ABORTED, None, reason=_reason_of(cause))
        acks = self.rpc.call_many(
            sorted(txn.touched_sites), "dm.abort", FinishRequest(txn.txn_id),
            timeout=self.config.rpc_timeout, span_parent=txn.span_id,
        )
        for _site_id, future in acks:
            try:
                yield future
            except (NetworkError, TransactionError):
                pass
        return None

    def _abort_fire_and_forget(self, ctx: TxnContext, reason: str) -> None:
        txn = ctx.txn
        self._finish(txn, TxnStatus.ABORTED, None, reason=reason)
        if self.site.rpc.running:
            self.rpc.call_many(
                sorted(txn.touched_sites), "dm.abort", FinishRequest(txn.txn_id),
                span_parent=txn.span_id,
            )

    def _finish(
        self,
        txn: Transaction,
        status: TxnStatus,
        version: Version | None,
        reason: str | None = None,
    ) -> None:
        txn.status = status
        txn.end_time = self.kernel.now
        txn.abort_reason = reason
        self._active.discard(txn.txn_id)
        obs = self.site.obs
        obs.registry.histogram("txn.latency", self.site_id).observe(
            txn.end_time - txn.start_time
        )
        if txn.span is not None:
            obs.spans.finish(txn.span, status=status.value, reason=reason)
        if status is TxnStatus.COMMITTED:
            if txn.wrote_sites:
                # The commit point: force the decision to stable storage
                # BEFORE any COMMIT message leaves this site, so a
                # restarted coordinator answers in-doubt participants
                # correctly (presumed abort's one logging requirement).
                self.site.stable.put(f"tm.commit.{txn.txn_id}", version)
            self._outcomes[txn.txn_id] = ("committed", version)
            self.recorder.mark_committed(txn.txn_id)
            self.stats.committed += 1
            self.stats.commit_latencies.append(txn.end_time - txn.start_time)
        else:
            self._outcomes[txn.txn_id] = ("aborted", None)
            self.recorder.mark_aborted(txn.txn_id)
            self.stats.aborted += 1
            self.stats.aborts_by_reason[reason or "unknown"] += 1
        for hook in list(self.finish_hooks):
            hook(txn)


def _reason_of(exc: BaseException) -> str:
    """Stable, kebab-cased abort-reason label for metrics."""
    name = type(exc).__name__
    out = []
    for index, char in enumerate(name):
        if char.isupper() and index > 0:
            out.append("-")
        out.append(char.lower())
    return "".join(out)

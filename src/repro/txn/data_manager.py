"""The data manager (DM): physical operations on one site's copies.

Responsibilities (§2, §3.1–§3.2 of the paper):

* carry out physical reads/writes under strict 2PL;
* perform the session-number check on every request: a request tagged
  with an ``expected`` session that differs from the site's actual
  session ``as[k]`` is rejected with
  :class:`~repro.errors.SessionMismatch` — this is what makes stale views
  harmless;
* refuse user operations unless the site is operational, while accepting
  *privileged* (control-transaction) operations in the recovering state;
* reject reads of copies marked unreadable (and notify the recovery
  layer, which may trigger an on-demand copier);
* act as a 2PC participant with presumed-abort semantics and cooperative
  termination, so that locks never leak when a coordinator crashes.

Volatile vs stable: the lock table and all participation records
(buffered writes, prepared flags) die with the site; only committed
writes reach the :class:`~repro.storage.copies.CopyStore`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import (
    CopyUnreadable,
    NetworkError,
    NotOperational,
    SessionMismatch,
    TransactionError,
)
from repro.histories.recorder import HistoryRecorder
from repro.sanitize import hooks as _san
from repro.sim.kernel import Kernel
from repro.site.site import Site
from repro.storage.copies import Version
from repro.txn.config import TxnConfig
from repro.txn.locks import LockManager, LockMode
from repro.txn.payloads import (
    BatchReadRequest,
    CommitRequest,
    FinishRequest,
    MarkMissedRequest,
    OutcomeQuery,
    PrepareRequest,
    ReadRequest,
    SnapshotReadRequest,
    WriteRequest,
)


@dataclasses.dataclass(frozen=True, slots=True)
class WriteIntent:
    """A buffered write awaiting the 2PC decision."""

    value: object
    version_override: Version | None
    applied_sites: tuple[int, ...]
    missed_sites: tuple[int, ...]


@dataclasses.dataclass
class _Participation:
    """Record of one transaction's activity at this DM.

    Volatile by default; under the ``async_quorum`` commit mode a
    prepared participation is also journaled (``durable``) and re-armed
    from the WAL after a crash (``restored``), so an acked commit
    survives even if every write site goes down before applying.
    """

    txn_id: str
    txn_seq: int
    kind: str
    coordinator: int
    writes: dict[str, WriteIntent] = dataclasses.field(default_factory=dict)
    prepared: bool = False
    participants: tuple[int, ...] = ()
    durable: bool = False  # prepare records reached the WAL
    restored: bool = False  # re-armed from the WAL after a crash


class DataManager:
    """One site's DM. Construct once per site; survives crashes in place
    (its volatile state is reset by the site's crash hook)."""

    def __init__(
        self,
        kernel: Kernel,
        site: Site,
        recorder: HistoryRecorder,
        config: TxnConfig,
    ) -> None:
        self.kernel = kernel
        self.site = site
        self.recorder = recorder
        self.config = config
        self.lock_manager = LockManager(
            kernel, site.site_id, config.lock_wait_timeout, obs=site.obs
        )
        self.actual_session = 0  # as[k]; volatile, set by the session manager
        self._participations: dict[str, _Participation] = {}
        self._decided: dict[str, tuple[str, Version | None]] = {}
        self.unreadable_read_hooks: list[typing.Callable[[str], None]] = []
        #: Fault-injection switch for the audit suite: disabling it makes
        #: the DM serve stale-view requests, which the protocol auditor's
        #: session-coherence monitor must then catch.
        self.session_check_enabled = True
        #: Read-only auditor taps; empty (and skipped) unless an auditor
        #: is attached. Signatures:
        #: ``access(expected, privileged, actual_session)`` after the
        #: admission checks pass; ``read(item, version)`` per served
        #: database read; ``apply(txn_id, kind, txn_seq, item, value,
        #: version, overridden)`` per committed physical write.
        self.access_audit_hooks: list[typing.Callable] = []
        self.read_audit_hooks: list[typing.Callable] = []
        self.commit_apply_hooks: list[typing.Callable] = []
        #: Auditor tap for the snapshot-read path: ``hook(item, version,
        #: cut)`` per served snapshot read (``mvcc.snapshot_consistency``).
        self.ro_read_audit_hooks: list[typing.Callable] = []
        #: Optional §5 stale-tracking refinement (fail-locks / missing
        #: lists); called as ``on_commit_write(item, applied, missed)``
        #: for every committed physical write at this site.
        self.stale_tracker: typing.Any = None
        self.stats_session_rejections = 0
        self.stats_unreadable_rejections = 0
        #: Transactions with a live fast-resolver loop (see
        #: :meth:`resolve_coordinated_by`); guards against stacking one
        #: loop per detector transition.
        self._fast_resolving: set[str] = set()

        site.rpc.register("dm.read", self._handle_read)
        site.rpc.register("dm.read_batch", self._handle_read_batch)
        site.rpc.register("dm.read_snapshot", self._handle_read_snapshot)
        site.rpc.register("dm.write", self._handle_write)
        site.rpc.register("dm.prepare", self._handle_prepare)
        site.rpc.register("dm.commit", self._handle_commit)
        site.rpc.register("dm.abort", self._handle_finish)
        site.rpc.register("dm.release", self._handle_finish)
        site.rpc.register("dm.outcome", self._handle_outcome)
        site.rpc.register("dm.mark_missed", self._handle_mark_missed)
        site.crash_hooks.append(self._on_crash)
        # Runs after the WAL's restore (site.power_on replays the log
        # before any hook): re-arm durably prepared, undecided
        # transactions as in-doubt participations.
        site.power_on_hooks.append(self._on_power_on)

    @property
    def site_id(self) -> int:
        return self.site.site_id

    # -- crash semantics ------------------------------------------------------

    def _on_crash(self) -> None:
        self.lock_manager = LockManager(
            self.kernel, self.site_id, self.config.lock_wait_timeout,
            obs=self.site.obs,
        )
        self._participations.clear()
        self._decided.clear()
        self._fast_resolving.clear()
        self.actual_session = 0

    # -- access checks -----------------------------------------------------------

    def _check_access(self, expected: int | None, privileged: bool) -> None:
        if _san.ACTIVE is not None:
            # The session check is the protocol's load-bearing read of
            # as[k]: a request validated against a session number that a
            # concurrent activate() is replacing is exactly the
            # interleaving the schedule sanitizer exists to surface.
            _san.ACTIVE.on_access(
                self.site_id, ("session",), "read",
                "DataManager._check_access", token=self.actual_session,
            )
        if not privileged:
            # §3.1: the request carries the session number the requester
            # believes this site is in; inequality with as[k] rejects it.
            # A recovering site (as[k] = 0) mismatches every tagged request,
            # which is exactly how the paper keeps user transactions out
            # before the type-1 control transaction commits.
            if (
                self.session_check_enabled
                and expected is not None
                and expected != self.actual_session
            ):
                self.stats_session_rejections += 1
                raise SessionMismatch(self.site_id, expected, self.actual_session)
            if not self.site.is_operational or self.site.user_frozen:
                # The frozen state (partition mode) refuses unprivileged
                # physical operations too: serving a read from a possibly
                # stale copy to a peer with an old view would leak the
                # pre-partition world.
                raise NotOperational(self.site_id)
        for hook in self.access_audit_hooks:
            hook(expected, privileged, self.actual_session)

    def _participation(
        self, request: ReadRequest | BatchReadRequest | WriteRequest, src: int
    ) -> _Participation:
        if request.txn_id in self._decided:
            # A straggler operation of a transaction we already finished
            # (its abort raced this request through the network).
            raise TransactionError(
                f"site {self.site_id}: {request.txn_id} already decided"
            )
        part = self._participations.get(request.txn_id)
        if part is None:
            part = _Participation(
                txn_id=request.txn_id,
                txn_seq=request.txn_seq,
                kind=request.kind,
                coordinator=src,
            )
            self._participations[request.txn_id] = part
            self.site.spawn(
                self._orphan_watch(request.txn_id), name=f"orphan-watch:{request.txn_id}"
            )
        return part

    # -- operation handlers ---------------------------------------------------------

    def _handle_read(self, request: ReadRequest, src: int) -> typing.Generator:
        self._check_access(request.expected, request.privileged)
        part = self._participation(request, src)
        if request.item in part.writes:
            # Read-your-own-write: serve the buffered intent.
            intent = part.writes[request.item]
            return intent.value, Version(self.kernel.now, 0, request.txn_seq)
        yield self.lock_manager.acquire(request.txn_id, request.item, LockMode.S)
        if not self.site.copies.has(request.item):
            raise TransactionError(f"site {self.site_id} holds no copy of {request.item}")
        copy = self.site.copies.get(request.item)
        if request.peek_unreadable:
            # Metadata peek (§5 version comparison): not a database read,
            # so no unreadable check and no history record.
            return copy.value, copy.version
        if copy.unreadable:
            self.stats_unreadable_rejections += 1
            # Drop the S lock just granted: the transaction observed no
            # data, and keeping it would block the copier this rejection
            # is about to trigger.
            self.lock_manager.release_one(request.txn_id, request.item)
            for hook in list(self.unreadable_read_hooks):
                hook(request.item)
            raise CopyUnreadable(request.item, self.site_id)
        self.recorder.record_read(
            time=self.kernel.now,
            txn_id=request.txn_id,
            txn_seq=request.txn_seq,
            kind=request.kind,
            item=request.item,
            site=self.site_id,
            version_seq=copy.version.seq,
            version_ts=copy.version.ts,
            version_commit=copy.version.commit,
        )
        for hook in self.read_audit_hooks:
            hook(request.item, copy.version)
        return copy.value, copy.version

    def _handle_read_batch(
        self, request: BatchReadRequest, src: int
    ) -> typing.Generator:
        """Serve several reads of one transaction in a single request.

        Equivalent to the same :class:`ReadRequest` sequence — identical
        locks, rejections, and history records — but one round trip. The
        ROWAA begin uses this to snapshot ``NS[*]`` once per transaction.
        """
        self._check_access(request.expected, request.privileged)
        part = self._participation(request, src)
        results: list[tuple[object, Version]] = []
        for item in request.items:
            if request.txn_id in self._decided:
                # The transaction finished (aborted) while an earlier
                # acquire in this batch was waiting: its locks are gone,
                # and acquiring more here would hand locks to a dead
                # transaction and leak them forever. The unbatched path
                # hits the same condition in `_participation` on each
                # per-item request.
                raise TransactionError(
                    f"site {self.site_id}: {request.txn_id} already decided"
                )
            if item in part.writes:
                intent = part.writes[item]
                results.append((intent.value, Version(self.kernel.now, 0, request.txn_seq)))
                continue
            yield self.lock_manager.acquire(request.txn_id, item, LockMode.S)
            if not self.site.copies.has(item):
                raise TransactionError(f"site {self.site_id} holds no copy of {item}")
            copy = self.site.copies.get(item)
            if copy.unreadable:
                self.stats_unreadable_rejections += 1
                self.lock_manager.release_one(request.txn_id, item)
                for hook in list(self.unreadable_read_hooks):
                    hook(item)
                raise CopyUnreadable(item, self.site_id)
            self.recorder.record_read(
                time=self.kernel.now,
                txn_id=request.txn_id,
                txn_seq=request.txn_seq,
                kind=request.kind,
                item=item,
                site=self.site_id,
                version_seq=copy.version.seq,
                version_ts=copy.version.ts,
                version_commit=copy.version.commit,
            )
            for hook in self.read_audit_hooks:
                hook(item, copy.version)
            results.append((copy.value, copy.version))
        return results

    def _handle_read_snapshot(
        self, request: SnapshotReadRequest, src: int
    ) -> list[tuple[object, Version]]:
        """Serve a read-only transaction's reads at its pinned cut.

        Deliberately a plain (non-generator) handler: the whole batch
        resolves against the version chains in one synchronous step, so
        no committed write can interleave mid-batch — fractured reads
        are structurally impossible. No locks, no session check, no
        participation record, no history entry: the snapshot path never
        touches the RW machinery.
        """
        if self.site.user_frozen:
            # Partition mode fences snapshot reads too: the frozen side
            # must not leak the pre-partition world to clients.
            raise NotOperational(self.site_id)
        store = getattr(self.site, "mvcc", None)
        if store is None:
            raise TransactionError(
                f"site {self.site_id} has no multiversion store"
            )
        cut = (request.cut_ts, request.cut_commit)
        stale = store.is_stale_serving()
        results: list[tuple[object, Version]] = []
        for item in request.items:
            value, version = store.read_at(item, cut)
            for hook in self.ro_read_audit_hooks:
                hook(item, version, cut)
            results.append((value, version))
        store.stats.ro_served += len(results)
        if stale:
            store.stats.ro_served_stale += len(results)
        return results

    def _handle_write(self, request: WriteRequest, src: int) -> typing.Generator:
        self._check_access(request.expected, request.privileged)
        part = self._participation(request, src)
        yield self.lock_manager.acquire(request.txn_id, request.item, LockMode.X)
        if not self.site.copies.has(request.item):
            raise TransactionError(f"site {self.site_id} holds no copy of {request.item}")
        part.writes[request.item] = WriteIntent(
            value=request.value,
            version_override=request.version_override,
            applied_sites=request.applied_sites,
            missed_sites=request.missed_sites,
        )
        if request.prepare:
            # Pipelined 2PC (async_quorum): this ack doubles as a
            # prepare vote. Safe because strict 2PL already holds the X
            # lock and the intent is buffered — the only way to renege
            # is a crash, which the coordinator's quorum rule and the
            # recovery marks cover. Deadlock victims are aborted by the
            # coordinator globally *before* any decision, so the vote's
            # promise is never broken unilaterally.
            part.prepared = True
            part.participants = tuple(request.applied_sites) or (self.site_id,)
            wal = self.site.wal
            if wal is not None:
                wal.log_prepare(
                    request.txn_id,
                    request.txn_seq,
                    part.coordinator,
                    part.participants,
                    request.item,
                    request.value,
                    version_override=request.version_override,
                    applied_sites=request.applied_sites,
                    missed_sites=request.missed_sites,
                )
                part.durable = True
                # Group commit: every prepare landing this timestep
                # shares one stable segment write; the ack is gated on
                # durability but costs no simulated time today — the
                # wal-stall span marks the boundary so critpath charges
                # any future flush latency to wal_stall, not execution.
                obs = self.site.obs
                stall = None
                if obs.spans_on:
                    # Parented to the transaction root (same recorder
                    # across sites); skipped if the root was never
                    # recorded — a parentless txn_id span would usurp
                    # the root registry.
                    root = obs.spans.root_of(request.txn_id)
                    if root is not None:
                        stall = obs.spans.start(
                            "wal-stall", "wal_stall", self.site_id,
                            parent=root, txn_id=request.txn_id,
                        )
                try:
                    yield wal.flush_soon()
                finally:
                    if stall is not None:
                        obs.spans.finish(stall)
        return True

    # -- 2PC participant ------------------------------------------------------------

    def _handle_prepare(self, request: PrepareRequest, src: int) -> bool:
        part = self._participations.get(request.txn_id)
        if part is None:
            # We lost the workspace (crash) or never saw the transaction:
            # vote no; presumed abort makes this safe.
            return False
        part.prepared = True
        part.participants = tuple(request.participants)
        return True

    def _handle_commit(self, request: CommitRequest, src: int) -> bool:
        self._apply_commit(request.txn_id, request.version)
        return True

    def _handle_finish(self, request: FinishRequest, src: int) -> bool:
        self._apply_abort(request.txn_id)
        return True

    def _handle_mark_missed(self, request: MarkMissedRequest, src: int) -> bool:
        """Record (item, site) staleness pairs reported by a coordinator
        whose COMMIT never reached ``site`` — see
        :class:`~repro.txn.payloads.MarkMissedRequest`."""
        if self.stale_tracker is not None:
            for item, missed in request.pairs:
                self.stale_tracker.on_commit_write(item, (), (missed,))
        return True

    def _handle_outcome(self, query: OutcomeQuery, src: int) -> tuple[str, Version | None]:
        decided = self._decided.get(query.txn_id)
        if decided is not None:
            return decided
        part = self._participations.get(query.txn_id)
        if part is None:
            return ("unknown", None)
        return ("prepared" if part.prepared else "active", None)

    def _apply_commit(self, txn_id: str, version: Version) -> None:
        part = self._participations.pop(txn_id, None)
        if part is None:
            return  # idempotent (duplicate decision or post-crash)
        for item, intent in part.writes.items():
            applied = intent.version_override if intent.version_override is not None else version
            if part.restored:
                # In-doubt apply after a restart: a copier may already
                # have refreshed this copy past the prepared write, and
                # the copy's unreadable mark (recovery step 2) must
                # survive the apply — this one committed write does not
                # prove the copy is current.
                if not self.site.copies.has(item):
                    continue
                current = self.site.copies.get(item)
                if current.version >= applied:
                    continue  # superseded while we were down
                was_unreadable = current.unreadable
                self.site.copies.apply_write(item, intent.value, applied)
                if was_unreadable:
                    self.site.copies.mark_unreadable(item)
            else:
                self.site.copies.apply_write(item, intent.value, applied)
            self.recorder.record_write(
                time=self.kernel.now,
                txn_id=txn_id,
                txn_seq=part.txn_seq,
                kind=part.kind,
                item=item,
                site=self.site_id,
                version_seq=applied.seq,
                version_ts=applied.ts,
                version_commit=applied.commit,
            )
            if self.stale_tracker is not None:
                self.stale_tracker.on_commit_write(
                    item,
                    intent.applied_sites,
                    intent.missed_sites,
                    value=intent.value,
                    version=applied,
                )
            for hook in self.commit_apply_hooks:
                hook(
                    txn_id,
                    part.kind,
                    part.txn_seq,
                    item,
                    intent.value,
                    applied,
                    intent.version_override is not None,
                )
        self._decided[txn_id] = ("committed", version)
        if self.site.wal is not None:
            if part.durable:
                # The resolve record rides the same group commit as the
                # applied writes; it retires the in-doubt prepare.
                self.site.wal.log_resolve(txn_id, "committed")
            if part.writes or part.durable:
                # Group commit: every record journaled while applying this
                # transaction's writes becomes durable in one segment write.
                self.site.wal.on_commit()
        self.lock_manager.cancel(txn_id)

    def _apply_abort(self, txn_id: str) -> None:
        part = self._participations.pop(txn_id, None)
        if part is not None:
            self._decided[txn_id] = ("aborted", None)
            if part.durable and self.site.wal is not None:
                # Lazy durability: losing this record only re-arms the
                # transaction as in-doubt, and resolution re-aborts.
                self.site.wal.log_resolve(txn_id, "aborted")
        self.lock_manager.cancel(txn_id)

    # -- orphan/in-doubt termination -----------------------------------------------

    def _on_power_on(self) -> None:
        """Re-arm durably prepared, undecided transactions after a restart.

        The WAL's restore (which ran just before this hook) collected
        every prepare record without a matching resolve. Each becomes an
        in-doubt participation — prepared, holding no locks (the site is
        recovering, so user traffic is fenced off by ``as[k] = 0``) —
        and a resolver process that queries the coordinator immediately
        instead of waiting out ``decision_timeout``.
        """
        wal = self.site.wal
        if wal is None:
            return
        for txn_id, records in wal.unresolved_prepares().items():
            if txn_id in self._participations or txn_id in self._decided:
                continue
            writes: dict[str, WriteIntent] = {}
            coordinator = self.site_id
            txn_seq = 0
            participants: tuple[int, ...] = ()
            for record in records:  # LSN order: the last record per item wins
                assert record.item is not None
                writes[record.item] = WriteIntent(
                    value=record.value,
                    version_override=record.version,
                    applied_sites=record.applied_sites,
                    missed_sites=record.missed_sites,
                )
                txn_seq = record.txn_seq
                participants = record.participants
                if record.coordinator is not None:
                    coordinator = record.coordinator
            self._participations[txn_id] = _Participation(
                txn_id=txn_id,
                txn_seq=txn_seq,
                kind="user",
                coordinator=coordinator,
                writes=writes,
                prepared=True,
                participants=participants,
                durable=True,
                restored=True,
            )
            self.site.spawn(self._indoubt_watch(txn_id), name=f"in-doubt:{txn_id}")

    def _indoubt_watch(self, txn_id: str) -> typing.Generator:
        """Resolve a restored in-doubt participation, starting right away."""
        while True:
            part = self._participations.get(txn_id)
            if part is None:
                return
            done = yield from self._resolve(part)
            if done:
                yield from self._announce_outcome(part)
                return
            yield self.kernel.timeout(self.config.indoubt_retry)

    def _announce_outcome(self, part: _Participation) -> typing.Generator:
        """Cooperative-termination push after resolving a restored in-doubt
        transaction: tell the other participants the outcome.

        They are polling the coordinator too, but every blocked attempt
        eats a full RPC-timeout round against the (then-down) coordinator
        before falling back to peers — this push releases their X locks
        within one message delay of this site powering back on. Both
        messages are idempotent duplicates of the coordinator's own
        decision traffic, so racing the peers' resolvers is harmless.
        """
        outcome = self._decided.get(part.txn_id)
        if outcome is None:
            return
        status, version = outcome
        for peer in part.participants:
            if peer == self.site_id:
                continue
            try:
                if status == "committed":
                    assert version is not None
                    yield self.site.rpc.call(
                        peer, "dm.commit", CommitRequest(part.txn_id, version),
                        timeout=self.config.rpc_timeout,
                    )
                else:
                    yield self.site.rpc.call(
                        peer, "dm.abort", FinishRequest(part.txn_id),
                        timeout=self.config.rpc_timeout,
                    )
            except (NetworkError, TransactionError):
                continue  # the peer's own resolver remains the backstop

    def resolve_coordinated_by(self, coordinator: int) -> None:
        """Immediately resolve transactions coordinated by a site whose
        reachability just changed (declared down, or announced back up).

        On the *down* transition: without this, locks held by a crashed
        coordinator's transactions leak until the periodic orphan
        watcher's ``decision_timeout`` fires — long enough to stall user
        transactions and, transitively, the NS lock chain a recovering
        site's type-1 needs (observed in the operations-dashboard
        incident). On the *up* transition: a durably prepared in-doubt
        participant blocked on the classic 2PC window gets its
        authoritative answer (stable decision record, else presumed
        abort) the moment the coordinator announces recovery, instead of
        holding its X locks for up to ``decision_timeout`` after the
        coordinator is already back — under ``async_quorum``, whose
        pipelined prepares make every mid-transaction coordinator crash
        an in-doubt episode, that gap is the difference between a brief
        stall and wedging every hot item for the poll interval. The
        watcher remains as the backstop for coordinators that stop
        answering without crashing.
        """
        for part in list(self._participations.values()):
            if part.coordinator == coordinator and (
                part.txn_id not in self._fast_resolving
            ):
                self._fast_resolving.add(part.txn_id)
                self.site.spawn(
                    self._resolve_fast(part.txn_id),
                    name=f"orphan-now:{part.txn_id}",
                )

    def _resolve_fast(self, txn_id: str) -> typing.Generator:
        """Resolve now; while blocked in doubt, re-poll at ``indoubt_retry``.

        A single blocked attempt is not enough: the coordinator answers
        ``tm.outcome`` from stable storage the moment it is powered back
        on — polling fast turns "X locks held until the coordinator's
        recovery procedure completes" into "held until it has power".
        """
        try:
            while True:
                part = self._participations.get(txn_id)
                if part is None:
                    return
                done = yield from self._resolve(part)
                if done or not part.prepared:
                    return
                yield self.kernel.timeout(self.config.indoubt_retry)
        finally:
            self._fast_resolving.discard(txn_id)

    def _orphan_watch(self, txn_id: str) -> typing.Generator:
        """Resolve transactions whose coordinator stopped talking to us.

        Covers both in-doubt prepared participants (classic 2PC
        termination) and plain orphans (coordinator crashed before
        prepare, leaving locks held here). Presumed abort: when neither
        the coordinator nor any peer knows a commit, abort. Once a
        prepared participant has *tried* termination and come up empty
        (blocked in doubt, X locks held), it drops to the much shorter
        ``indoubt_retry`` period.
        """
        interval = self.config.decision_timeout
        while True:
            yield self.kernel.timeout(interval)
            part = self._participations.get(txn_id)
            if part is None:
                return  # decided through the normal path
            done = yield from self._resolve(part)
            if done:
                return
            if part.prepared:
                interval = self.config.indoubt_retry

    def _resolve(self, part: _Participation) -> typing.Generator:
        status, version = yield from self._query(
            part.coordinator, "tm.outcome", part.txn_id
        )
        if status == "committed":
            assert version is not None
            self._apply_commit(part.txn_id, version)
            return True
        if status == "aborted":
            self._apply_abort(part.txn_id)
            return True
        if status == "active":
            return False  # coordinator alive and still working; keep waiting
        # Coordinator unreachable: ask the other participants
        # (cooperative termination).
        for peer in part.participants:
            if peer == self.site_id:
                continue
            status, version = yield from self._query(peer, "dm.outcome", part.txn_id)
            if status == "committed":
                assert version is not None
                self._apply_commit(part.txn_id, version)
                return True
            if status == "aborted":
                self._apply_abort(part.txn_id)
                return True
        if part.prepared:
            # In doubt with no decisive evidence: BLOCK (keep polling).
            # The coordinator logs commit decisions stably before sending
            # them, so when it recovers it will answer authoritatively;
            # unilaterally presuming abort here could undo a decided
            # commit (the classic 2PC blocking window).
            return False
        # Never prepared: the coordinator cannot have decided commit, so
        # presumed abort is safe for a plain orphan.
        self._apply_abort(part.txn_id)
        return True

    def _query(self, site_id: int, kind: str, txn_id: str) -> typing.Generator:
        try:
            reply = yield self.site.rpc.call(
                site_id, kind, OutcomeQuery(txn_id), timeout=self.config.rpc_timeout
            )
        except (NetworkError, TransactionError):
            return ("unreachable", None)
        return reply

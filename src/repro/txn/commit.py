"""Commit strategies: how a TM terminates a writing transaction.

Two implementations of the :class:`~repro.txn.strategy.CommitStrategy`
seam, selected by ``TxnConfig.commit_mode``:

* :class:`Sync2pcCommit` — the baseline presumed-abort 2PC: a prepare
  round to every write site, the stable decision, a commit round, and
  only then the client ack. Client latency is two sequential RPC rounds
  past the write-all.

* :class:`AsyncQuorumCommit` — the SCAR-style minimal-coordination fast
  path. The prepare phase is *pipelined into the write round*: every
  async-mode write request carries ``prepare=True``, so the DM journals
  the intent durably (WAL group commit) and votes yes in the same ack
  the write-all already waits for. At the commit point the coordinator
  checks the quorum rule — for every written item, a majority of the
  item's resident copies must be prepared — stably logs the decision,
  acks the client immediately, and *drains* the ``dm.commit`` applies in
  a background process. Client latency is the write-all round alone.

Why pipelined prepare is a sound yes-vote: by the time the write-all
returns, every write site holds the X lock and the buffered intent under
strict 2PL; the only way a participant can renege is a crash, which is
exactly what the quorum rule, the durable prepare records (in-doubt
re-arming, :meth:`repro.txn.data_manager.DataManager._on_power_on`) and
the recovery marks cover. Deadlock victims are aborted globally by the
coordinator *before* any decision, so a vote is never withdrawn
unilaterally.

Why acking before the applies preserves one-serializability: laggards
still hold their X locks until the drained apply lands, so no reader can
observe a pre-commit value after the client was acked; a drained site
that crashes instead is fenced by ``as[k] = 0`` and recovers the write
via the normal marks + ``wal.ship`` catch-up.
"""

from __future__ import annotations

import typing

from repro.errors import NetworkError, TransactionAborted, TransactionError
from repro.txn.payloads import CommitRequest, PrepareRequest
from repro.txn.transaction import Transaction, TxnStatus

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.txn.context import TxnContext
    from repro.txn.manager import TransactionManager


def quorum_needed(catalog, txn: Transaction, write_sites: list[int]) -> int:
    """The §"Commit modes" quorum rule: the decision needs, for every
    written item, a majority of the item's resident copies prepared.

    Collapsed to a single threshold: the largest per-item majority,
    capped at the write-set size (a write-all that reached every
    nominally-up resident cannot be asked for more sites than it has).
    """
    needed = 1
    for item in txn.written_items:
        residents = catalog.sites_of(item)
        if residents:
            needed = max(needed, len(residents) // 2 + 1)
    return min(needed, len(write_sites))


class Sync2pcCommit:
    """Presumed-abort 2PC, client acked after the commit round."""

    name = "sync_2pc"

    def __init__(self, tm: "TransactionManager") -> None:
        self.tm = tm

    def commit(
        self,
        ctx: "TxnContext",
        write_sites: list[int],
        read_only_sites: list[int],
        span,
    ) -> typing.Generator:
        tm = self.tm
        txn = ctx.txn
        txn.commit_mode = self.name
        span_parent = span.span_id if span is not None else None
        prepare = PrepareRequest(txn_id=txn.txn_id, participants=tuple(write_sites))
        votes = tm.rpc.call_many(
            write_sites, "dm.prepare", prepare, timeout=tm.config.rpc_timeout,
            span_parent=span_parent,
        )
        all_yes = True
        for _site_id, future in votes:
            try:
                vote = yield future
            except (NetworkError, TransactionError):
                vote = False
            all_yes = all_yes and bool(vote)

        if not all_yes:
            yield from tm._abort(ctx, TransactionError("prepare phase failed"))
            raise TransactionAborted(txn.txn_id, "prepare-failed")

        version = tm.decide_version(txn)
        tm._finish(txn, TxnStatus.COMMITTED, version)
        acks = tm.rpc.call_many(
            write_sites, "dm.commit", CommitRequest(txn.txn_id, version),
            timeout=tm.config.rpc_timeout, span_parent=span_parent,
        )
        for site_id in read_only_sites:
            ctx.release_site(site_id)
        acked: list[int] = []
        lost: list[int] = []
        for site_id, future in acks:
            try:
                yield future
                acked.append(site_id)
            except (NetworkError, TransactionError):
                # The decision is final; the miss is counted and the
                # acked sites' stale trackers are told about it so the
                # lost site's recovery marks the copies.
                tm.stats.commit_ack_lost += 1
                lost.append(site_id)
        if lost:
            tm.mark_missed(txn, lost, acked)


class AsyncQuorumCommit:
    """Quorum decision at the write-all ack; applies drained asynchronously."""

    name = "async_quorum"

    def __init__(self, tm: "TransactionManager") -> None:
        self.tm = tm

    def commit(
        self,
        ctx: "TxnContext",
        write_sites: list[int],
        read_only_sites: list[int],
        span,
    ) -> typing.Generator:
        tm = self.tm
        txn = ctx.txn
        txn.commit_mode = self.name
        txn.quorum_needed = quorum_needed(tm.catalog, txn, write_sites)
        prepared = txn.prepared_sites & set(write_sites)
        obs = tm.site.obs
        if len(prepared) < txn.quorum_needed:
            # Fallback explicit prepare round: some write path did not
            # pipeline its prepare (e.g. a baseline strategy writing
            # through plain dm_write). Votes here are volatile — the
            # normal pipelined path is the durable one. The quorum-wait
            # span marks this round as the client-visible stall critpath
            # charges to prepare_wait.
            span_parent = span.span_id if span is not None else None
            wait_span = None
            if obs.spans_on and span is not None:
                wait_span = obs.spans.start(
                    "quorum-wait", "quorum", tm.site_id,
                    parent=span_parent, txn_id=txn.txn_id,
                )
            rest = [s for s in write_sites if s not in prepared]
            request = PrepareRequest(
                txn_id=txn.txn_id, participants=tuple(write_sites)
            )
            votes = tm.rpc.call_many(
                rest, "dm.prepare", request, timeout=tm.config.rpc_timeout,
                span_parent=span_parent,
            )
            try:
                for site_id, future in votes:
                    try:
                        if bool((yield future)):
                            prepared.add(site_id)
                    except (NetworkError, TransactionError):
                        pass
            finally:
                if wait_span is not None:
                    obs.spans.finish(
                        wait_span, prepared=len(prepared),
                        needed=txn.quorum_needed,
                    )
            if len(prepared) < txn.quorum_needed:
                yield from tm._abort(
                    ctx, TransactionError("quorum prepare failed")
                )
                raise TransactionAborted(txn.txn_id, "prepare-failed")
        elif span is not None:
            # The fast path: the quorum was already satisfied by the
            # pipelined prepares, so the wait was absorbed by the
            # write-all round. Record the counts on the 2pc span.
            obs.spans.annotate(
                span, prepared=len(prepared), needed=txn.quorum_needed,
                quorum_pipelined=True,
            )
        # The commit point: the decision is stably logged inside
        # _finish before any COMMIT message leaves this site, then the
        # client is acked — the applies happen in the drain process.
        version = tm.decide_version(txn)
        tm._finish(txn, TxnStatus.COMMITTED, version)
        tm.stats.async_commits += 1
        tm.spawn_drain(ctx, write_sites, read_only_sites, version)

"""Typed payloads of the TM↔DM protocol messages.

Each payload exposes a ``wire_size`` property — a coarse serialized-size
model (identifier strings at one byte per character, numbers and flags at
8 bytes each) used by the network layer's byte accounting
(:class:`~repro.net.network.NetworkStats`). The absolute numbers are
nominal; what matters for the E3/E7 overhead experiments is that batched
requests weigh proportionally to their item count.
"""

from __future__ import annotations

import dataclasses

from repro.storage.copies import Version

#: Fixed cost of txn_id + seq + kind + flags in the size model.
_HEADER_BYTES = 24


@dataclasses.dataclass(frozen=True, slots=True)
class ReadRequest:
    """Read one physical copy (§3.2).

    ``expected`` is the session number the requester believes the target
    site is in (``ns_i[k]``); ``None`` disables the check (used by
    baselines that predate session numbers, and for a TM's reads at its
    own site where TM and DM share ``as[k]``). ``privileged`` marks
    control-transaction operations, which recovering sites must accept
    (§3.3).
    """

    txn_id: str
    txn_seq: int
    kind: str
    item: str
    expected: int | None = None
    privileged: bool = False
    peek_unreadable: bool = False
    """Copier bookkeeping read: may observe an unreadable copy's version
    (for the §5 version-number optimisation) and is not recorded in the
    history — it reads metadata, not the database."""

    @property
    def wire_size(self) -> int:
        return _HEADER_BYTES + len(self.item)


@dataclasses.dataclass(frozen=True, slots=True)
class BatchReadRequest:
    """Read several physical copies at one site in a single request.

    Semantically identical to issuing one :class:`ReadRequest` per item
    in order (same locks, same session check, same history records), but
    it costs one RPC round trip and one serving process instead of
    ``len(items)`` of each. Used by the ROWAA implicit begin to
    materialise the whole nominal session vector ``NS[*]`` once per
    transaction (§3.2 makes these local reads, so batching them keeps
    the paper's "negligible overhead" claim true even at scale).
    """

    txn_id: str
    txn_seq: int
    kind: str
    items: tuple[str, ...]
    expected: int | None = None
    privileged: bool = False

    @property
    def wire_size(self) -> int:
        return _HEADER_BYTES + sum(len(item) for item in self.items)


@dataclasses.dataclass(frozen=True, slots=True)
class SnapshotReadRequest:
    """Read several items at one committed snapshot cut (``beginRO``).

    Served by the multiversion store entirely outside the lock manager
    and 2PC: the whole batch resolves synchronously against the pinned
    cut ``(cut_ts, cut_commit)``, so the reads are a consistent
    committed prefix by construction. No session check — snapshot reads
    are valid at recovering sites precisely *because* they read below
    the cut the site provably holds.
    """

    txn_id: str
    txn_seq: int
    items: tuple[str, ...]
    cut_ts: float
    cut_commit: int

    @property
    def wire_size(self) -> int:
        return _HEADER_BYTES + sum(len(item) for item in self.items) + 16


@dataclasses.dataclass(frozen=True, slots=True)
class WriteRequest:
    """Buffer a write intent for one physical copy.

    ``version_override`` carries the source version for copier-style
    writes (copiers and the renovation writes of type-1 control
    transactions), preserving original-writer provenance (§4).
    """

    txn_id: str
    txn_seq: int
    kind: str
    item: str
    value: object
    expected: int | None = None
    privileged: bool = False
    version_override: Version | None = None
    applied_sites: tuple[int, ...] = ()
    """All sites this logical write is being sent to (their copies become
    current at commit); used by the §5 stale-tracking refinements."""
    missed_sites: tuple[int, ...] = ()
    """Resident sites the writer skipped because they were nominally down;
    their copies miss this update (fail-locks / missing-list entries)."""
    prepare: bool = False
    """Pipelined 2PC (``async_quorum``): the write ack doubles as a
    prepare vote — the DM durably journals the intent (WAL prepare
    record, group-committed on a kernel microtask) and marks its
    participation prepared, so commit needs no separate prepare round.
    ``applied_sites`` then also names the participant set for
    cooperative termination."""

    @property
    def wire_size(self) -> int:
        return (
            _HEADER_BYTES
            + len(self.item)
            + 8  # the value, modeled as one word
            + 8 * (len(self.applied_sites) + len(self.missed_sites))
            + (16 if self.version_override is not None else 0)
            + (1 if self.prepare else 0)
        )


@dataclasses.dataclass(frozen=True, slots=True)
class PrepareRequest:
    """2PC phase one. ``participants`` enables cooperative termination."""

    txn_id: str
    participants: tuple[int, ...]

    @property
    def wire_size(self) -> int:
        return _HEADER_BYTES + 8 * len(self.participants)


@dataclasses.dataclass(frozen=True, slots=True)
class CommitRequest:
    """2PC decision: apply buffered writes with ``version``."""

    txn_id: str
    version: Version

    @property
    def wire_size(self) -> int:
        return _HEADER_BYTES + 16


@dataclasses.dataclass(frozen=True, slots=True)
class MarkMissedRequest:
    """Coordinator's staleness correction after commit-ack loss
    (``dm.mark_missed``).

    When a write site never acks the COMMIT (it crashed in the window
    between its yes-vote and the apply), the sites that *did* apply
    believe the write landed everywhere — their write-time
    ``applied_sites`` included the now-crashed site. Only the
    coordinator observes the loss, so it fans these ``(item, site)``
    pairs to the acked sites; their stale trackers record the miss and
    the crashed site's recovery marks the copy unreadable.
    """

    txn_id: str
    pairs: tuple[tuple[str, int], ...]

    @property
    def wire_size(self) -> int:
        return _HEADER_BYTES + sum(len(item) + 8 for item, _site in self.pairs)


@dataclasses.dataclass(frozen=True, slots=True)
class FinishRequest:
    """Abort or release: drop buffered writes, release all locks."""

    txn_id: str

    @property
    def wire_size(self) -> int:
        return _HEADER_BYTES


@dataclasses.dataclass(frozen=True, slots=True)
class OutcomeQuery:
    """Ask a TM or DM what it knows about a transaction's fate."""

    txn_id: str

    @property
    def wire_size(self) -> int:
        return _HEADER_BYTES

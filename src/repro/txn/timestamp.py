"""Timestamp-ordering concurrency control (the second member of the
paper's "large group of concurrency control algorithms", §1).

The recovery algorithm only requires that the system's concurrency
control yields histories with acyclic conflict graphs over DB ∪ NS
(Theorem 3 is stated against the DCP/DSR class). Strict 2PL is the
default; this module provides classical timestamp ordering (TO) as an
alternative, demonstrating that the session-number machinery composes
with a lock-free scheduler unchanged — control transactions, copiers
and the recovery procedure run on top of either.

Scheme (deferred writes + presumed-abort 2PC, conservative conflicts):

* a transaction's timestamp is its globally unique sequence number
  (assigned at start, monotone with start order);
* READ(x):   reject if committed ``wts(x) > ts`` or a *pending* write
  intent with smaller timestamp exists (we would miss it); else set
  ``rts(x) = max(rts, ts)`` and read the committed copy;
* WRITE(x):  reject if ``rts(x) > ts`` (a younger reader must not have
  missed us); buffer the intent;
* APPLY at commit follows the Thomas write rule: a write whose version
  is older than the copy's current version is skipped (and not recorded
  — it is invisible to every reader, so the one-copy history is
  unaffected).

Versions under TO order by *timestamp*, not commit instant (the
serialization order IS the timestamp order), so the coordinator builds
``Version(start_time, seq, seq)`` — see
:attr:`~repro.txn.manager.TransactionManager.version_policy`.

Rejections abort the transaction (retries get fresh, larger
timestamps); TO trades deadlock-freedom for a higher abort rate — the
`tests/txn/test_timestamp.py` suite measures both.
"""

from __future__ import annotations

import typing

from repro.errors import CopyUnreadable, TimestampOrderViolation, TransactionError
from repro.storage.copies import Version
from repro.txn.data_manager import DataManager, WriteIntent
from repro.txn.payloads import ReadRequest, WriteRequest


class TimestampDataManager(DataManager):
    """A DM whose scheduler is timestamp ordering instead of 2PL.

    The lock manager inherited from the base class stays empty (its
    cancel/release calls are harmless no-ops), so the global deadlock
    detector sees no edges — TO cannot deadlock.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rts: dict[str, int] = {}
        self._wts: dict[str, int] = {}
        self._pending_writes: dict[str, set[int]] = {}
        self.stats_to_rejections = 0

    def _on_crash(self) -> None:
        super()._on_crash()
        self._rts.clear()
        self._wts.clear()
        self._pending_writes.clear()

    # -- scheduler ------------------------------------------------------------

    def _reject(self, txn_id: str, item: str, detail: str) -> typing.NoReturn:
        self.stats_to_rejections += 1
        raise TimestampOrderViolation(txn_id, item, detail)

    def _handle_read(self, request: ReadRequest, src: int) -> typing.Generator:
        yield from ()
        self._check_access(request.expected, request.privileged)
        part = self._participation(request, src)
        if request.item in part.writes:
            intent = part.writes[request.item]
            return intent.value, Version(self.kernel.now, 0, request.txn_seq)
        if not self.site.copies.has(request.item):
            raise TransactionError(f"site {self.site_id} holds no copy of {request.item}")
        copy = self.site.copies.get(request.item)
        if request.peek_unreadable:
            return copy.value, copy.version
        ts = request.txn_seq
        if self._wts.get(request.item, 0) > ts:
            self._reject(request.txn_id, request.item, "read after younger write")
        pending = self._pending_writes.get(request.item, set())
        if any(writer < ts for writer in pending if writer != ts):
            # An older write intent is still in flight; reading the
            # committed value would miss it. Conservative: abort (a
            # waiting variant would be TO with commit dependencies).
            self._reject(request.txn_id, request.item, "older write pending")
        if copy.unreadable:
            self.stats_unreadable_rejections += 1
            for hook in list(self.unreadable_read_hooks):
                hook(request.item)
            raise CopyUnreadable(request.item, self.site_id)
        self._rts[request.item] = max(self._rts.get(request.item, 0), ts)
        self.recorder.record_read(
            time=self.kernel.now,
            txn_id=request.txn_id,
            txn_seq=request.txn_seq,
            kind=request.kind,
            item=request.item,
            site=self.site_id,
            version_seq=copy.version.seq,
            version_ts=copy.version.ts,
            version_commit=copy.version.commit,
        )
        return copy.value, copy.version

    def _handle_write(self, request: WriteRequest, src: int) -> typing.Generator:
        yield from ()
        self._check_access(request.expected, request.privileged)
        part = self._participation(request, src)
        if not self.site.copies.has(request.item):
            raise TransactionError(f"site {self.site_id} holds no copy of {request.item}")
        ts = request.txn_seq
        if self._rts.get(request.item, 0) > ts:
            self._reject(request.txn_id, request.item, "write after younger read")
        part.writes[request.item] = WriteIntent(
            value=request.value,
            version_override=request.version_override,
            applied_sites=request.applied_sites,
            missed_sites=request.missed_sites,
        )
        self._pending_writes.setdefault(request.item, set()).add(ts)
        return True

    # -- decisions ---------------------------------------------------------------

    def _apply_commit(self, txn_id: str, version: Version) -> None:
        part = self._participations.pop(txn_id, None)
        if part is None:
            return
        for item, intent in part.writes.items():
            self._forget_pending(item, part.txn_seq)
            applied = (
                intent.version_override
                if intent.version_override is not None
                else version
            )
            copy = self.site.copies.get(item)
            if applied <= copy.version:
                # Thomas write rule: an older write is skipped. An
                # *equal*-version write (a copier that found the copy
                # already current) still validates it — the mark must
                # clear exactly as a 2PL apply would have.
                if applied == copy.version and copy.unreadable:
                    self.site.copies.clear_unreadable(item)
                continue
            self.site.copies.apply_write(item, intent.value, applied)
            self._wts[item] = max(self._wts.get(item, 0), applied.seq)
            self.recorder.record_write(
                time=self.kernel.now,
                txn_id=txn_id,
                txn_seq=part.txn_seq,
                kind=part.kind,
                item=item,
                site=self.site_id,
                version_seq=applied.seq,
                version_ts=applied.ts,
                version_commit=applied.commit,
            )
            if self.stale_tracker is not None:
                self.stale_tracker.on_commit_write(
                    item,
                    intent.applied_sites,
                    intent.missed_sites,
                    value=intent.value,
                    version=applied,
                )
        self._decided[txn_id] = ("committed", version)
        if part.writes and self.site.wal is not None:
            self.site.wal.on_commit()  # group commit, as in the 2PL DM
        self.lock_manager.cancel(txn_id)  # no-op safety

    def _apply_abort(self, txn_id: str) -> None:
        part = self._participations.get(txn_id)
        if part is not None:
            for item in part.writes:
                self._forget_pending(item, part.txn_seq)
        super()._apply_abort(txn_id)

    def _forget_pending(self, item: str, ts: int) -> None:
        pending = self._pending_writes.get(item)
        if pending is not None:
            pending.discard(ts)
            if not pending:
                self._pending_writes.pop(item, None)

"""Global deadlock detection over the distributed wait-for graph.

Strict 2PL over replicated data deadlocks in the usual ways (lock-order
inversion, S→X upgrade races), and write-all replication adds distributed
cycles spanning sites. We run a periodic global detector: it unions the
wait-for edges of every live site's lock table, finds a cycle, and kills
the *youngest* transaction in it (highest sequence number — the cheapest
to redo).

The detector is a simulation-level process with direct access to the lock
tables. A production system would run edge-chasing or a probe protocol;
the paper is silent on the mechanism and only requires that *some* correct
concurrency control exists (§2), so centralised detection is a faithful
stand-in that produces the same set of aborts.
"""

from __future__ import annotations

import typing

import networkx

from repro.sim.kernel import Kernel
from repro.txn.locks import LockManager


def txn_seq(txn_id: str) -> int:
    """Extract the global sequence number from a transaction id."""
    return int(txn_id[1:].split("@", 1)[0])


class GlobalDeadlockDetector:
    """Periodically breaks wait-for cycles by aborting the youngest waiter.

    Parameters
    ----------
    kernel:
        Simulation kernel.
    lock_managers:
        Zero-argument callable returning the lock managers of the
        currently *live* sites (a crashed site's table is gone along with
        its in-flight transactions, so it must not contribute edges).
    interval:
        Virtual time between detection sweeps.
    """

    def __init__(
        self,
        kernel: Kernel,
        lock_managers: typing.Callable[[], typing.Iterable[LockManager]],
        interval: float = 10.0,
    ) -> None:
        self.kernel = kernel
        self._lock_managers = lock_managers
        self.interval = interval
        self.victims_chosen = 0
        self._proc = kernel.process(self._run(), name="deadlock-detector")
        self._proc.defuse()

    def stop(self) -> None:
        """Halt the periodic sweeps (lets ``kernel.run()`` drain)."""
        if self._proc.is_alive:
            self._proc.interrupt("stop")

    def _run(self) -> typing.Generator:
        while True:
            yield self.kernel.timeout(self.interval)
            self.sweep()

    def sweep(self) -> list[str]:
        """One detection pass; returns the victims aborted (usually 0/1).

        Repeats until the graph is acyclic, so several independent cycles
        are all broken within one sweep.
        """
        victims: list[str] = []
        while True:
            victim = self._break_one_cycle()
            if victim is None:
                return victims
            victims.append(victim)

    def _break_one_cycle(self) -> str | None:
        managers = list(self._lock_managers())
        graph = networkx.DiGraph()
        for manager in managers:
            graph.add_edges_from(manager.wait_edges())
        try:
            cycle = networkx.find_cycle(graph)
        except networkx.NetworkXNoCycle:
            return None
        cycle_txns = {edge[0] for edge in cycle}
        victim = max(cycle_txns, key=txn_seq)
        self.victims_chosen += 1
        for manager in managers:
            manager.kill_waiter(victim)
        return victim

"""The replication-strategy interface.

A strategy is the *interpretation* of logical READ/WRITE operations over
physical copies (§2 of the paper): strict ROWA, the paper's ROWAA with
session numbers, quorum consensus, directory-based available copies, or
the deliberately broken naive scheme from the §1 counter-example. The TM
is strategy-agnostic; user programs see only logical operations.

Strategy methods are generator functions driven inside the transaction's
process, so they can perform (and block on) DM operations through the
:class:`~repro.txn.context.TxnContext` helpers.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.txn.context import TxnContext


class ReplicationStrategy(typing.Protocol):
    """Interprets logical operations for one system configuration."""

    name: str

    def begin(self, ctx: "TxnContext") -> typing.Generator:
        """Establish the transaction's view of the system (user txns only).

        For ROWAA this is the implicit read of the local nominal session
        vector (§3.2); strategies without such a notion may return
        immediately.
        """
        ...  # pragma: no cover - protocol

    def read(self, ctx: "TxnContext", item: str) -> typing.Generator:
        """Interpret logical READ; returns the value read."""
        ...  # pragma: no cover - protocol

    def write(self, ctx: "TxnContext", item: str, value: object) -> typing.Generator:
        """Interpret logical WRITE; raises to abort on failure."""
        ...  # pragma: no cover - protocol


class CommitStrategy(typing.Protocol):
    """How a TM terminates a writing transaction (the commit seam).

    Orthogonal to the replication strategy: the replication strategy
    decides *where* logical operations land, the commit strategy decides
    *when the client is acked* relative to the 2PC rounds. Two
    implementations live in :mod:`repro.txn.commit` — ``sync_2pc``
    (prepare round, commit round, then ack) and ``async_quorum``
    (pipelined prepare on write; ack at the decision, applies drained
    asynchronously). Selected by ``TxnConfig.commit_mode``; control and
    copier transactions always terminate synchronously.
    """

    name: str

    def commit(
        self,
        ctx: "TxnContext",
        write_sites: list[int],
        read_only_sites: list[int],
        span,
    ) -> typing.Generator:
        """Drive 2PC for ``ctx.txn`` over ``write_sites``; returns once
        the client may be acked. Raises
        :class:`~repro.errors.TransactionAborted` on a failed commit."""
        ...  # pragma: no cover - protocol

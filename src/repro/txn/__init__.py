"""Transaction substrate: locking, deadlock handling, 2PC, TM and DM.

The paper (§2) assumes "the DDBS runs a correct concurrency control
algorithm which ensures serializable execution" and "a correct protocol"
for atomic commitment. This package provides both:

* :class:`~repro.txn.locks.LockManager` — strict two-phase locking with
  shared/exclusive modes, FIFO queuing, and upgrades (the concrete member
  of the paper's "large group of concurrency control algorithms" that the
  proofs are stated against — its histories have acyclic conflict graphs,
  i.e. lie in DCP/DSR).
* :class:`~repro.txn.deadlock.GlobalDeadlockDetector` — periodic global
  wait-for-graph cycle detection with youngest-victim abort, plus an
  optional per-request wait timeout as a backstop.
* :class:`~repro.txn.manager.TransactionManager` /
  :class:`~repro.txn.data_manager.DataManager` — the paper's TM/DM split
  (§2): the TM interprets logical operations through a replication
  strategy; the DM owns the copies, the lock table, and the §3.1 session
  check, and participates in presumed-abort two-phase commit.
* :class:`~repro.txn.transaction.Transaction` — transaction records and
  kinds (user / control / copier), matching the §3 taxonomy.
"""

from repro.txn.config import TxnConfig
from repro.txn.context import TxnContext
from repro.txn.data_manager import DataManager
from repro.txn.deadlock import GlobalDeadlockDetector
from repro.txn.locks import LockManager, LockMode
from repro.txn.manager import TransactionManager
from repro.txn.strategy import ReplicationStrategy
from repro.txn.transaction import Transaction, TxnKind, TxnStatus

__all__ = [
    "DataManager",
    "GlobalDeadlockDetector",
    "LockManager",
    "LockMode",
    "ReplicationStrategy",
    "Transaction",
    "TransactionManager",
    "TxnConfig",
    "TxnContext",
    "TxnKind",
    "TxnStatus",
]

"""Strict two-phase locking: per-site lock tables.

The lock table is *volatile*: a site crash discards it wholesale (the
site's crash hook replaces the manager), which is precisely why the paper
needs unreadable marks + copiers rather than lock-based recovery.

Grant policy
------------
* Shared (S) locks are compatible with each other; exclusive (X) locks
  conflict with everything.
* Re-entrant: a holder asking for a mode already covered is granted
  immediately; an S-holder asking for X is an *upgrade*, queued at the
  front so it is granted as soon as the other readers drain.
* Otherwise strict FIFO: a request is granted only when it is at the head
  of the queue and compatible with all current holders (no starvation;
  the wait-for graph includes queue-order edges so FIFO-induced cycles
  are still detected).

Waiters may abandon the queue (their process is interrupted by a crash or
a deadlock abort); abandoned requests are purged lazily via the future's
abandon hook.
"""

from __future__ import annotations

import collections
import dataclasses
import enum
import typing

from repro.errors import DeadlockDetected
from repro.sanitize import hooks as _san
from repro.sim.events import Future
from repro.sim.kernel import Callback, Kernel

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability


class LockMode(enum.Enum):
    S = "S"
    X = "X"

    def covers(self, other: "LockMode") -> bool:
        """True if holding ``self`` satisfies a request for ``other``."""
        return self is LockMode.X or other is LockMode.S

    def compatible(self, other: "LockMode") -> bool:
        """True if this mode can be held concurrently with ``other``."""
        return self is LockMode.S and other is LockMode.S


@dataclasses.dataclass(slots=True)
class _Request:
    txn_id: str
    mode: LockMode
    future: Future
    upgrade: bool = False
    #: The wait-timeout backstop timer, cancelled lazily when the request
    #: leaves the queue by any other route (grant, abandon, victim kill).
    timer: Callback | None = None
    #: Sim-time the request joined the queue (wait-time instrumentation).
    enqueued_at: float = 0.0


class _LockState:
    __slots__ = ("item", "holders", "queue")

    def __init__(self, item: str) -> None:
        self.item = item
        self.holders: dict[str, LockMode] = {}
        self.queue: collections.deque[_Request] = collections.deque()


class LockManager:
    """The lock table of one site.

    Parameters
    ----------
    kernel:
        Simulation kernel (for futures and timeouts).
    site_id:
        Owning site, for diagnostics.
    wait_timeout:
        Optional backstop: a request waiting longer than this fails with
        :class:`~repro.errors.DeadlockDetected` even if the global
        detector has not run (None disables).
    """

    def __init__(
        self,
        kernel: Kernel,
        site_id: int,
        wait_timeout: float | None = None,
        obs: "Observability | None" = None,
    ) -> None:
        self.kernel = kernel
        self.site_id = site_id
        self.wait_timeout = wait_timeout
        self.obs = obs
        self._table: dict[str, _LockState] = {}
        self._held_by_txn: dict[str, set[str]] = {}
        self.stats_waits = 0
        self.stats_grants = 0

    # -- public API -----------------------------------------------------------

    def acquire(self, txn_id: str, item: str, mode: LockMode) -> Future:
        """Request a lock; the future succeeds when granted.

        Fails with :class:`DeadlockDetected` if the request is chosen as a
        deadlock victim or outlives ``wait_timeout``.
        """
        if _san.ACTIVE is not None:
            # Lock-table traffic is protocol-normal concurrency, so it is
            # recorded as an ordering note (report context), never
            # race-checked.
            _san.ACTIVE.on_access(
                self.site_id, ("lock", item), "note",
                f"LockManager.acquire[{mode.value}:{txn_id}]",
            )
        state = self._table.get(item)
        if state is None:
            state = self._table[item] = _LockState(item)
        future = Future(self.kernel, name=f"lock:{item}:{mode.value}:{txn_id}")

        held = state.holders.get(txn_id)
        if held is not None and held.covers(mode):
            self.stats_grants += 1
            future.succeed()
            return future

        upgrade = held is LockMode.S and mode is LockMode.X
        request = _Request(txn_id, mode, future, upgrade=upgrade)

        if self._can_grant(state, request):
            self._grant(state, request)
            return future

        self.stats_waits += 1
        request.enqueued_at = self.kernel.now
        if upgrade:
            state.queue.appendleft(request)
        else:
            state.queue.append(request)
        future.on_abandoned(lambda _fut, it=item, req=request: self._abandon(it, req))
        if self.wait_timeout is not None:
            request.timer = self.kernel.schedule_callback(
                self.wait_timeout, self._expire, item, request
            )
        return future

    def cancel(self, txn_id: str) -> None:
        """Abort-time cleanup: fail queued requests, then release holds.

        ``release_all`` alone is not enough when the transaction ends
        while one of its lock requests is still queued: the stale request
        would eventually be granted to a transaction that no longer
        exists and the lock would leak forever.
        """
        self.kill_waiter(txn_id)
        self.release_all(txn_id)

    def release_all(self, txn_id: str) -> None:
        """Strict 2PL release point: drop every lock held by ``txn_id``."""
        if _san.ACTIVE is not None:
            _san.ACTIVE.on_access(
                self.site_id, ("lock",), "note",
                f"LockManager.release_all[{txn_id}]",
            )
        items = self._held_by_txn.pop(txn_id, set())
        for item in items:
            state = self._table.get(item)
            if state is None:
                continue
            state.holders.pop(txn_id, None)
            self._promote_waiters(item, state)

    def release_one(self, txn_id: str, item: str) -> None:
        """Release a single lock early.

        Only safe before the transaction has observed data under this
        lock — used when a read is refused (unreadable copy) right after
        its S lock was granted, so the lock carries no 2PL obligation and
        holding it would stall the copier that must renovate the copy.
        """
        state = self._table.get(item)
        if state is None or txn_id not in state.holders:
            return
        state.holders.pop(txn_id)
        held = self._held_by_txn.get(txn_id)
        if held is not None:
            held.discard(item)
        self._promote_waiters(item, state)

    def holds(self, txn_id: str, item: str, mode: LockMode) -> bool:
        """True if ``txn_id`` currently holds ``item`` in a covering mode."""
        state = self._table.get(item)
        if state is None:
            return False
        held = state.holders.get(txn_id)
        return held is not None and held.covers(mode)

    def kill_waiter(self, txn_id: str) -> bool:
        """Fail all queued requests of ``txn_id`` (deadlock victim).

        Returns True if any request was killed.
        """
        killed = False
        for item, state in self._table.items():
            victims = [r for r in state.queue if r.txn_id == txn_id]
            for request in victims:
                state.queue.remove(request)
                if request.timer is not None:
                    request.timer.cancel()
                killed = True
                if not request.future.triggered:
                    request.future.fail(DeadlockDetected(txn_id))
            if victims:
                self._promote_waiters(item, state)
        return killed

    # -- introspection for the deadlock detector ---------------------------------

    def wait_edges(self) -> list[tuple[str, str]]:
        """(waiter, blocker) pairs for the global wait-for graph.

        A queued request waits on every conflicting current holder and on
        every conflicting request ahead of it in the queue (FIFO order is
        itself a blocking relation).
        """
        edges: list[tuple[str, str]] = []
        for state in self._table.values():
            for index, request in enumerate(state.queue):
                for holder, held_mode in state.holders.items():
                    if holder != request.txn_id and not request.mode.compatible(held_mode):
                        edges.append((request.txn_id, holder))
                for ahead in list(state.queue)[:index]:
                    if ahead.txn_id != request.txn_id and not request.mode.compatible(
                        ahead.mode
                    ):
                        edges.append((request.txn_id, ahead.txn_id))
        return edges

    def waiting_txns(self) -> set[str]:
        """Transactions with at least one queued request here."""
        return {request.txn_id for state in self._table.values() for request in state.queue}

    # -- internals ------------------------------------------------------------

    def _can_grant(self, state: _LockState, request: _Request) -> bool:
        compatible_with_holders = all(
            holder == request.txn_id or request.mode.compatible(mode)
            for holder, mode in state.holders.items()
        )
        if not compatible_with_holders:
            return False
        if request.upgrade:
            # Upgrades jump the queue; only the holders matter.
            return True
        return not state.queue

    def _grant(self, state: _LockState, request: _Request) -> None:
        state.holders[request.txn_id] = request.mode
        self._held_by_txn.setdefault(request.txn_id, set()).add(state.item)
        self.stats_grants += 1
        if not request.future.triggered:
            request.future.succeed()

    def _promote_waiters(self, item: str, state: _LockState) -> None:
        # Upgrades first (they sit at the front), then FIFO batches of
        # compatible requests.
        while state.queue:
            head = state.queue[0]
            if not self._compatible_with_holders(state, head):
                break
            state.queue.popleft()
            if head.timer is not None:
                head.timer.cancel()
            state.holders[head.txn_id] = head.mode
            self._held_by_txn.setdefault(head.txn_id, set()).add(item)
            self.stats_grants += 1
            self._record_wait(item, head)
            if not head.future.triggered:
                head.future.succeed()
            if head.mode is LockMode.X:
                break

    def _record_wait(self, item: str, request: _Request) -> None:
        """Instrument a grant that had to queue: histogram + causal span.

        Called only on the waited path (never on immediate grants), so
        the uninstrumented fast path stays untouched.
        """
        obs = self.obs
        if obs is None:
            return
        obs.registry.histogram("locks.wait_time", self.site_id).observe(
            self.kernel.now - request.enqueued_at
        )
        if obs.spans_on:
            recorder = obs.spans
            recorder.complete(
                f"lock-wait:{item}", "lock", self.site_id, request.enqueued_at,
                parent=recorder.root_of(request.txn_id),
                txn_id=request.txn_id, mode=request.mode.value,
            )

    def _compatible_with_holders(self, state: _LockState, request: _Request) -> bool:
        return all(
            holder == request.txn_id or request.mode.compatible(mode)
            for holder, mode in state.holders.items()
        )

    def _abandon(self, item: str, request: _Request) -> None:
        state = self._table.get(item)
        if state is None:
            return
        try:
            state.queue.remove(request)
        except ValueError:
            return
        if request.timer is not None:
            request.timer.cancel()
        self._promote_waiters(item, state)

    def _expire(self, item: str, request: _Request) -> None:
        state = self._table.get(item)
        if state is None or request not in state.queue:
            return
        state.queue.remove(request)
        if not request.future.triggered:
            request.future.fail(DeadlockDetected(request.txn_id))
        self._promote_waiters(item, state)
